//! Offline stand-in for the `fxhash` crate: the multiply-rotate hash
//! function used by Firefox and the Rust compiler.
//!
//! `FxHasher` is dramatically cheaper than the standard library's SipHash
//! (a handful of cycles per word, no key setup) at the cost of no
//! DoS-resistance — exactly the right trade for **process-local** hash maps
//! whose keys are trusted, like the trial caches of the campaign engine.
//! The surface mirrors the real crate: [`FxHasher`], the
//! [`FxBuildHasher`] state, the [`FxHashMap`] / [`FxHashSet`] aliases and
//! the [`hash64`] convenience function.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The 64-bit Fx seed: a large prime-ish constant with well-mixed bits
/// (the same constant the reference implementation uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` state producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Fx streaming hasher: `hash = (hash <<< 5) ^ word) * SEED` per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes one value with [`FxHasher`] (fresh state per call).
pub fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(hash64(&42u64), hash64(&42u64));
        assert_ne!(hash64(&42u64), hash64(&43u64));
        assert_ne!(hash64("abc"), hash64("abd"));
        assert_ne!(hash64(&(1u32, 2u32)), hash64(&(2u32, 1u32)));
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Streams that differ only in the sub-word tail must not collide.
        assert_ne!(hash64(&[1u8, 2, 3][..]), hash64(&[1u8, 2, 4][..]));
        assert_ne!(hash64(&[0u8; 9][..]), hash64(&[0u8; 10][..]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        map.insert("acmin".into(), 1);
        map.insert("taggon".into(), 2);
        assert_eq!(map.get("acmin"), Some(&1));
        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            set.insert(i);
        }
        assert_eq!(set.len(), 1000);
        assert!(set.contains(&999));
    }

    #[test]
    fn distribution_spreads_sequential_keys() {
        // Sequential integers must not collapse into few buckets.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0..256u64 {
            low_bits.insert(hash64(&i) >> 56);
        }
        assert!(
            low_bits.len() > 64,
            "top bits too uniform: {}",
            low_bits.len()
        );
    }
}
