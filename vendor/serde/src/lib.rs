//! Offline stand-in for `serde`.
//!
//! Exposes the two trait names and the derive macros that the workspace
//! imports (`use serde::{Deserialize, Serialize}` + `#[derive(...)]`). The
//! traits are empty markers and the derives are no-ops — sufficient while no
//! code path actually serializes. See `vendor/README.md`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
