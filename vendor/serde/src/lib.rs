//! Offline stand-in for `serde` — now a *real*, minimal serialization
//! framework rather than a no-op marker.
//!
//! The workspace's engine streams trial records to JSONL sinks, so the former
//! empty-marker traits are replaced by a small self-describing data model:
//! [`Serialize`] lowers a value into a [`Value`] tree and [`Deserialize`]
//! rebuilds a value from one. The derive macros in `serde_derive` generate
//! real implementations for structs and enums (externally tagged, like real
//! serde's JSON representation), and the `serde_json` stand-in renders
//! [`Value`] trees to JSON text and parses them back.
//!
//! The trait *methods* are intentionally simpler than real serde's
//! `Serializer`/`Deserializer` visitors — workspace code never calls them
//! directly; it only uses `#[derive(Serialize, Deserialize)]` plus
//! `serde_json::{to_string, from_str}`, which match the real crates' call
//! sites. See `vendor/README.md`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing value tree: the intermediate representation between
/// typed Rust values and serialized text.
///
/// The variants mirror the JSON data model (plus a signed/unsigned integer
/// split so `u64::MAX` survives a round trip). Maps preserve insertion order
/// so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`; also the encoding of `None` and of non-finite floats.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A finite floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields / enum tags).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a struct field by name.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a map or the field is missing.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected a map with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Views `self` as a sequence of exactly `expected` elements.
    ///
    /// # Errors
    ///
    /// Returns an error if `self` is not a sequence or the length differs.
    pub fn elements(&self, expected: usize) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) if items.len() == expected => Ok(items),
            Value::Seq(items) => Err(Error::custom(format!(
                "expected a sequence of {expected} elements, found {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// A short description of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::U64(_) | Value::I64(_) => "an integer",
            Value::F64(_) => "a float",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can lower itself into a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
///
/// The lifetime parameter mirrors real serde's `Deserialize<'de>` so that
/// workspace trait bounds (`for<'de> Deserialize<'de>` etc.) keep compiling.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds a value from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an error if the value tree does not match `Self`'s shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive implementations
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected an unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    Error::custom(format!("integer {raw} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n < 0 {
                    Value::I64(n)
                } else {
                    Value::U64(n as u64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("integer {n} out of range for i64"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected a signed integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    Error::custom(format!("integer {raw} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = u64::from_value(value)?;
        usize::try_from(raw)
            .map_err(|_| Error::custom(format!("integer {raw} out of range for usize")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl<'de> Deserialize<'de> for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let raw = i64::from_value(value)?;
        isize::try_from(raw)
            .map_err(|_| Error::custom(format!("integer {raw} out of range for isize")))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected a boolean, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // JSON has no NaN / infinity; encode as null like real serde_json.
            Value::Null
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => {
                let mut chars = s.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(Error::custom(format!(
                        "expected a single-character string, found {s:?}"
                    ))),
                }
            }
            other => Err(Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    /// A `Value` lowers to itself, so already-built trees can be handed to
    /// `serde_json::to_string` directly (mirroring the real
    /// `serde_json::Value`).
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    /// A `Value` lifts from itself, so `serde_json::from_str::<Value>` yields
    /// the raw parse tree (mirroring the real `serde_json::Value`).
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.elements(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of {N} elements")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u64::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(char::from_value(&'D'.to_value()).unwrap(), 'D');
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        let v: Option<u8> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(<Option<u8>>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(<Option<u8>>::from_value(&Value::U64(3)).unwrap(), Some(3));
        let seq = vec![1u8, 2, 3].to_value();
        assert_eq!(<Vec<u8>>::from_value(&seq).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn type_mismatches_are_reported() {
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(char::from_value(&Value::Str("ab".into())).is_err());
        let err = Value::Null.field("x").unwrap_err();
        assert!(err.to_string().contains("expected a map"));
        assert!(Value::Seq(vec![]).elements(1).is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn map_field_lookup() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Bool(false)),
        ]);
        assert_eq!(v.field("a").unwrap(), &Value::U64(1));
        assert!(v
            .field("c")
            .unwrap_err()
            .to_string()
            .contains("missing field"));
    }
}
