//! Offline stand-in for `proptest`.
//!
//! Supports the subset used by `tests/properties.rs`: the [`proptest!`] macro
//! with a `#![proptest_config(...)]` header, half-open range strategies over
//! the primitive numeric types, `prop::collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros. Failing cases are
//! reported with their sampled inputs but are **not shrunk** — this is a
//! random sampler, not a full property-testing engine.

#![warn(missing_docs)]

/// Test-run configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is evaluated with.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving the sampling; wraps the sibling `rand`
/// stand-in's `SmallRng` so the workspace has exactly one PRNG implementation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::SmallRng,
}

impl TestRng {
    /// A fixed-seed generator so failures reproduce run-to-run.
    pub fn deterministic(salt: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            inner: rand::rngs::SmallRng::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ salt),
        }
    }

    /// Returns the next pseudo-random word.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Value-generation strategies (stand-in for `proptest::strategy`).
pub mod strategy {
    use super::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: Debug;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as u128 + draw) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_signed_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// Strategy producing `Vec`s of an element strategy (see
    /// [`crate::collection::vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times and runs the
/// body. Failing samples are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Salt the RNG with the test name so properties explore
                // different corners of their input spaces.
                let salt = stringify!($name).bytes().fold(0u64, |h, b| {
                    h.wrapping_mul(31).wrapping_add(b as u64)
                });
                let mut rng = $crate::TestRng::deterministic(salt);
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    // Render the inputs before the body runs: the body may
                    // move them, and we still want them on failure.
                    let mut rendered_inputs = String::new();
                    $(
                        rendered_inputs.push_str(&format!(
                            "    {} = {:?}\n",
                            stringify!($arg),
                            $arg
                        ));
                    )+
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed with inputs:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            rendered_inputs
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
