//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde's [`Value`] trees as JSON text and parses JSON
//! text back into them. Only the two entry points the workspace uses are
//! provided — [`to_string`] and [`from_str`] — with the same signatures as
//! the real crate (module `::Error` aside). Output is deterministic: map
//! entries keep their insertion order and floats print with Rust's shortest
//! round-trippable representation.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Never fails for the value shapes the vendored serde produces; the
/// `Result` mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or when the parsed tree does not match
/// `T`'s shape.
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::from_value(&value)
}

/// Parses a JSON string into a [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing input.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display prints the shortest representation that
                // round-trips, which keeps JSONL output compact and exact.
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                char::from(c),
                self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                char::from(other)
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty string");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let as_float = |text: &str| {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        };
        if is_float {
            as_float(text)
        } else if text.starts_with('-') {
            // Integers beyond the i64/u64 range (e.g. 1e20 written out in
            // full by the float writer) fall back to f64, like real
            // serde_json's arbitrary-precision handling of big literals.
            match text.parse::<i64>() {
                Ok(n) => Ok(Value::I64(n)),
                Err(_) => as_float(text),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::U64(n)),
                Err(_) => as_float(text),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "42",
            "-7",
            "1.5",
            "\"hi\"",
            "18446744073709551615",
        ] {
            let v = parse(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn containers_round_trip() {
        let json = r#"{"a":[1,2,3],"b":{"c":null,"d":"x\ny"},"e":-1.25}"#;
        let v = parse(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v);
        assert_eq!(out, json);
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""tab\tquote\"backslash\\uA""#).unwrap();
        assert_eq!(v, Value::Str("tab\tquote\"backslash\\uA".to_string()));
        let mut out = String::new();
        write_string(&mut out, "line\nfeed\u{1}");
        assert_eq!(out, "\"line\\nfeed\\u0001\"");
    }

    #[test]
    fn typed_round_trip_via_entry_points() {
        let s = to_string(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let opt: Option<f64> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn huge_integral_floats_round_trip() {
        // f64 Display writes 1e20 as bare digits; the parser must fall back
        // to f64 instead of failing on u64 overflow.
        let s = to_string(&1.0e20f64).unwrap();
        assert_eq!(s, "100000000000000000000");
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 1.0e20);
        let back: f64 = from_str("-100000000000000000000").unwrap();
        assert_eq!(back, -1.0e20);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![(
                "a".into(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)])
            )])
        );
    }
}
