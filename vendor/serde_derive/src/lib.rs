//! Offline stand-in for `serde_derive` — generates *real* `Serialize` /
//! `Deserialize` implementations against the vendored serde's `Value` data
//! model (see `vendor/serde/src/lib.rs`).
//!
//! The real crate parses the input with `syn`; that dependency is not
//! available offline, so this macro walks the raw [`TokenStream`] directly.
//! It supports exactly the shapes the workspace uses:
//!
//! * structs with named fields, tuple structs (newtype and multi-field) and
//!   unit structs,
//! * enums whose variants are unit, newtype, tuple or struct-like,
//! * no generic parameters (none of the workspace's serialized types have
//!   any; a type that does gets a clear `compile_error!`).
//!
//! The generated representation matches real serde's externally-tagged JSON
//! encoding: named structs become maps, newtype structs unwrap to their inner
//! value, unit enum variants become strings, and payload-carrying variants
//! become single-entry maps keyed by the variant name.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Generates a `serde::Serialize` implementation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Generates a `serde::Deserialize` implementation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

enum Body {
    /// `struct S;`
    UnitStruct,
    /// `struct S(A, B);` — the field count.
    TupleStruct(usize),
    /// `struct S { a: A, b: B }` — the field names.
    NamedStruct(Vec<String>),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let (name, body) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("valid compile_error")
        }
    };
    let code = match which {
        Trait::Serialize => gen_serialize(&name, &body),
        Trait::Deserialize => gen_deserialize(&name, &body),
    };
    code.parse().expect("derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Body), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err(format!("expected a name after `{keyword}`")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive stand-in: generic type `{name}` is not supported (vendor/serde_derive)"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None => Ok((name, Body::UnitStruct)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Body::UnitStruct)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Body::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Body::TupleStruct(count_tuple_fields(g.stream()))))
            }
            _ => Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Body::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!("expected a brace-delimited body for enum `{name}`")),
        },
        other => Err(format!(
            "serde derive stand-in: unsupported item kind `{other}`"
        )),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` — the punct is followed by a bracketed group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            // `pub` optionally followed by `(crate)` / `(super)` / `(in ...)`.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Consumes a type from `tokens[*i]..`, stopping at a `,` that sits outside
/// every `<...>` pair. Delimited groups are single tokens, so only angle
/// brackets need explicit depth tracking.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("expected a field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        // Skip the separating comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("expected a variant name, found `{other}`")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("serde derive stand-in: explicit discriminants are not supported".into());
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Body::NamedStruct(fields) => gen_map_literal(fields, |f| format!("&self.{f}")),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_arm(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body_code} }}\n\
         }}"
    )
}

/// `Value::Map(vec![("field", field.to_value()), ...])` where `expr(f)` names
/// the borrowed field (`&self.f` for structs, the match binding for enums).
fn gen_map_literal(fields: &[String], expr: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({}))",
                expr(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize_arm(name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.fields {
        VariantFields::Unit => {
            format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),")
        }
        VariantFields::Tuple(n) => {
            let bindings: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = bindings
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            };
            format!(
                "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), {inner})]),",
                bindings.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let inner = gen_map_literal(fields, |f| f.to_string());
            format!(
                "{name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({v:?}), {inner})]),",
                fields.join(", ")
            )
        }
    }
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::UnitStruct => format!(
            "match __value {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                     \"expected null for unit struct {name}, found {{}}\", __other.kind()))),\n\
             }}"
        ),
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "{{ let __items = __value.elements({n})?;\n\
                     ::std::result::Result::Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                gen_named_field_inits(fields)
            )
        }
        Body::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body_code}\n\
             }}\n\
         }}"
    )
}

/// `f: Deserialize::from_value(source.field("f")?)?, ...` — the field types
/// are recovered by inference from the struct/variant constructor.
fn gen_named_field_inits(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(__value.field({f:?})?)?"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            format!(
                "{:?} => ::std::result::Result::Ok({name}::{}),",
                v.name, v.name
            )
        })
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let variant = &v.name;
            match &v.fields {
                VariantFields::Unit => None,
                VariantFields::Tuple(1) => Some(format!(
                    "{variant:?} => ::std::result::Result::Ok({name}::{variant}(::serde::Deserialize::from_value(__inner)?)),"
                )),
                VariantFields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                        .collect();
                    Some(format!(
                        "{variant:?} => {{ let __items = __inner.elements({n})?;\n\
                             ::std::result::Result::Ok({name}::{variant}({})) }},",
                        items.join(", ")
                    ))
                }
                VariantFields::Named(fields) => {
                    let inits = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(__inner.field({f:?})?)?")
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    Some(format!(
                        "{variant:?} => ::std::result::Result::Ok({name}::{variant} {{ {inits} }}),"
                    ))
                }
            }
        })
        .collect();
    format!(
        "match __value {{\n\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                     \"unknown unit variant `{{__other}}` of {name}\"))),\n\
             }},\n\
             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                         \"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                 \"expected a variant of {name}, found {{}}\", __other.kind()))),\n\
         }}",
        unit_arms.join("\n"),
        payload_arms.join("\n")
    )
}
