//! Offline stand-in for `serde_derive`.
//!
//! The real crate generates `serde::Serialize` / `serde::Deserialize`
//! implementations. Nothing in this workspace performs actual
//! (de)serialization yet, so these derives intentionally expand to nothing:
//! the attribute positions stay valid and the code keeps compiling against
//! the real serde API shape.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
