//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface this workspace uses: `SmallRng` seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_range` (over
//! half-open integer and float ranges) and `gen_bool`. The generator is a
//! deterministic xorshift64* — statistically far weaker than the real
//! `SmallRng`, but deterministic per seed, which is all the simulator needs.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (stand-in for `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Maps a random word to a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling methods (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small-state generator (xorshift64* core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 step so that nearby seeds diverge immediately.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-8.0f64..8.0);
            assert!((-8.0..8.0).contains(&f));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
