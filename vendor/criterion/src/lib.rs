//! Offline stand-in for `criterion`.
//!
//! Implements the macro + builder surface used by `crates/bench`:
//! [`Criterion`] with `sample_size` / `measurement_time` / `warm_up_time`,
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is timed
//! with `std::time::Instant` and a mean-per-iteration line is printed; there
//! is no outlier rejection, plotting, or statistical analysis.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmark input/output away.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Caps the time spent warming a benchmark up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Times `f` and prints a mean-per-iteration summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
            deadline: Instant::now() + self.warm_up_time.min(Duration::from_millis(200)),
            warmup: true,
        };
        // Warm-up passes (at least one) until the warm-up deadline expires.
        loop {
            f(&mut bencher);
            if Instant::now() >= bencher.deadline {
                break;
            }
        }

        bencher.warmup = false;
        bencher.iterations = 0;
        bencher.elapsed = Duration::ZERO;
        bencher.deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            if Instant::now() >= bencher.deadline {
                break;
            }
            f(&mut bencher);
        }

        if bencher.iterations == 0 {
            println!("bench {id}: no iterations completed");
        } else {
            let mean = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
            println!(
                "bench {id}: {:.1} ns/iter (mean of {} iterations)",
                mean, bencher.iterations
            );
        }
        self
    }
}

/// Per-benchmark timing handle (stand-in for `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    deadline: Instant,
    warmup: bool,
}

impl Bencher {
    /// Times repeated calls of `routine` until the sample budget is spent.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        if self.warmup {
            return;
        }
        self.iterations += 1;
        self.elapsed += once;
    }
}

/// Declares a group of benchmark functions (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `fn main` running each group (stand-in for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
