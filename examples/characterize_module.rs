//! Characterize one module the way the paper's Figure 6 does: sweep the
//! aggressor-row-on time and report mean ACmin and the fraction of rows with
//! bitflips, at two temperatures.

use rowpress::core::stats::loglog_slope;
use rowpress::core::{
    acmin_sweep, fraction_rows_with_flips, lookup_module, ExperimentConfig, PatternKind,
};
use rowpress::dram::sweep_t_aggon;

fn main() {
    let spec = lookup_module("S3").expect("S3 in inventory");
    let cfg = ExperimentConfig::quick().with_rows_per_module(6);
    let taggons = sweep_t_aggon();
    println!(
        "characterizing {spec} ({} tested rows per temperature)",
        cfg.rows_per_module
    );

    let records = acmin_sweep(
        &cfg,
        &[spec],
        PatternKind::SingleSided,
        &[50.0, 80.0],
        &taggons,
    );
    for temp in [50.0, 80.0] {
        println!("-- {temp} C --");
        let mut curve = Vec::new();
        for t in &taggons {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.temperature_c == temp && r.t_aggon == *t)
                .filter_map(|r| r.ac_min.map(|a| a as f64))
                .collect();
            if values.is_empty() {
                println!("  tAggON {:>8}: no bitflips", format!("{t}"));
            } else {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                println!("  tAggON {:>8}: mean ACmin {:>10.0}", format!("{t}"), mean);
                curve.push((t.as_us(), mean));
            }
        }
        let tail: Vec<(f64, f64)> = curve.into_iter().filter(|(t, _)| *t >= 7.8).collect();
        if let Some(slope) = loglog_slope(&tail) {
            println!("  log-log slope beyond tREFI: {slope:.3} (paper reports about -1.02)");
        }
    }
    let fractions = fraction_rows_with_flips(&records);
    let vulnerable = fractions.values().filter(|&&f| f > 0.0).count();
    println!(
        "{} of {} (die, tAggON) points show at least one vulnerable row",
        vulnerable,
        fractions.len()
    );
}
