//! Quickstart: how many activations does it take to flip a bit when the
//! aggressor row is merely hammered versus kept open (pressed)?

use rowpress::core::{find_ac_min, ExperimentConfig, PatternKind, PatternSite};
use rowpress::dram::{module_inventory, BankId, DataPattern, DramError, DramModule, RowId, Time};

fn main() -> Result<(), DramError> {
    let spec = module_inventory().remove(0); // Samsung 8Gb B-die
    let cfg = ExperimentConfig::quick();
    let mut module = DramModule::new(&spec, cfg.geometry);
    // The paper's headline figure (Fig. 1) is measured at 80 C.
    module.set_temperature(80.0);
    let site = PatternSite::for_kind(
        PatternKind::SingleSided,
        BankId(1),
        RowId(64),
        cfg.geometry.rows_per_bank,
    );

    println!("module: {spec} at 80 C");
    for t_aggon in [
        Time::from_ns(36.0),
        Time::from_us(7.8),
        Time::from_us(70.2),
        Time::from_ms(30.0),
    ] {
        match find_ac_min(&mut module, &site, t_aggon, DataPattern::Checkerboard, &cfg)? {
            Some(outcome) => println!(
                "tAggON {:>8}: ACmin = {:>8} activations ({} bitflips at ACmin)",
                format!("{t_aggon}"),
                outcome.ac_min,
                outcome.flips.len()
            ),
            None => println!(
                "tAggON {:>8}: no bitflips within the 60 ms budget",
                format!("{t_aggon}")
            ),
        }
    }
    println!("RowPress amplifies read disturbance: keeping the row open cuts ACmin by orders of magnitude,");
    println!("down to a single activation for the rows the paper calls the extreme cases.");
    Ok(())
}
