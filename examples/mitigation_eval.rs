//! Evaluate the paper's mitigation adaptation methodology (Section 7.4):
//! Graphene-RP and PARA-RP slowdowns for a few maximum row-open times.

use rowpress::memctrl::{RowPolicy, SystemConfig};
use rowpress::mitigations::{
    adapted_trh, evaluate_single_core, summarize_overheads, MechanismKind,
};
use rowpress::workloads::find_workload;

fn main() {
    let sim = SystemConfig {
        accesses_per_core: 6_000,
        policy: RowPolicy::Open,
        retire_width: 4,
        seed: 11,
    };
    let workloads: Vec<_> = ["462.libquantum", "429.mcf", "510.parest", "h264_encode"]
        .iter()
        .map(|n| find_workload(n).expect("workload in catalog"))
        .collect();
    let tmro = [36u32, 96, 636];

    for kind in [MechanismKind::Graphene, MechanismKind::Para] {
        println!("-- {kind:?}-RP (baseline RowHammer threshold 1K) --");
        let records = evaluate_single_core(kind, 1000, &tmro, &workloads, &sim);
        for (_, t, avg, max) in summarize_overheads(&records) {
            println!(
                "  tmro {:>4} ns (T'RH = {:>4}): average overhead {:>6.2}%, maximum {:>6.2}%",
                t,
                adapted_trh(1000, t),
                avg,
                max
            );
        }
    }
    println!("Graphene-RP mitigates RowPress almost for free; PARA-RP pays more as the threshold shrinks.");
}
