//! Reproduce the spirit of the paper's Section 6: a user-level access pattern
//! that defeats a TRR-protected module by keeping aggressor rows open.

use rowpress::attack::{
    latency_verification, median_latencies, run_attack, AttackParams, SystemModel,
};

fn main() {
    let system = SystemModel::comet_lake_trr().with_victims(150);
    println!(
        "victim system: {} with in-DRAM TRR, {} victim rows",
        system.module, system.victims
    );

    // First, verify that reading many cache blocks keeps the row open.
    let histogram = latency_verification(50_000, 7);
    let (first, rest) = median_latencies(&histogram);
    println!(
        "first-block access median {first} cycles vs subsequent {rest} cycles (gap {} cycles)",
        first - rest
    );

    println!(
        "{:<28} {:>10} {:>14}",
        "pattern", "bitflips", "rows w/ flips"
    );
    for (label, params) in [
        ("RowHammer (1 read/ACT)", AttackParams::algorithm1(4, 1)),
        ("RowPress (16 reads/ACT)", AttackParams::algorithm1(4, 16)),
        ("RowPress (32 reads/ACT)", AttackParams::algorithm1(4, 32)),
        ("RowPress Algorithm 2 (32)", AttackParams::algorithm2(4, 32)),
    ] {
        let outcome = run_attack(&system, &params);
        println!(
            "{:<28} {:>10} {:>14}",
            label, outcome.total_bitflips, outcome.rows_with_bitflips
        );
    }
    println!("RowPress defeats the in-DRAM RowHammer protection; plain hammering does not.");
}
