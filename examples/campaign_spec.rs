//! Parse the shipped campaign spec, preview its plan, and prove the
//! sharded execution model in-process.
//!
//! The `rowpress-campaign` CLI drives the same three library calls this
//! example makes — `CampaignSpec::parse`, `CampaignSpec::plan`, and
//! per-shard engine runs merged with `Plan::merge` — just with each shard
//! in its own OS process and a persistent cache underneath (see
//! `crates/core/src/campaign/shard.rs` and README "Operating a campaign").
//!
//! Run with: `cargo run --example campaign_spec`

use rowpress::core::campaign::CampaignSpec;
use rowpress::core::engine::{CostModel, Engine, Plan};

fn main() {
    let text = include_str!("quick_acmin.toml");
    let spec = CampaignSpec::parse(text).expect("the shipped spec parses");

    println!("spec {:?} (canonical JSON):", spec.name);
    println!("{}\n", spec.canonical_json());

    let cfg = spec.config();
    let plan = spec.plan().expect("the shipped spec resolves to a plan");
    let shards = spec.orchestration.shards;
    let model = CostModel::default();
    println!("plan: {} trials across {} shard(s)", plan.len(), shards);
    for index in 0..shards {
        let shard = plan.shard(index, shards);
        let cost: u128 = shard.trials().iter().map(|t| model.estimate(&cfg, t)).sum();
        println!(
            "  shard {index}: {} trials, ~{} ms of modeled device time",
            shard.len(),
            cost / 1_000_000_000
        );
    }

    // The in-process model of what the orchestrator does across processes:
    // run each shard on its own engine, merge, compare to one engine.
    let baseline = Engine::new(&cfg).run_collect(&plan).expect("plan runs");
    let streams: Vec<_> = (0..shards)
        .map(|i| {
            Engine::new(&cfg)
                .run_collect(&plan.shard(i, shards))
                .expect("shard runs")
        })
        .collect();
    let merged = Plan::merge(streams);
    assert_eq!(merged, baseline);
    println!(
        "\n{} sharded records merged back into plan order — identical to the \
         single-engine stream ({} records)",
        merged.len(),
        baseline.len()
    );
    println!("multi-process version: cargo run -p rowpress-cli --bin rowpress-campaign -- run examples/quick_acmin.toml --verify");
}
