//! # rowpress
//!
//! Facade crate of the RowPress (ISCA 2023) reproduction: re-exports the
//! individual subsystem crates under one roof so examples and downstream users
//! can depend on a single crate.
//!
//! * [`dram`] — behavioural DDR4 device model with RowHammer + RowPress physics.
//! * [`bender`] — DRAM-Bender-style command-level testing platform.
//! * [`core`] — the characterization methodology: ACmin search, the study
//!   drivers, and the campaign engine (`core::engine`) that executes typed
//!   trial plans on a bounded, cost-aware worker pool with streaming sinks.
//!   The engine layers are one submodule each: shardable plans
//!   (`core::engine::plan`, `Plan::shard`/`Plan::merge`), longest-pole-first
//!   dispatch (`core::engine::schedule`), in-process and persistent
//!   cross-process trial caches (`core::engine::cache`), and threaded JSONL
//!   sinks/readers (`core::engine::sink`); `core::campaign::run_sharded`
//!   models the paper's Slurm-style fan-out end to end, and
//!   `core::campaign::spec`/`core::campaign::shard` are the declarative
//!   campaign specs and crash-safe shard entry point behind the
//!   `rowpress-campaign` multi-process orchestrator (`crates/cli`; see
//!   ARCHITECTURE.md).
//! * [`workloads`] — synthetic trace generation and benchmark catalog.
//! * [`memctrl`] — cycle-level memory controller and system simulator.
//! * [`mitigations`] — Graphene / PARA, their RowPress adaptations, ECC analysis.
//! * [`attack`] — the real-system demonstration model.
//!
//! # Quickstart
//!
//! ```
//! use rowpress::core::{find_ac_min, ExperimentConfig, PatternKind, PatternSite};
//! use rowpress::dram::{module_inventory, BankId, DataPattern, DramModule, RowId, Time};
//!
//! let spec = module_inventory().remove(0);
//! let cfg = ExperimentConfig::test_scale();
//! let mut module = DramModule::new(&spec, cfg.geometry);
//! let site = PatternSite::for_kind(PatternKind::SingleSided, BankId(1), RowId(20), cfg.geometry.rows_per_bank);
//! let hammer = find_ac_min(&mut module, &site, Time::from_ns(36.0), DataPattern::Checkerboard, &cfg)?.unwrap();
//! let press = find_ac_min(&mut module, &site, Time::from_ms(30.0), DataPattern::Checkerboard, &cfg)?.unwrap();
//! assert!(press.ac_min < hammer.ac_min / 100);
//! # Ok::<(), rowpress::dram::DramError>(())
//! ```

#![warn(missing_docs)]

pub use rowpress_attack as attack;
pub use rowpress_bender as bender;
pub use rowpress_core as core;
pub use rowpress_dram as dram;
pub use rowpress_memctrl as memctrl;
pub use rowpress_mitigations as mitigations;
pub use rowpress_workloads as workloads;
