//! # rowpress-attack
//!
//! The real-system RowPress demonstration (paper §6 and Appendices F/G),
//! modeled end to end: a user-level program (Algorithm 1 / Algorithm 2) runs
//! on a system with caches, `clflushopt`/`mfence`, hardware prefetchers
//! disabled, a memory controller with an open-row policy, periodic
//! auto-refresh and an in-DRAM TRR mitigation — and still flips bits in a
//! TRR-protected DDR4 module by keeping aggressor rows open across many cache
//! block reads.
//!
//! The model captures the paper's four mechanisms:
//!
//! 1. Reading multiple cache blocks of an open row keeps it open, so the
//!    aggressor-row-on time grows with `NUM_READS` (verified in §6.3 / Fig. 24).
//! 2. Dummy-row activations dilute the in-DRAM TRR sampler so the real
//!    aggressors are rarely caught.
//! 3. Auto-refresh bounds the accumulation window to one refresh window, and
//!    RowPress needs far fewer activations than RowHammer inside it.
//! 4. Very long per-iteration patterns lose synchronization with refresh,
//!    which makes the bitflip count fall off again at large `NUM_READS`
//!    (Obsv. 21).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rowpress_dram::{
    module_inventory, BankId, DataPattern, DramModule, Geometry, ModuleSpec, RowId, RowRole, Time,
};
use serde::{Deserialize, Serialize};

/// Which proof-of-concept program is run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Algorithm 1: read all cache blocks of both aggressors, then flush them.
    ReadsThenFlushes,
    /// Algorithm 2 (Appendix G): flush each cache block right after reading
    /// it, which keeps the aggressor row open even longer per activation.
    InterleavedFlushes,
}

/// Parameters of one attack run (the red inputs of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttackParams {
    /// Activations of each aggressor row per iteration (`NUM_AGGR_ACTS`).
    pub num_aggr_acts: u32,
    /// Cache blocks read per aggressor-row activation (`NUM_READS`).
    pub num_reads: u32,
    /// Which program variant to run.
    pub algorithm: Algorithm,
    /// Iterations of the outer loop (`NUM_ITER`, 800 K in the paper).
    pub iterations: u64,
}

impl AttackParams {
    /// Algorithm 1 with the paper's default iteration count.
    pub fn algorithm1(num_aggr_acts: u32, num_reads: u32) -> Self {
        AttackParams {
            num_aggr_acts,
            num_reads,
            algorithm: Algorithm::ReadsThenFlushes,
            iterations: 800_000,
        }
    }

    /// Algorithm 2 with the paper's default iteration count.
    pub fn algorithm2(num_aggr_acts: u32, num_reads: u32) -> Self {
        AttackParams {
            num_aggr_acts,
            num_reads,
            algorithm: Algorithm::InterleavedFlushes,
            iterations: 800_000,
        }
    }
}

/// Configuration of the victim system (paper §6.1: an Intel Comet Lake system
/// with a TRR-protected Samsung DDR4 module).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// DRAM module under attack.
    pub module: ModuleSpec,
    /// DRAM geometry used for the demonstration (rows have 128 cache blocks,
    /// as on the real module).
    pub geometry: Geometry,
    /// Latency of the first cache-block access to a closed row (activates it).
    pub first_access: Time,
    /// Latency of each subsequent cache-block access to the open row.
    pub subsequent_access: Time,
    /// Extra per-iteration time spent on flushes, fences and dummy rows.
    pub iteration_overhead: Time,
    /// Number of dummy rows used to bypass TRR (16 in the paper).
    pub dummy_rows: u32,
    /// Activations per dummy row per iteration (4 in the paper).
    pub dummy_acts: u32,
    /// How aggressively the in-DRAM TRR tracker samples aggressor rows: the
    /// probability that a refresh window is neutralized grows with the
    /// aggressors' share of the activation stream times this factor.
    pub trr_strength: f64,
    /// Maximum number of activations an aggressor row can accumulate within a
    /// refresh window before the TRR mechanism is certain to have refreshed
    /// its victims at least once. TRR is calibrated against RowHammer-scale
    /// activation counts, so this cap stops hammering but is far above what
    /// RowPress needs — the blind spot the paper's demonstration exploits.
    pub trr_escape_acts: u64,
    /// Refresh interval of the system (7.8 µs).
    pub t_refi: Time,
    /// Refresh window (64 ms): every row is auto-refreshed once per window.
    pub t_refw: Time,
    /// Number of victim rows tested (1500 in the paper).
    pub victims: u32,
    /// RNG seed for TRR sampling and victim placement.
    pub seed: u64,
}

impl SystemModel {
    /// The paper's system: a Samsung 8Gb C-die module behind TRR.
    pub fn comet_lake_trr() -> Self {
        let module = module_inventory()
            .into_iter()
            .find(|m| m.id == "S2")
            .expect("S2 (Samsung 8Gb C-die) is in the inventory");
        SystemModel {
            module,
            geometry: Geometry {
                banks: 16,
                rows_per_bank: 8192,
                bits_per_row: 65536,
                bits_per_cache_block: 512,
            },
            first_access: Time::from_ns(150.0),
            subsequent_access: Time::from_ns(100.0),
            iteration_overhead: Time::from_us(4.0),
            dummy_rows: 16,
            dummy_acts: 4,
            trr_strength: 2.5,
            trr_escape_acts: 6_000,
            t_refi: Time::from_us(7.8),
            t_refw: Time::from_ms(64.0),
            victims: 300,
            seed: 0xA17AC,
        }
    }

    /// Returns a copy testing a different number of victim rows.
    pub fn with_victims(mut self, victims: u32) -> Self {
        self.victims = victims;
        self
    }

    /// The aggressor-row-on time produced by reading `num_reads` cache blocks
    /// back to back (capped at the row's cache-block count), for the given
    /// program variant.
    pub fn t_aggon(&self, num_reads: u32, algorithm: Algorithm) -> Time {
        let reads = num_reads.clamp(1, self.geometry.cache_blocks_per_row());
        let base = self.first_access + self.subsequent_access * u64::from(reads.saturating_sub(1));
        match algorithm {
            Algorithm::ReadsThenFlushes => base,
            // Interleaving the flushes with the reads stretches the time the
            // row stays open per activation (Appendix G).
            Algorithm::InterleavedFlushes => base * 1.6,
        }
    }

    /// Wall-clock duration of one iteration of the attack loop.
    pub fn iteration_time(&self, params: &AttackParams) -> Time {
        let t_on = self.t_aggon(params.num_reads, params.algorithm);
        let per_act = t_on + Time::from_ns(15.0);
        let aggr_time = per_act * u64::from(2 * params.num_aggr_acts);
        let dummy_time = Time::from_ns(60.0) * u64::from(self.dummy_rows * self.dummy_acts);
        aggr_time + dummy_time + self.iteration_overhead
    }

    /// Fraction of iterations that stay synchronized with refresh: patterns
    /// longer than a refresh interval progressively lose synchronization
    /// (Obsv. 21).
    pub fn sync_factor(&self, params: &AttackParams) -> f64 {
        let iter_time = self.iteration_time(params).as_us();
        // Patterns remain synchronizable while they fit in a few refresh
        // intervals; beyond that, synchronization quality collapses quickly.
        let limit = 6.0 * self.t_refi.as_us();
        if iter_time <= limit {
            1.0
        } else {
            (limit / iter_time).powi(3)
        }
    }

    /// Probability that the in-DRAM TRR tracker neutralizes a refresh window
    /// (refreshing the victims before enough disturbance accumulates).
    pub fn trr_catch_probability(&self, params: &AttackParams) -> f64 {
        let aggr_acts = f64::from(2 * params.num_aggr_acts);
        let dummy_acts = f64::from(self.dummy_rows * self.dummy_acts);
        let share = aggr_acts / (aggr_acts + dummy_acts);
        (self.trr_strength * share).min(0.98)
    }
}

/// Result of an attack run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Parameters of the run.
    pub params: AttackParams,
    /// Total number of bitflips across all victim rows.
    pub total_bitflips: u64,
    /// Number of victim rows with at least one bitflip.
    pub rows_with_bitflips: u64,
    /// Victim rows tested.
    pub victims_tested: u32,
}

/// Runs the proof-of-concept program against the modeled system and counts the
/// bitflips it induces (the experiment behind Fig. 23 / Fig. 49).
pub fn run_attack(system: &SystemModel, params: &AttackParams) -> AttackOutcome {
    let bank = BankId(1);
    let mut rng = SmallRng::seed_from_u64(
        system.seed ^ (u64::from(params.num_reads) << 32) ^ u64::from(params.num_aggr_acts),
    );
    let mut module = DramModule::new(&system.module, system.geometry);
    module.set_temperature(55.0); // a warm DIMM inside a real chassis

    let t_on = system.t_aggon(params.num_reads, params.algorithm);
    let iter_time = system.iteration_time(params);
    let sync = system.sync_factor(params);
    let trr_catch = system.trr_catch_probability(params);

    // Iterations that land in one refresh window of a victim row.
    let iters_per_window = (system.t_refw.as_us() / iter_time.as_us()).floor().max(0.0);
    let total_windows = ((params.iterations as f64) / iters_per_window.max(1.0))
        .ceil()
        .max(1.0) as u64;
    let acts_per_window_per_aggressor =
        ((iters_per_window * f64::from(params.num_aggr_acts) * sync).floor() as u64)
            .min(system.trr_escape_acts);

    let mut total_bitflips = 0u64;
    let mut rows_with_bitflips = 0u64;
    let victims = system.victims.min(system.geometry.rows_per_bank / 8 - 2);

    for v in 0..victims {
        // Victim rows are spread across the bank; aggressors are its physical
        // neighbours (double-sided, as in Algorithm 1).
        let victim = RowId(8 + v * 8);
        let low = RowId(victim.0 - 1);
        let high = RowId(victim.0 + 1);
        module
            .init_row_pattern(bank, victim, DataPattern::Checkerboard, RowRole::Victim)
            .expect("victim row");
        module
            .init_row_pattern(bank, low, DataPattern::Checkerboard, RowRole::Aggressor)
            .expect("aggressor row");
        module
            .init_row_pattern(bank, high, DataPattern::Checkerboard, RowRole::Aggressor)
            .expect("aggressor row");

        // Does at least one refresh window escape TRR for this victim?
        let windows_escaping_trr = (0..total_windows.min(64))
            .filter(|_| !rng.gen_bool(trr_catch))
            .count();
        if windows_escaping_trr == 0 || acts_per_window_per_aggressor == 0 {
            continue;
        }

        // Apply one clean window's worth of disturbance: within a window the
        // two aggressors alternate, so each one's off time is roughly the
        // other's on time.
        let per_aggr_off = t_on + Time::from_ns(30.0);
        module
            .activate_many(bank, low, t_on, per_aggr_off, acts_per_window_per_aggressor)
            .expect("activate");
        module
            .activate_many(
                bank,
                high,
                t_on,
                per_aggr_off,
                acts_per_window_per_aggressor,
            )
            .expect("activate");
        let flips = module.check_row(bank, victim).expect("check victim");
        if !flips.is_empty() {
            total_bitflips += flips.len() as u64;
            rows_with_bitflips += 1;
        }
    }

    AttackOutcome {
        params: *params,
        total_bitflips,
        rows_with_bitflips,
        victims_tested: victims,
    }
}

/// One bucket of the access-latency histogram (Fig. 24).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBucket {
    /// Latency in CPU cycles (bucket center).
    pub cycles: u32,
    /// Fraction of first-block accesses in this bucket.
    pub first_access_fraction: f64,
    /// Fraction of subsequent-block accesses in this bucket.
    pub subsequent_fraction: f64,
}

/// The tAggON verification experiment of §6.3: measure the latency of the
/// first cache-block access to a row (which must activate it) versus the
/// remaining 127 accesses (which hit the open row). The ~30-cycle gap between
/// the two distributions confirms that the memory controller keeps the row
/// open across consecutive cache-block reads.
pub fn latency_verification(samples: u32, seed: u64) -> Vec<LatencyBucket> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut first = vec![0u64; 40];
    let mut rest = vec![0u64; 40];
    let base = 180u32;
    for _ in 0..samples {
        // First access: row activation + column access (~230 cycles median).
        let f = 230.0 + rng.gen_range(-8.0..8.0) + if rng.gen_bool(0.05) { 20.0 } else { 0.0 };
        // Subsequent accesses: open-row column access (~200 cycles median).
        let s = 200.0 + rng.gen_range(-8.0..8.0) + if rng.gen_bool(0.05) { 15.0 } else { 0.0 };
        let fi = ((f as u32).saturating_sub(base) / 2).min(39);
        let si = ((s as u32).saturating_sub(base) / 2).min(39);
        first[fi as usize] += 1;
        rest[si as usize] += 1;
    }
    (0..40)
        .map(|i| LatencyBucket {
            cycles: base + i * 2,
            first_access_fraction: first[i as usize] as f64 / f64::from(samples),
            subsequent_fraction: rest[i as usize] as f64 / f64::from(samples),
        })
        .collect()
}

/// Median latency (in cycles) of each access class from a histogram.
pub fn median_latencies(buckets: &[LatencyBucket]) -> (u32, u32) {
    let median_of = |select: &dyn Fn(&LatencyBucket) -> f64| -> u32 {
        let mut acc = 0.0;
        for b in buckets {
            acc += select(b);
            if acc >= 0.5 {
                return b.cycles;
            }
        }
        buckets.last().map(|b| b.cycles).unwrap_or(0)
    };
    (
        median_of(&|b| b.first_access_fraction),
        median_of(&|b| b.subsequent_fraction),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_system() -> SystemModel {
        SystemModel::comet_lake_trr().with_victims(80)
    }

    #[test]
    fn t_aggon_grows_with_num_reads() {
        let s = quick_system();
        let one = s.t_aggon(1, Algorithm::ReadsThenFlushes);
        let sixteen = s.t_aggon(16, Algorithm::ReadsThenFlushes);
        let many = s.t_aggon(128, Algorithm::ReadsThenFlushes);
        assert!(one < sixteen && sixteen < many);
        assert_eq!(one, Time::from_ns(150.0));
        // NUM_READS is capped at the 128 cache blocks of a row.
        assert_eq!(s.t_aggon(500, Algorithm::ReadsThenFlushes), many);
        // Algorithm 2 keeps the row open longer per activation.
        assert!(s.t_aggon(16, Algorithm::InterleavedFlushes) > sixteen);
    }

    #[test]
    fn sync_factor_penalizes_long_iterations() {
        let s = quick_system();
        let short = AttackParams::algorithm1(2, 1);
        let long = AttackParams::algorithm1(4, 128);
        assert!(s.sync_factor(&short) >= s.sync_factor(&long));
        assert!(s.sync_factor(&long) < 1.0);
        assert!(s.iteration_time(&long) > s.iteration_time(&short));
    }

    #[test]
    fn trr_catch_probability_tracks_aggressor_share() {
        let s = quick_system();
        let few = AttackParams::algorithm1(1, 16);
        let many = AttackParams::algorithm1(4, 16);
        assert!(s.trr_catch_probability(&many) > s.trr_catch_probability(&few));
        assert!(s.trr_catch_probability(&many) < 1.0);
    }

    #[test]
    fn rowpress_flips_where_rowhammer_cannot() {
        // The headline result of §6 (Takeaway 6): with the same activation
        // count per iteration, reading many cache blocks per activation
        // (RowPress) flips bits while the single-read pattern (RowHammer)
        // flips none or almost none.
        let s = quick_system();
        let hammer = run_attack(&s, &AttackParams::algorithm1(2, 1));
        let press = run_attack(&s, &AttackParams::algorithm1(2, 64));
        assert!(
            press.total_bitflips > hammer.total_bitflips,
            "press {} vs hammer {}",
            press.total_bitflips,
            hammer.total_bitflips
        );
        assert!(press.rows_with_bitflips > 0);
        assert!(
            hammer.rows_with_bitflips <= 1 && press.total_bitflips > 10 * hammer.total_bitflips.max(1),
            "conventional RowHammer must be (almost) completely stopped on this system: hammer {} flips in {} rows",
            hammer.total_bitflips,
            hammer.rows_with_bitflips
        );
    }

    #[test]
    fn bitflips_rise_then_fall_with_num_reads() {
        let s = quick_system();
        let flips = |nr: u32| run_attack(&s, &AttackParams::algorithm1(4, nr)).total_bitflips;
        let low = flips(1);
        let mid = flips(32);
        let high = flips(128);
        assert!(mid > low, "mid {mid} vs low {low}");
        assert!(
            mid >= high,
            "mid {mid} vs high {high} (synchronization loss)"
        );
    }

    #[test]
    fn algorithm2_is_at_least_as_effective() {
        let s = quick_system();
        let a1 = run_attack(&s, &AttackParams::algorithm1(3, 32));
        let a2 = run_attack(&s, &AttackParams::algorithm2(3, 32));
        assert!(a2.total_bitflips >= a1.total_bitflips);
    }

    #[test]
    fn attack_is_deterministic_for_fixed_seed() {
        let s = quick_system();
        let p = AttackParams::algorithm1(4, 16);
        assert_eq!(run_attack(&s, &p), run_attack(&s, &p));
    }

    #[test]
    fn latency_histogram_shows_thirty_cycle_gap() {
        let buckets = latency_verification(20_000, 9);
        let (first, rest) = median_latencies(&buckets);
        assert!(first > rest, "first access must be slower");
        let gap = first - rest;
        assert!((25..=40).contains(&gap), "gap = {gap}");
        // Fractions sum to ~1 for both classes.
        let sum_first: f64 = buckets.iter().map(|b| b.first_access_fraction).sum();
        let sum_rest: f64 = buckets.iter().map(|b| b.subsequent_fraction).sum();
        assert!((sum_first - 1.0).abs() < 1e-9);
        assert!((sum_rest - 1.0).abs() < 1e-9);
    }
}
