//! # rowpress-bench
//!
//! Shared helpers for the benchmark harness that regenerates every table and
//! figure of the RowPress paper. Each bench target (`benches/*.rs`) runs a
//! reduced-scale version of the corresponding experiment and prints the
//! measured series next to the values the paper reports, so the *shape* of the
//! result (who wins, slopes, crossovers) can be compared directly.

#![warn(missing_docs)]

use rowpress_core::ExperimentConfig;
use rowpress_dram::{ModuleSpec, Time};

/// Prints the standard banner of a figure/table reproduction.
pub fn header(id: &str, title: &str, paper_claim: &str) {
    println!("================================================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("================================================================================");
}

/// Prints a closing line so the harness output is easy to scan.
pub fn footer(id: &str) {
    println!("--- end of {id} ---\n");
}

/// The reduced-scale experiment configuration used by the characterization
/// benches: scaled-down geometry with a handful of tested rows per module.
pub fn bench_config(rows_per_module: u32) -> ExperimentConfig {
    ExperimentConfig::quick().with_rows_per_module(rows_per_module)
}

/// One representative module per manufacturer (S, H, M), used by the benches
/// that compare manufacturers rather than individual die revisions.
pub fn one_module_per_manufacturer() -> Vec<ModuleSpec> {
    ["S0", "H0", "M3"].iter().map(|id| module(id)).collect()
}

/// A small set of die-revision-diverse modules (one S, one H, one M plus the
/// most and least vulnerable dies) for the per-die sweep figures.
pub fn diverse_modules() -> Vec<ModuleSpec> {
    ["S0", "S3", "H0", "H4", "M0", "M3"]
        .iter()
        .map(|id| module(id))
        .collect()
}

/// Looks up one module by id through the engine's typed
/// [`rowpress_core::lookup_module`], panicking with its
/// `EngineError::UnknownModule` message if missing (benches have no error
/// channel to propagate through).
pub fn module(id: &str) -> ModuleSpec {
    rowpress_core::lookup_module(id).unwrap_or_else(|e| panic!("{e}"))
}

/// The module set shared by the engine-infrastructure perf benches
/// (`perf_engine`, `perf_shard`, `perf_persistent_cache`): one module per
/// manufacturer plus the most RowPress-vulnerable S die.
pub fn engine_bench_modules() -> Vec<ModuleSpec> {
    ["S0", "S3", "H0", "M3"]
        .iter()
        .map(|id| module(id))
        .collect()
}

/// Formats a tAggON value the way the paper labels its x-axes.
pub fn fmt_taggon(t: Time) -> String {
    format!("{t}")
}

/// Formats an optional ACmin value ("-" when no bitflips could be induced).
pub fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x >= 1000.0 => format!("{:.1}K", x / 1000.0),
        Some(x) => format!("{x:.1}"),
        None => "no bitflip".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_expected_shapes() {
        assert_eq!(one_module_per_manufacturer().len(), 3);
        assert_eq!(diverse_modules().len(), 6);
        assert_eq!(module("S0").id, "S0");
        assert_eq!(bench_config(4).rows_per_module, 4);
        assert_eq!(fmt_opt(None), "no bitflip");
        assert_eq!(fmt_opt(Some(1500.0)), "1.5K");
        assert_eq!(fmt_opt(Some(12.0)), "12.0");
        assert!(fmt_taggon(Time::from_us(7.8)).contains("us"));
    }
}
