//! Table 6: per-module maximum bit error rate at representative tAggON values
//! with the maximum activation count that fits the 60 ms budget.

use rowpress_bench::{bench_config, footer, header};
use rowpress_core::{acmax_sweep, PatternKind};
use rowpress_dram::{representative_modules, Time};

fn main() {
    header(
        "Table 6",
        "Maximum BER at 36 ns / 7.8 us / 70.2 us with the maximum activation count (50 C, single-sided)",
        "RowHammer BER ranges ~0.1-9%; RowPress BER at >= tREFI is orders of magnitude smaller per row",
    );
    let cfg = bench_config(3);
    let modules = representative_modules();
    let taggons = vec![Time::from_ns(36.0), Time::from_us(7.8), Time::from_us(70.2)];
    let records = acmax_sweep(&cfg, &modules, PatternKind::SingleSided, &[50.0], &taggons);
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "die", "BER@36ns", "BER@7.8us", "BER@70.2us"
    );
    for m in &modules {
        let max_ber = |t: Time| -> f64 {
            records
                .iter()
                .filter(|r| r.module.module_id == m.id && r.t_aggon == t)
                .map(|r| r.max_ber)
                .fold(0.0, f64::max)
        };
        println!(
            "{:<22} {:>11.2e} {:>11.2e} {:>11.2e}",
            format!("{} {}", m.die.manufacturer, m.die.label()),
            max_ber(taggons[0]),
            max_ber(taggons[1]),
            max_ber(taggons[2])
        );
    }
    footer("Table 6");
}
