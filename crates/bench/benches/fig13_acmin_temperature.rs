//! Fig. 13: ACmin at 80 C normalized to 50 C: RowPress gets worse with
//! temperature.

use rowpress_bench::{bench_config, fmt_taggon, footer, header, one_module_per_manufacturer};
use rowpress_core::{acmin_by_die, acmin_sweep, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 13",
        "ACmin at 80 C normalized to 50 C (single-sided)",
        "at tREFI the 80 C ACmin is only 0.55x / 0.32x / 0.59x of the 50 C value for Mfr. S / H / M",
    );
    let cfg = bench_config(5);
    let taggons = vec![Time::from_us(7.8), Time::from_us(70.2), Time::from_ms(30.0)];
    let records = acmin_sweep(
        &cfg,
        &one_module_per_manufacturer(),
        PatternKind::SingleSided,
        &[50.0, 80.0],
        &taggons,
    );
    for t in &taggons {
        for mfr_module in ["S0", "H0", "M3"] {
            let mean_at = |temp: f64| -> Option<f64> {
                let v: Vec<f64> = records
                    .iter()
                    .filter(|r| {
                        r.module.module_id == mfr_module
                            && r.t_aggon == *t
                            && r.temperature_c == temp
                    })
                    .filter_map(|r| r.ac_min.map(|a| a as f64))
                    .collect();
                if v.is_empty() {
                    None
                } else {
                    Some(v.iter().sum::<f64>() / v.len() as f64)
                }
            };
            match (mean_at(50.0), mean_at(80.0)) {
                (Some(c50), Some(c80)) => println!(
                    "{mfr_module}  tAggON {:>8}: ACmin(80C)/ACmin(50C) = {:.2}",
                    fmt_taggon(*t),
                    c80 / c50
                ),
                _ => println!(
                    "{mfr_module}  tAggON {:>8}: insufficient bitflips",
                    fmt_taggon(*t)
                ),
            }
        }
    }
    let _ = acmin_by_die(&records);
    footer("Figure 13");
}
