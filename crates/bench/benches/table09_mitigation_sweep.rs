//! Table 9 / Fig. 40-41: per-workload overhead of the adapted mitigations on
//! single-core workloads across the full tmro sweep.

use rowpress_bench::{footer, header};
use rowpress_memctrl::{RowPolicy, SystemConfig};
use rowpress_mitigations::{evaluate_single_core, summarize_overheads, MechanismKind};
use rowpress_workloads::find_workload;

fn main() {
    header(
        "Table 9 / Figures 40-41",
        "Graphene-RP and PARA-RP overhead on single-core workloads vs tmro",
        "Graphene-RP: 3.7% at 36 ns down to ~-0.5% at 186-336 ns; PARA-RP: 7-10% throughout",
    );
    let sim = SystemConfig {
        accesses_per_core: 8_000,
        policy: RowPolicy::Open,
        retire_width: 4,
        seed: 23,
    };
    let workloads: Vec<_> = [
        "429.mcf",
        "462.libquantum",
        "510.parest",
        "470.lbm",
        "483.xalancbmk",
        "h264_encode",
    ]
    .iter()
    .map(|n| find_workload(n).unwrap())
    .collect();
    let tmro = [36u32, 66, 96, 186, 336, 636];
    for kind in [MechanismKind::Graphene, MechanismKind::Para] {
        let records = evaluate_single_core(kind, 1000, &tmro, &workloads, &sim);
        println!("-- {kind:?}-RP --");
        for (_, t, avg, max) in summarize_overheads(&records) {
            println!(
                "  tmro {:>4}ns: avg overhead {:>7.2}%  max {:>7.2}%",
                t, avg, max
            );
        }
        // Per-workload detail at tmro = 96 ns.
        for r in records.iter().filter(|r| r.tmro_ns == 96) {
            println!(
                "    {:<18} overhead {:>7.2}% (normalized IPC {:.3})",
                r.workload,
                r.overhead_pct(),
                r.adapted_perf / r.baseline_perf
            );
        }
    }
    footer("Table 9");
}
