//! Fig. 25: number of 64-bit words with 1-2, 3-8 and >8 bitflips when pressing
//! at tAggON = 7.8 us with the maximum activation count, and what common ECC
//! schemes can do about them.

use rowpress_bench::{bench_config, footer, header, module};
use rowpress_core::{acmax_sweep, bitflips_per_word, PatternKind};
use rowpress_dram::Time;
use rowpress_mitigations::{EccScheme, WordAnalysis};

fn main() {
    header(
        "Figure 25",
        "64-bit words with 1-2 / 3-8 / >8 bitflips at tAggON = 7.8 us (max activation count, 80 C)",
        "a significant fraction of erroneous words carries >= 3 bitflips; SECDED and Chipkill cannot correct them all",
    );
    let cfg = bench_config(8).at_temperature(80.0);
    for kind in [PatternKind::SingleSided, PatternKind::DoubleSided] {
        let records = acmax_sweep(
            &cfg,
            &[module("S3"), module("H0")],
            kind,
            &[80.0],
            &[Time::from_us(7.8)],
        );
        let counts: Vec<usize> = records
            .iter()
            .flat_map(|r| bitflips_per_word(&r.flips, 64))
            .collect();
        let analysis = WordAnalysis::from_word_counts(&counts);
        println!(
            "{:<13} erroneous words: 1-2 flips {:>6}, 3-8 flips {:>5}, >8 flips {:>4}, worst word {} flips",
            kind.label(), analysis.words_1_2, analysis.words_3_8, analysis.words_gt_8, analysis.max_flips_in_word
        );
        for scheme in [
            EccScheme::Secded,
            EccScheme::Chipkill { symbol_bits: 8 },
            EccScheme::Hamming74,
        ] {
            println!(
                "    {:<16} fails on {:.1}% of erroneous words",
                scheme.label(),
                100.0 * analysis.uncorrectable_fraction(scheme, &counts)
            );
        }
    }
    footer("Figure 25");
}
