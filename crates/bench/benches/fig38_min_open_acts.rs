//! Fig. 38 (Appendix D.1): the minimally-open-row policy inflates the number
//! of activations a single DRAM row receives within a refresh window.

use rowpress_bench::{footer, header};
use rowpress_memctrl::{simulate_alone, NoMitigation, RowPolicy, SystemConfig};
use rowpress_workloads::find_workload;

fn main() {
    header(
        "Figure 38",
        "Maximum per-row activation count increase under the minimally-open-row policy",
        "21 of 58 workloads see >= 50x more activations to a single row; up to 372x (483.xalancbmk)",
    );
    let base = SystemConfig {
        accesses_per_core: 12_000,
        policy: RowPolicy::Open,
        retire_width: 4,
        seed: 31,
    };
    let closed = SystemConfig {
        policy: RowPolicy::Closed,
        ..base
    };
    for name in [
        "462.libquantum",
        "510.parest",
        "483.xalancbmk",
        "429.mcf",
        "h264_encode",
        "ycsb_eserver",
        "436.cactusADM",
    ] {
        let w = find_workload(name).unwrap();
        let open = simulate_alone(&w, &base, Box::new(NoMitigation));
        let min_open = simulate_alone(&w, &closed, Box::new(NoMitigation));
        let a_open = open.controller.max_row_activations_in_window.max(1);
        let a_closed = min_open.controller.max_row_activations_in_window;
        println!(
            "{:<18} open-row max acts/row {:>6}, minimally-open {:>6}  -> {:>6.1}x increase",
            name,
            a_open,
            a_closed,
            a_closed as f64 / a_open as f64
        );
    }
    footer("Figure 38");
}
