//! Criterion performance benchmark of the campaign layer's throughput work
//! (not a paper figure): parallel persistent-cache preload, learned-cost
//! dispatch, and cache compaction.
//!
//! Before criterion runs, the bench asserts the layer's contractual
//! properties and writes a machine-readable `BENCH_campaign.json` at the
//! repository root:
//!
//! * **Parallel preload** — the quick ACmin cache replayed [`REPLAYS`] times
//!   (a respawn-churn corpus) is preloaded with 1 worker and with the pooled
//!   worker count; both must seed identical caches, and on a host with >= 4
//!   cores the pooled preload must be >= 4x faster.
//! * **Learned scheduling** — on a simulated mixed grid whose analytic model
//!   misranks the long pole, dispatching by the fitted cost model must give
//!   a list-scheduling makespan no worse than the analytic order's.
//! * **Compaction** — compacting the duplicated corpus must shrink it by
//!   more than 4x and preload the identical trial set afterwards.

use criterion::{criterion_group, criterion_main, Criterion};
use rowpress_core::engine::{lookup_module, CostModel, Engine, Measurement, PersistentCache, Plan};
use rowpress_core::ExperimentConfig;
use rowpress_dram::Time;
use std::path::PathBuf;
use std::time::Instant;

/// How many times the quick-grid cache body is replicated into the preload
/// corpus — the file a shard respawned this many times would have appended.
const REPLAYS: usize = 32;

fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
    Plan::grid(cfg)
        .modules(&rowpress_bench::engine_bench_modules())
        .measurements(
            [Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)]
                .into_iter()
                .map(|t| Measurement::AcMin { t_aggon: t }),
        )
        .build()
}

fn report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_campaign.json")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rowpress-bench-{tag}-{}.jsonl", std::process::id()))
}

/// Best-of-N preload wall time at the given worker count, in seconds.
fn preload_seconds(path: &PathBuf, cfg: &ExperimentConfig, workers: usize, expect: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let started = Instant::now();
        let cache = PersistentCache::open_with_workers(path, cfg, workers).expect("open corpus");
        let elapsed = started.elapsed().as_secs_f64();
        assert_eq!(
            cache.preloaded(),
            expect,
            "preload must be worker-count-invariant"
        );
        drop(cache); // nothing journaled: the drop flush leaves the corpus untouched
        best = best.min(elapsed);
    }
    best
}

/// List-scheduling makespan of dispatching `order` onto `workers` workers.
fn makespan(order: &[usize], true_cost_us: &[u64], workers: usize) -> u64 {
    let mut free = vec![0u64; workers];
    for &index in order {
        let worker = (0..workers).min_by_key(|&w| free[w]).unwrap();
        free[worker] += true_cost_us[index];
    }
    free.into_iter().max().unwrap_or(0)
}

fn bench_campaign(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let plan = acmin_plan(&cfg);
    let path = temp_path("campaign-corpus");
    std::fs::remove_file(&path).ok();
    {
        let persistent = PersistentCache::open(&path, &cfg).expect("create cache");
        let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
        engine.run_collect(&plan).expect("quick grid");
    }

    // The preload corpus: the flushed quick-grid cache with its record body
    // replicated REPLAYS times, as a shard respawned that often would have
    // appended it.
    let text = std::fs::read_to_string(&path).expect("read cache");
    let header = text.lines().next().expect("header").to_string();
    let body: Vec<&str> = text.lines().skip(1).collect();
    let mut corpus = header.clone();
    corpus.push('\n');
    for _ in 0..REPLAYS {
        for line in &body {
            corpus.push_str(line);
            corpus.push('\n');
        }
    }
    std::fs::write(&path, &corpus).expect("write corpus");
    let corpus_lines = REPLAYS * body.len();

    let cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let parallel_workers = rowpress_core::campaign::worker_count().max(4);
    let seq = preload_seconds(&path, &cfg, 1, plan.len());
    let par = preload_seconds(&path, &cfg, parallel_workers, plan.len());
    let preload_lines_per_s = corpus_lines as f64 / seq.max(1e-12);
    let preload_speedup_parallel = seq / par.max(1e-12);

    // Learned vs analytic dispatch on a mixed grid whose analytic model
    // misranks the long pole: many retention trials with huge modeled
    // durations that are nearly free on the wall clock, plus genuinely
    // expensive press searches.
    let mixed_cfg = ExperimentConfig::quick().with_rows_per_module(1);
    let mixed = Plan::grid(&mixed_cfg)
        .module(&lookup_module("S3").expect("inventory module"))
        .measurements(
            std::iter::once(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .chain([4.0, 5.0, 6.0, 7.0, 8.0].into_iter().map(|secs| {
                Measurement::Retention {
                    duration: Time::from_secs(secs),
                }
            })),
        )
        .build();
    let true_cost_us: Vec<u64> = mixed
        .trials()
        .iter()
        .map(|t| match t.measurement {
            Measurement::AcMin { .. } => 1_000,
            Measurement::Retention { .. } => 10,
            _ => unreachable!("mixed grid holds only press and retention"),
        })
        .collect();
    let analytic = CostModel::default();
    let fitted = analytic.fit(
        &mixed_cfg,
        mixed
            .trials()
            .iter()
            .zip(&true_cost_us)
            .map(|(t, &w)| (t, w)),
    );
    assert!(
        fitted.is_learned(),
        "wall-time samples must fit a learned model"
    );
    let workers = 4;
    let analytic_makespan = makespan(
        &analytic.dispatch_order(&mixed_cfg, mixed.trials()),
        &true_cost_us,
        workers,
    );
    let learned_makespan = makespan(
        &fitted.dispatch_order(&mixed_cfg, mixed.trials()),
        &true_cost_us,
        workers,
    );
    let makespan_ratio = learned_makespan as f64 / analytic_makespan.max(1) as f64;

    // Compaction of the duplicated corpus: REPLAYS-fold duplication must
    // shrink by more than 4x and preload the identical trial set after.
    let mut compactable =
        PersistentCache::open_with_workers(&path, &cfg, parallel_workers).expect("open corpus");
    let stats = compactable.compact(None).expect("compact corpus");
    drop(compactable);
    let compaction_ratio = stats.bytes_before as f64 / stats.bytes_after.max(1) as f64;
    assert_eq!(stats.records_after, plan.len());
    let recheck = PersistentCache::open(&path, &cfg).expect("reopen compacted");
    assert_eq!(
        recheck.preloaded(),
        plan.len(),
        "compaction must lose no trial"
    );
    drop(recheck);

    println!(
        "perf_campaign: preload {corpus_lines} lines at {preload_lines_per_s:.0} lines/s \
         sequential, {preload_speedup_parallel:.2}x with {parallel_workers} workers \
         ({cores} cores), learned/analytic makespan {makespan_ratio:.3}, \
         compaction {compaction_ratio:.1}x",
    );
    let report = format!(
        "{{\n  \"bench\": \"perf_campaign\",\n  \
         \"grid\": \"quick-scale ACmin x{REPLAYS} replays\",\n  \
         \"corpus_lines\": {corpus_lines},\n  \"cores\": {cores},\n  \
         \"preload_workers\": {parallel_workers},\n  \
         \"preload_lines_per_s\": {preload_lines_per_s:.0},\n  \
         \"preload_speedup_parallel\": {preload_speedup_parallel:.2},\n  \
         \"makespan_ratio_learned_vs_analytic\": {makespan_ratio:.3},\n  \
         \"compaction_ratio\": {compaction_ratio:.1}\n}}\n",
    );
    std::fs::write(report_path(), report).expect("write BENCH_campaign.json");

    assert!(
        makespan_ratio <= 1.0,
        "learned dispatch must not worsen the simulated makespan, got {makespan_ratio:.3}"
    );
    assert!(
        compaction_ratio > 4.0,
        "compacting a {REPLAYS}x-duplicated corpus must shrink it > 4x, \
         got {compaction_ratio:.1}x"
    );
    if cores >= 4 {
        assert!(
            preload_speedup_parallel >= 4.0,
            "parallel preload must be >= 4x on a {cores}-core host, \
             got {preload_speedup_parallel:.2}x"
        );
    }

    // Criterion timings over a freshly duplicated corpus (compaction above
    // rewrote the file, so restore it first).
    std::fs::write(&path, &corpus).expect("restore corpus");
    c.bench_function("campaign_cache_preload_sequential", |b| {
        b.iter(|| {
            let cache = PersistentCache::open_with_workers(&path, &cfg, 1).expect("open corpus");
            std::hint::black_box(cache.preloaded())
        })
    });
    c.bench_function("campaign_cache_preload_parallel", |b| {
        b.iter(|| {
            let cache = PersistentCache::open_with_workers(&path, &cfg, parallel_workers)
                .expect("open corpus");
            std::hint::black_box(cache.preloaded())
        })
    });
    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_campaign
}
criterion_main!(benches);
