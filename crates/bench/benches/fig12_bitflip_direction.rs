//! Fig. 12: fraction of 1->0 bitflips vs tAggON: RowHammer and RowPress flip
//! bits in opposite directions.

use rowpress_bench::{bench_config, fmt_taggon, footer, header, module};
use rowpress_core::{acmin_sweep, fraction_one_to_zero, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 12",
        "Fraction of 1->0 bitflips as tAggON increases",
        "RowHammer flips are dominantly 0->1, RowPress flips 1->0 (Mfr. M 16Gb E-die shows the opposite trend)",
    );
    let cfg = bench_config(8);
    let taggons = vec![Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)];
    let modules = vec![module("S3"), module("M3")];
    let records = acmin_sweep(&cfg, &modules, PatternKind::SingleSided, &[50.0], &taggons);
    let directions = fraction_one_to_zero(&records);
    for (label, die) in [
        ("Mfr. S 8Gb D-Die", "8Gb D-Die"),
        ("Mfr. M 16Gb E-Die", "16Gb E-Die"),
    ] {
        print!("{label:<18}");
        for t in &taggons {
            match directions.get(&(die.to_string(), t.as_ps())) {
                Some(f) => print!("  {}: {:.2}", fmt_taggon(*t), f),
                None => print!("  {}: n/a", fmt_taggon(*t)),
            }
        }
        println!();
    }
    println!("expected: S die rises toward 1.0 with tAggON; M 16Gb E-die stays low/decreases (anti-cells)");
    footer("Figure 12");
}
