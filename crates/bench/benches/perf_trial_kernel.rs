//! Criterion performance benchmark of the trial execution kernel (not a
//! paper figure): per-trial cost of the quick-scale ACmin grid under the
//! precomputed-profile kernel against the scalar reference path the kernel
//! replaced, plus the warm in-process cache replay rate.
//!
//! Before criterion runs, the bench asserts the kernel's contractual
//! properties — outcomes byte-identical to the reference path, a ≥ 5x median
//! cold-trial speedup over the scalar reference, and a ≥ 2.5x speedup over
//! the PR 4 kernel median (the pre-word-block, pre-profile-store floor) —
//! and writes a machine-readable `BENCH_trial_kernel.json` at the repository
//! root so future PRs have a perf trajectory to regress against. The report
//! also records the word-skip rate of the word-block scan and the profile
//! store's hit rate, so the trajectory explains *why* the numbers move.

use criterion::{criterion_group, criterion_main, Criterion};
use rowpress_core::engine::{run_trial, run_trial_reference, Engine, Measurement, Plan};
use rowpress_core::{ExperimentConfig, TrialScratch};
use rowpress_dram::{reset_scan_word_stats, scan_word_stats, ProfileStore, Time};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The kernel cold-trial median BENCH_trial_kernel.json recorded before the
/// word-block + profile-store optimizations (PR 4's flat-storage kernel).
const PR4_KERNEL_US_MEDIAN: f64 = 915.7;

fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
    Plan::grid(cfg)
        .modules(&rowpress_bench::engine_bench_modules())
        .measurements(
            [Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)]
                .into_iter()
                .map(|t| Measurement::AcMin { t_aggon: t }),
        )
        .build()
}

fn median_us(mut samples: Vec<Duration>) -> f64 {
    samples.sort_unstable();
    samples[samples.len() / 2].as_secs_f64() * 1e6
}

fn report_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trial_kernel.json")
}

fn bench_trial_kernel(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let plan = acmin_plan(&cfg);
    let trials = plan.trials();
    // A private store keeps the hit/miss counters scoped to this timing loop
    // instead of mixing with whatever else the process interned globally.
    let store = ProfileStore::new();
    let mut scratch = TrialScratch::with_profile_store(store.clone());
    reset_scan_word_stats();

    // Correctness gate: every trial outcome of the kernel path must equal the
    // scalar reference path's, and per-trial times feed the medians.
    let mut kernel_times = Vec::with_capacity(trials.len());
    let mut reference_times = Vec::with_capacity(trials.len());
    for trial in trials {
        let started = Instant::now();
        let kernel = run_trial(&cfg, trial, &mut scratch).expect("valid site");
        kernel_times.push(started.elapsed());
        let started = Instant::now();
        let reference = run_trial_reference(&cfg, trial).expect("valid site");
        reference_times.push(started.elapsed());
        assert_eq!(kernel, reference, "kernel diverged on {trial:?}");
    }
    let kernel_us = median_us(kernel_times);
    let reference_us = median_us(reference_times);
    let speedup = reference_us / kernel_us.max(1e-9);
    let speedup_vs_pr4 = PR4_KERNEL_US_MEDIAN / kernel_us.max(1e-9);
    let words = scan_word_stats();
    let word_skip_rate = words.skip_rate();
    let store_hit_rate = store.hit_rate();
    assert!(
        words.words_visited + words.words_skipped > 0,
        "word-block scan ran no words — instrumentation is broken"
    );
    assert!(
        store.hits() > 0,
        "profile store saw no hits on a grid with repeated (bank, row) sites"
    );

    // Warm replay: the in-process cache answers every trial.
    let warm_engine = Engine::new(&cfg);
    let baseline = warm_engine.run_collect(&plan).expect("valid site");
    let started = Instant::now();
    let replay = warm_engine.run_collect(&plan).expect("valid site");
    let warm_us = started.elapsed().as_secs_f64() * 1e6 / plan.len() as f64;
    assert_eq!(replay, baseline, "warm replay must be identical");

    println!(
        "perf_trial_kernel: {} trials, median cold trial {kernel_us:.0}us (kernel) vs \
         {reference_us:.0}us (reference) = {speedup:.1}x ({speedup_vs_pr4:.1}x vs PR4 kernel), \
         warm replay {warm_us:.1}us/trial, word skip rate {:.1}%, \
         profile store hit rate {:.1}%",
        plan.len(),
        word_skip_rate * 100.0,
        store_hit_rate * 100.0,
    );
    let report = format!(
        "{{\n  \"bench\": \"perf_trial_kernel\",\n  \"grid\": \"quick-scale ACmin\",\n  \
         \"trials\": {},\n  \"reference_cold_trial_us_median\": {reference_us:.1},\n  \
         \"kernel_cold_trial_us_median\": {kernel_us:.1},\n  \
         \"warm_replay_us_per_trial\": {warm_us:.1},\n  \"speedup_cold\": {speedup:.1},\n  \
         \"speedup_vs_pr4_kernel\": {speedup_vs_pr4:.1},\n  \
         \"word_skip_rate\": {word_skip_rate:.3},\n  \
         \"profile_store_hit_rate\": {store_hit_rate:.3}\n}}\n",
        plan.len(),
    );
    std::fs::write(report_path(), report).expect("write BENCH_trial_kernel.json");
    assert!(
        speedup >= 5.0,
        "trial kernel must be >= 5x faster than the reference path, got {speedup:.1}x"
    );
    assert!(
        speedup_vs_pr4 >= 2.5,
        "trial kernel must be >= 2.5x faster than the PR 4 kernel median \
         ({PR4_KERNEL_US_MEDIAN}us), got {speedup_vs_pr4:.1}x ({kernel_us:.1}us)"
    );

    c.bench_function("acmin_grid_trial_kernel_cold", |b| {
        let mut scratch = TrialScratch::new();
        b.iter(|| {
            for trial in trials {
                std::hint::black_box(run_trial(&cfg, trial, &mut scratch).expect("valid site"));
            }
        })
    });
    c.bench_function("acmin_grid_trial_reference_cold", |b| {
        b.iter(|| {
            for trial in trials {
                std::hint::black_box(run_trial_reference(&cfg, trial).expect("valid site"));
            }
        })
    });
    c.bench_function("acmin_grid_trial_kernel_warm_cache", |b| {
        b.iter(|| warm_engine.run_collect(&plan).expect("valid site").len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_trial_kernel
}
criterion_main!(benches);
