//! Fig. 39 (Appendix D.1): IPC of the minimally-open-row policy normalized to
//! the open-row baseline.

use rowpress_bench::{footer, header};
use rowpress_memctrl::{simulate_alone, NoMitigation, RowPolicy, SystemConfig};
use rowpress_workloads::find_workload;

fn main() {
    header(
        "Figure 39",
        "Normalized IPC of the minimally-open-row policy",
        "up to 34% slowdown (462.libquantum, normalized IPC 0.66); high-row-locality workloads suffer most",
    );
    let base = SystemConfig {
        accesses_per_core: 12_000,
        policy: RowPolicy::Open,
        retire_width: 4,
        seed: 37,
    };
    let closed = SystemConfig {
        policy: RowPolicy::Closed,
        ..base
    };
    for name in [
        "462.libquantum",
        "510.parest",
        "505.mcf",
        "482.sphinx3",
        "429.mcf",
        "ycsb_cserver",
        "h264_decode",
    ] {
        let w = find_workload(name).unwrap();
        let open = simulate_alone(&w, &base, Box::new(NoMitigation)).cores[0].ipc();
        let min_open = simulate_alone(&w, &closed, Box::new(NoMitigation)).cores[0].ipc();
        println!(
            "{:<18} normalized IPC = {:.3}  (row-hit rate {:.2})",
            name,
            min_open / open,
            w.row_hit_rate
        );
    }
    footer("Figure 39");
}
