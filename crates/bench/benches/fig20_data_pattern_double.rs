//! Fig. 20: data-pattern effectiveness with the double-sided access pattern
//! (Mfr. S 8Gb B-die).

use rowpress_bench::{bench_config, fmt_taggon, footer, header, module};
use rowpress_core::{data_pattern_sweep, PatternKind};
use rowpress_dram::{DataPattern, Time};

fn main() {
    header(
        "Figure 20",
        "Normalized ACmin of each data pattern, double-sided pattern, Mfr. S 8Gb B-die",
        "similar to the single-sided results; the column-stripe family gains effectiveness as tAggON grows",
    );
    let cfg = bench_config(4);
    let taggons = vec![Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(6.0)];
    for temp in [50.0, 80.0] {
        println!("-- double-sided at {temp} C --");
        let records = data_pattern_sweep(
            &cfg,
            &module("S0"),
            PatternKind::DoubleSided,
            &DataPattern::all(),
            &taggons,
            temp,
        );
        for pattern in DataPattern::all() {
            print!("{:<4}", pattern.label());
            for t in &taggons {
                let r = records
                    .iter()
                    .find(|r| r.pattern == pattern && r.t_aggon == *t)
                    .unwrap();
                match r.normalized_to_cb {
                    Some(n) => print!("  {}: {:.2}", fmt_taggon(*t), n),
                    None => print!("  {}: no bitflip", fmt_taggon(*t)),
                }
            }
            println!();
        }
    }
    footer("Figure 20");
}
