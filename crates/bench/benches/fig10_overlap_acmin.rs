//! Fig. 10: overlap of RowPress-vulnerable cells (at ACmin) with
//! RowHammer-vulnerable cells and retention-failure cells.

use rowpress_bench::{bench_config, fmt_taggon, footer, header, module};
use rowpress_core::{acmin_sweep, overlap_analysis, retention_failures, PatternKind};
use rowpress_dram::Time;
use std::collections::BTreeMap;

fn main() {
    header(
        "Figure 10",
        "Overlap of RowPress cells @ACmin with RowHammer cells and retention failures",
        "less than 0.013% overlap with RowHammer and less than 0.34% with retention failures for tAggON >= tREFI",
    );
    let cfg = bench_config(8);
    let modules = vec![module("S3"), module("H0")];
    let taggons = vec![Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)];
    let mut retention = BTreeMap::new();
    for m in &modules {
        retention.insert(
            m.id.clone(),
            retention_failures(&cfg, m, 80.0, Time::from_secs(4.0)).expect("retention test"),
        );
    }
    let records = acmin_sweep(&cfg, &modules, PatternKind::SingleSided, &[50.0], &taggons);
    for o in overlap_analysis(&records, &retention) {
        println!(
            "{} {:<12} tAggON {:>8}: overlap with RowHammer {:.4}, with retention {:.4} ({} press cells)",
            o.module.module_id,
            o.module.die_label,
            fmt_taggon(o.t_aggon),
            o.with_hammer,
            o.with_retention,
            o.press_cells
        );
    }
    footer("Figure 10");
}
