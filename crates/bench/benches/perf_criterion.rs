//! Criterion performance benchmarks of the simulator itself (not a paper
//! figure): how fast the device model evaluates disturbance and how fast the
//! ACmin search converges.

use criterion::{criterion_group, criterion_main, Criterion};
use rowpress_core::{find_ac_min, ExperimentConfig, PatternKind, PatternSite};
use rowpress_dram::{
    module_inventory, BankId, DataPattern, DramModule, Geometry, RowId, RowRole, Time,
};

fn bench_device_model(c: &mut Criterion) {
    let spec = module_inventory().remove(0);
    c.bench_function("check_row_8192_cells", |b| {
        let mut module = DramModule::new(&spec, Geometry::scaled_down());
        let bank = BankId(1);
        module
            .init_row_pattern(
                bank,
                RowId(20),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        module
            .init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        module
            .activate_many(
                bank,
                RowId(20),
                Time::from_us(7.8),
                Time::from_ns(15.0),
                5000,
            )
            .unwrap();
        b.iter(|| module.check_row(bank, RowId(21)).unwrap().len())
    });
    c.bench_function("activate_many_bulk", |b| {
        let mut module = DramModule::new(&spec, Geometry::scaled_down());
        let bank = BankId(1);
        module
            .init_row_pattern(
                bank,
                RowId(20),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        b.iter(|| {
            module
                .activate_many(
                    bank,
                    RowId(20),
                    Time::from_ns(36.0),
                    Time::from_ns(15.0),
                    1000,
                )
                .unwrap()
        })
    });
    c.bench_function("acmin_bisection_search", |b| {
        let cfg = ExperimentConfig::test_scale();
        let mut module = DramModule::new(&spec, cfg.geometry);
        let site = PatternSite::for_kind(
            PatternKind::SingleSided,
            BankId(1),
            RowId(20),
            cfg.geometry.rows_per_bank,
        );
        b.iter(|| {
            find_ac_min(
                &mut module,
                &site,
                Time::from_us(7.8),
                DataPattern::Checkerboard,
                &cfg,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_device_model
}
criterion_main!(benches);
