//! Fig. 14: fraction of rows with at least one bitflip at 80 C.

use rowpress_bench::{bench_config, diverse_modules, fmt_taggon, footer, header};
use rowpress_core::{acmin_sweep, fraction_rows_with_flips, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 14",
        "Fraction of rows with at least one bitflip at 80 C (single-sided)",
        "almost all press-vulnerable dies reach ~100% of rows at 80 C; even Mfr. H 4Gb A-die shows some rows",
    );
    let cfg = bench_config(8).at_temperature(80.0);
    let taggons = vec![
        Time::from_ns(36.0),
        Time::from_us(70.2),
        Time::from_ms(30.0),
    ];
    let records = acmin_sweep(
        &cfg,
        &diverse_modules(),
        PatternKind::SingleSided,
        &[80.0],
        &taggons,
    );
    let fractions = fraction_rows_with_flips(&records);
    let mut dies: Vec<String> = fractions.keys().map(|(d, _)| d.clone()).collect();
    dies.sort();
    dies.dedup();
    for die in dies {
        print!("{die:<12}");
        for t in &taggons {
            if let Some(f) = fractions.get(&(die.clone(), t.as_ps())) {
                print!(" {}={:.2}", fmt_taggon(*t), f);
            }
        }
        println!();
    }
    footer("Figure 14");
}
