//! Fig. 22: bit error rate of the RowPress-ONOFF pattern as the tA2A slack is
//! shifted between the on time and the off time.

use rowpress_bench::{bench_config, footer, header, module};
use rowpress_core::{onoff_sweep, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 22",
        "BER of the RowPress-ONOFF pattern (Mfr. S 8Gb D-die)",
        "small slack: BER falls as the on time grows (hammer recombination); large slack: BER rises (press); double-sided always rises",
    );
    let cfg = bench_config(4);
    let deltas = vec![
        Time::from_ns(240.0),
        Time::from_ns(1200.0),
        Time::from_ns(6000.0),
    ];
    let fractions = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    let records = onoff_sweep(
        &cfg,
        &[module("S3")],
        &[PatternKind::SingleSided, PatternKind::DoubleSided],
        &deltas,
        &fractions,
        &[50.0, 80.0],
    );
    for kind in [PatternKind::SingleSided, PatternKind::DoubleSided] {
        for temp in [50.0, 80.0] {
            println!("-- {} at {temp} C --", kind.label());
            for d in &deltas {
                print!("  dtA2A {:>7}:", format!("{d}"));
                for f in &fractions {
                    let v: Vec<f64> = records
                        .iter()
                        .filter(|r| {
                            r.kind == kind
                                && r.temperature_c == temp
                                && r.delta_a2a == *d
                                && (r.on_fraction - f).abs() < 1e-9
                        })
                        .map(|r| r.ber)
                        .collect();
                    let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
                    print!(" {:.0}%={:.2e}", f * 100.0, mean);
                }
                println!();
            }
        }
    }
    footer("Figure 22");
}
