//! Fig. 11: overlap of RowPress and RowHammer cells when activating as many
//! times as possible (at ACmax).

use rowpress_bench::{bench_config, fmt_taggon, footer, header, module};
use rowpress_core::{acmax_sweep, overlap_ratio, retention_failures, PatternKind};
use rowpress_dram::{CellAddr, Time};
use std::collections::HashSet;

fn main() {
    header(
        "Figure 11",
        "Overlap of RowPress cells @ACmax with RowHammer cells @ACmax and retention failures",
        "the overlap with RowHammer-vulnerable cells drops sharply as tAggON increases",
    );
    let cfg = bench_config(6);
    let spec = module("S3");
    let taggons = vec![Time::from_ns(36.0), Time::from_us(7.8), Time::from_us(70.2)];
    let records = acmax_sweep(
        &cfg,
        std::slice::from_ref(&spec),
        PatternKind::SingleSided,
        &[50.0],
        &taggons,
    );
    let cells_at = |t: Time| -> HashSet<CellAddr> {
        records
            .iter()
            .filter(|r| r.t_aggon == t)
            .flat_map(|r| r.flips.iter().map(|f| f.addr))
            .collect()
    };
    let hammer = cells_at(Time::from_ns(36.0));
    let retention = retention_failures(&cfg, &spec, 80.0, Time::from_secs(4.0)).expect("retention");
    for t in &taggons[1..] {
        let press = cells_at(*t);
        println!(
            "tAggON {:>8}: overlap with RowHammer {:.4}, with retention {:.4} ({} cells)",
            fmt_taggon(*t),
            overlap_ratio(&press, &hammer),
            overlap_ratio(&press, &retention),
            press.len()
        );
    }
    footer("Figure 11");
}
