//! Fig. 24: latency of the first vs subsequent cache-block accesses to a DRAM
//! row (verifying that the memory controller keeps the row open).

use rowpress_attack::{latency_verification, median_latencies};
use rowpress_bench::{footer, header};

fn main() {
    header(
        "Figure 24",
        "Histogram of first vs subsequent cache-block access latency",
        "the median latencies differ by ~30 cycles: the first access activates the row, the rest hit the open row",
    );
    let buckets = latency_verification(100_000, 42);
    let (first, rest) = median_latencies(&buckets);
    for b in buckets
        .iter()
        .filter(|b| b.first_access_fraction > 0.005 || b.subsequent_fraction > 0.005)
    {
        println!(
            "{:>4} cycles: first {:>5.1}%  subsequent {:>5.1}%",
            b.cycles,
            b.first_access_fraction * 100.0,
            b.subsequent_fraction * 100.0
        );
    }
    println!("median first access = {first} cycles, median subsequent = {rest} cycles, gap = {} (paper: 30 cycles)", first - rest);
    footer("Figure 24");
}
