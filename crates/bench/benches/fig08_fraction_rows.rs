//! Fig. 8: fraction of tested rows with at least one bitflip vs tAggON
//! (single-sided, 50 C).

use rowpress_bench::{bench_config, diverse_modules, fmt_taggon, footer, header};
use rowpress_core::{acmin_sweep, fraction_rows_with_flips, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 8",
        "Fraction of rows that experience at least one bitflip (single-sided, 50 C)",
        "more advanced nodes have more vulnerable rows; Mfr. S D-die approaches 100%, B-die stays below ~60%",
    );
    let cfg = bench_config(8);
    let taggons = vec![
        Time::from_ns(36.0),
        Time::from_us(7.8),
        Time::from_us(70.2),
        Time::from_ms(6.0),
        Time::from_ms(30.0),
    ];
    let records = acmin_sweep(
        &cfg,
        &diverse_modules(),
        PatternKind::SingleSided,
        &[50.0],
        &taggons,
    );
    let fractions = fraction_rows_with_flips(&records);
    let mut dies: Vec<String> = fractions.keys().map(|(d, _)| d.clone()).collect();
    dies.sort();
    dies.dedup();
    for die in dies {
        print!("{die:<12}");
        for t in &taggons {
            if let Some(f) = fractions.get(&(die.clone(), t.as_ps())) {
                print!(" {}={:.2}", fmt_taggon(*t), f);
            }
        }
        println!();
    }
    footer("Figure 8");
}
