//! Fig. 18: single-sided minus double-sided ACmin at 50 C and 80 C: beyond a
//! certain tAggON, single-sided RowPress becomes the more effective pattern.

use rowpress_bench::{bench_config, fmt_taggon, footer, header, module};
use rowpress_core::{acmin_sweep, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 18",
        "Single-sided ACmin minus double-sided ACmin (50 C and 80 C)",
        "negative at small tAggON (double-sided wins) but positive... actually the paper plots single-double: below zero means single-sided needs fewer activations; single-sided wins for tAggON > ~7.8 us",
    );
    let cfg = bench_config(5);
    let taggons = vec![
        Time::from_ns(36.0),
        Time::from_ns(636.0),
        Time::from_us(7.8),
        Time::from_us(70.2),
    ];
    let modules = vec![module("S0")];
    for temp in [50.0, 80.0] {
        let single = acmin_sweep(
            &cfg.at_temperature(temp),
            &modules,
            PatternKind::SingleSided,
            &[temp],
            &taggons,
        );
        let double = acmin_sweep(
            &cfg.at_temperature(temp),
            &modules,
            PatternKind::DoubleSided,
            &[temp],
            &taggons,
        );
        print!("S0 8Gb B-Die @ {temp}C:");
        for t in &taggons {
            let mean = |records: &[rowpress_core::AcMinRecord]| -> Option<f64> {
                let v: Vec<f64> = records
                    .iter()
                    .filter(|r| r.t_aggon == *t)
                    .filter_map(|r| r.ac_min.map(|a| a as f64))
                    .collect();
                if v.is_empty() {
                    None
                } else {
                    Some(v.iter().sum::<f64>() / v.len() as f64)
                }
            };
            match (mean(&single), mean(&double)) {
                (Some(s), Some(d)) => print!("  {}: {:+.0}", fmt_taggon(*t), s - d),
                _ => print!("  {}: n/a", fmt_taggon(*t)),
            }
        }
        println!();
    }
    println!("expected: positive differences at 36 ns (double-sided better), negative at >= 7.8 us (single-sided better)");
    footer("Figure 18");
}
