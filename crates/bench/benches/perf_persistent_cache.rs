//! Criterion performance benchmark of the persistent cross-process trial
//! cache (not a paper figure): a cold ACmin grid against a second "process"
//! that preloads the first one's `PersistentCache` JSONL file and replays
//! the grid without recomputing a single trial — the paper's
//! "never recompute a measured point" discipline across processes.

use criterion::{criterion_group, criterion_main, Criterion};
use rowpress_core::engine::{Engine, Measurement, PersistentCache, Plan};
use rowpress_core::ExperimentConfig;
use rowpress_dram::Time;
use std::path::PathBuf;
use std::time::Instant;

fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
    Plan::grid(cfg)
        .modules(&rowpress_bench::engine_bench_modules())
        .measurements(
            [Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)]
                .into_iter()
                .map(|t| Measurement::AcMin { t_aggon: t }),
        )
        .build()
}

fn cache_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "rowpress-perf-persistent-cache-{}.jsonl",
        std::process::id()
    ))
}

fn bench_persistent_cache(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let plan = acmin_plan(&cfg);
    let path = cache_path();
    std::fs::remove_file(&path).ok();

    // "Process" 1: one cold run populates the cache file.
    let baseline = {
        let persistent = PersistentCache::open(&path, &cfg).expect("cache file");
        Engine::new(&cfg)
            .with_persistent_cache(&persistent)
            .run_collect(&plan)
            .expect("valid site")
        // Dropping `persistent` flushes the outcomes to disk.
    };

    // Correctness and headline-ratio gates before criterion runs: a second
    // "process" preloading the file must replay byte-identically without
    // computing anything, and the warm replay (including the JSONL preload
    // parse) must be >= 100x faster than the cold run.
    let cold_started = Instant::now();
    let cold = Engine::new(&cfg).run_collect(&plan).expect("valid site");
    let cold_elapsed = cold_started.elapsed();
    assert_eq!(cold, baseline);
    let warm_started = Instant::now();
    let warm = {
        let persistent = PersistentCache::open(&path, &cfg).expect("cache file");
        assert_eq!(persistent.preloaded(), plan.len());
        let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
        let records = engine.run_collect(&plan).expect("valid site");
        assert_eq!(engine.cache().misses(), 0, "warm replay must not compute");
        records
    };
    let warm_elapsed = warm_started.elapsed();
    assert_eq!(warm, baseline, "preloaded replay must be identical");
    let speedup = cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9);
    println!(
        "perf_persistent_cache: {} trials, cold {:?}, warm preload+replay {:?} ({speedup:.0}x)",
        plan.len(),
        cold_elapsed,
        warm_elapsed
    );
    assert!(
        speedup >= 100.0,
        "persistent-cache replay must be >= 100x faster, got {speedup:.1}x"
    );

    c.bench_function("acmin_grid_cold_no_cache", |b| {
        // A fresh private cache per iteration: every trial computes.
        b.iter(|| {
            Engine::new(&cfg)
                .run_collect(&plan)
                .expect("valid site")
                .len()
        })
    });
    c.bench_function("acmin_grid_warm_persistent_preload", |b| {
        // A new "process" per iteration: open the file, preload, replay.
        b.iter(|| {
            let persistent = PersistentCache::open(&path, &cfg).expect("cache file");
            Engine::new(&cfg)
                .with_persistent_cache(&persistent)
                .run_collect(&plan)
                .expect("valid site")
                .len()
        })
    });

    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_persistent_cache
}
criterion_main!(benches);
