//! Fig. 9: minimum tAggON to induce a bitflip as the activation count grows.

use rowpress_bench::{bench_config, footer, header, one_module_per_manufacturer};
use rowpress_core::stats::loglog_slope;
use rowpress_core::taggonmin_sweep;

fn main() {
    header(
        "Figure 9",
        "tAggONmin vs aggressor activation count (single-sided, 50 C)",
        "tAggONmin falls from ~44-48 ms at AC=1 to ~4.3-4.8 us at AC=10K; slope about -1.0 in log-log",
    );
    let cfg = bench_config(4);
    let acs = [1u64, 10, 100, 1_000, 10_000];
    let records = taggonmin_sweep(&cfg, &one_module_per_manufacturer(), &acs, &[50.0]);
    for module in ["S0", "H0", "M3"] {
        let mut curve = Vec::new();
        print!("{module:<4}");
        for &ac in &acs {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.module.module_id == module && r.ac == ac)
                .filter_map(|r| r.t_aggon_min.map(|t| t.as_us()))
                .collect();
            if values.is_empty() {
                print!("  AC={ac}: none");
            } else {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                print!("  AC={ac}: {mean:.1}us");
                curve.push((ac as f64, mean));
            }
        }
        match loglog_slope(&curve) {
            Some(s) => println!("  | slope = {s:.3} (paper: about -1.000)"),
            None => println!("  | not enough points"),
        }
    }
    footer("Figure 9");
}
