//! Fig. 42-45 (Appendix E): repeatability of RowPress bitflips across five
//! repetitions of the same experiment.

use rowpress_bench::{bench_config, footer, header, module};
use rowpress_core::{repeatability_study, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 42",
        "Repeatability of RowPress bitflips over five iterations",
        "the majority of bitflips (>= 50-62%) recur in all five iterations",
    );
    let cfg = bench_config(6);
    for (label, jitter) in [
        ("deterministic device", 0.0),
        ("with run-to-run threshold jitter", 0.3),
    ] {
        let record = repeatability_study(
            &cfg,
            &module("S3"),
            PatternKind::SingleSided,
            Time::from_us(70.2),
            80.0,
            5,
            jitter,
        );
        let total: usize = record.occurrences.iter().sum();
        print!("{label:<36}");
        for (i, count) in record.occurrences.iter().enumerate() {
            print!(
                "  {}x: {:.0}%",
                i + 1,
                100.0 * *count as f64 / total.max(1) as f64
            );
        }
        println!(
            "  (fully repeatable: {:.0}%)",
            100.0 * record.fully_repeatable_fraction()
        );
    }
    footer("Figure 42");
}
