//! Fig. 15: tAggONmin at AC = 1 as temperature increases from 50 C to 80 C.

use rowpress_bench::{bench_config, footer, header, one_module_per_manufacturer};
use rowpress_core::taggonmin_sweep;

fn main() {
    header(
        "Figure 15",
        "tAggONmin at AC=1 vs temperature",
        "average tAggONmin shrinks by 1.78x / 2.84x / 1.64x (S / H / M) going from 50 C to 80 C",
    );
    let cfg = bench_config(4);
    let temps = [50.0, 60.0, 70.0, 80.0];
    let records = taggonmin_sweep(&cfg, &one_module_per_manufacturer(), &[1], &temps);
    for module in ["S0", "H0", "M3"] {
        print!("{module:<4}");
        let mut first: Option<f64> = None;
        let mut last: Option<f64> = None;
        for &temp in &temps {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.module.module_id == module && r.temperature_c == temp)
                .filter_map(|r| r.t_aggon_min.map(|t| t.as_ms()))
                .collect();
            if values.is_empty() {
                print!("  {temp}C: none");
            } else {
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                print!("  {temp}C: {mean:.1}ms");
                if first.is_none() {
                    first = Some(mean);
                }
                last = Some(mean);
            }
        }
        match (first, last) {
            (Some(f), Some(l)) if l > 0.0 => println!("  | 50C/80C ratio = {:.2}", f / l),
            _ => println!(),
        }
    }
    footer("Figure 15");
}
