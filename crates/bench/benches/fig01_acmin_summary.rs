//! Fig. 1: ACmin distributions of RowHammer vs RowPress (single-/double-sided)
//! at 80 C for the representative tAggON values 36 ns, 7.8 us, 70.2 us, 30 ms.

use rowpress_bench::{bench_config, fmt_taggon, footer, header, one_module_per_manufacturer};
use rowpress_core::stats::BoxSummary;
use rowpress_core::{acmin_sweep, PatternKind};
use rowpress_dram::representative_t_aggon;

fn main() {
    header(
        "Figure 1",
        "ACmin of RowHammer vs RowPress, single- and double-sided, 80 C",
        "RowPress reduces ACmin by 17.6x on average at tREFI, 159.4x at 9xtREFI, down to 1 at 30 ms",
    );
    let cfg = bench_config(5).at_temperature(80.0);
    let taggons = representative_t_aggon();
    for kind in PatternKind::all() {
        let records = acmin_sweep(
            &cfg,
            &one_module_per_manufacturer(),
            kind,
            &[80.0],
            &taggons,
        );
        for t in &taggons {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.t_aggon == *t)
                .filter_map(|r| r.ac_min.map(|a| a as f64))
                .collect();
            match BoxSummary::from_values(&values) {
                Some(s) => println!(
                    "{:<13} tAggON {:>8}: min {:>10.0} q1 {:>10.0} median {:>10.0} q3 {:>10.0} max {:>10.0}",
                    kind.label(), fmt_taggon(*t), s.min, s.q1, s.median, s.q3, s.max
                ),
                None => println!("{:<13} tAggON {:>8}: no bitflips", kind.label(), fmt_taggon(*t)),
            }
        }
    }
    println!(
        "expected shape: medians drop by orders of magnitude from 36 ns to 30 ms, reaching ~1"
    );
    footer("Figure 1");
}
