//! Fig. 46-48 (Appendix F): ACmin at 65 C relative to 50 C and 80 C.

use rowpress_bench::{bench_config, fmt_taggon, footer, header, module};
use rowpress_core::{acmin_sweep, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figures 46-48",
        "ACmin at 65 C normalized to 50 C, and 80 C normalized to 65 C",
        "ACmin shrinks monotonically as temperature rises in 15 C steps",
    );
    let cfg = bench_config(4);
    let taggons = vec![Time::from_us(7.8), Time::from_us(70.2)];
    let records = acmin_sweep(
        &cfg,
        &[module("S0")],
        PatternKind::SingleSided,
        &[50.0, 65.0, 80.0],
        &taggons,
    );
    for t in &taggons {
        let mean_at = |temp: f64| -> Option<f64> {
            let v: Vec<f64> = records
                .iter()
                .filter(|r| r.t_aggon == *t && r.temperature_c == temp)
                .filter_map(|r| r.ac_min.map(|a| a as f64))
                .collect();
            if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        if let (Some(c50), Some(c65), Some(c80)) = (mean_at(50.0), mean_at(65.0), mean_at(80.0)) {
            println!(
                "tAggON {:>8}: 65C/50C = {:.2}, 80C/65C = {:.2} (both below 1.0)",
                fmt_taggon(*t),
                c65 / c50,
                c80 / c65
            );
        }
    }
    footer("Figures 46-48");
}
