//! Fig. 6: ACmin as tAggON increases (single-sided, 50 C), per die revision.

use rowpress_bench::{bench_config, diverse_modules, fmt_taggon, footer, header};
use rowpress_core::stats::loglog_slope;
use rowpress_core::{acmin_by_die, acmin_sweep, PatternKind};
use rowpress_dram::{sweep_t_aggon, Time};

fn main() {
    header(
        "Figure 6",
        "ACmin vs tAggON, single-sided RowPress at 50 C",
        "ACmin drops ~21x by tREFI and ~190x by 9xtREFI; log-log slope beyond tREFI is about -1.02",
    );
    let cfg = bench_config(5);
    let taggons = sweep_t_aggon();
    let records = acmin_sweep(
        &cfg,
        &diverse_modules(),
        PatternKind::SingleSided,
        &[50.0],
        &taggons,
    );
    let by_die = acmin_by_die(&records);
    let mut dies: Vec<_> = by_die.keys().map(|(d, m, _)| (d.clone(), *m)).collect();
    dies.sort();
    dies.dedup();
    for (die, mfr) in &dies {
        print!("{mfr} {die:<12}");
        let mut curve = Vec::new();
        for t in &taggons {
            if let Some(a) = by_die.get(&(die.clone(), *mfr, t.as_ps())) {
                print!(" {}={:.0}", fmt_taggon(*t), a.mean);
                curve.push((t.as_us(), a.mean));
            }
        }
        let tail: Vec<(f64, f64)> = curve
            .iter()
            .copied()
            .filter(|(t, _)| *t >= Time::from_us(7.8).as_us())
            .collect();
        match loglog_slope(&tail) {
            Some(s) => println!("  | slope beyond tREFI = {s:.3} (paper: about -1.02)"),
            None => println!("  | no press bitflips (paper: Mfr. M 8Gb B-die shows none)"),
        }
    }
    footer("Figure 6");
}
