//! Criterion performance benchmarks of the campaign engine (not a paper
//! figure): trials/sec of the bounded-pool engine against the legacy
//! thread-per-module nested-loop path, plus the warm-cache replay rate.

use criterion::{criterion_group, criterion_main, Criterion};
use rowpress_core::engine::{Engine, Measurement, Plan};
use rowpress_core::{find_ac_min, ExperimentConfig, PatternKind, PatternSite};
use rowpress_dram::{DramModule, ModuleSpec, Time};

fn taggons() -> Vec<Time> {
    vec![Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)]
}

fn acmin_plan(cfg: &ExperimentConfig, modules: &[ModuleSpec]) -> Plan {
    Plan::grid(cfg)
        .modules(modules)
        .measurements(
            taggons()
                .into_iter()
                .map(|t| Measurement::AcMin { t_aggon: t }),
        )
        .build()
}

/// The pre-engine execution path: one OS thread per module, bespoke nested
/// loops per module. Reproduced here verbatim as the baseline the engine's
/// bounded pool replaced.
fn thread_per_module_acmin(cfg: &ExperimentConfig, modules: &[ModuleSpec]) -> usize {
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for spec in modules {
            handles.push(scope.spawn(move || {
                let mut count = 0usize;
                let mut module = DramModule::new(spec, cfg.geometry);
                module.set_temperature(cfg.temperature_c);
                for &row in &cfg.tested_sites() {
                    let site = PatternSite::for_kind(
                        PatternKind::SingleSided,
                        rowpress_core::TEST_BANK,
                        row,
                        cfg.geometry.rows_per_bank,
                    );
                    for t_aggon in taggons() {
                        let _ = find_ac_min(&mut module, &site, t_aggon, cfg.data_pattern, cfg)
                            .expect("valid site");
                        count += 1;
                    }
                }
                count
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("module thread"))
            .sum()
    })
}

fn bench_engine(c: &mut Criterion) {
    let cfg = ExperimentConfig::test_scale();
    let modules = rowpress_bench::engine_bench_modules();
    let plan = acmin_plan(&cfg, &modules);
    println!(
        "perf_engine: {} trials/iteration, bounded pool of {} workers",
        plan.len(),
        rowpress_core::campaign::worker_count()
    );

    c.bench_function("acmin_grid_thread_per_module (legacy path)", |b| {
        b.iter(|| thread_per_module_acmin(&cfg, &modules))
    });
    c.bench_function("acmin_grid_engine_cold_cache", |b| {
        // A fresh engine per iteration measures raw execution throughput.
        b.iter(|| {
            Engine::new(&cfg)
                .run_collect(&plan)
                .expect("valid site")
                .len()
        })
    });
    let warm = Engine::new(&cfg);
    warm.run_collect(&plan).expect("valid site");
    c.bench_function("acmin_grid_engine_warm_cache", |b| {
        // Every trial answered from the in-process cache.
        b.iter(|| warm.run_collect(&plan).expect("valid site").len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine
}
criterion_main!(benches);
