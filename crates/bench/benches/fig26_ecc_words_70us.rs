//! Fig. 26: the same ECC word analysis as Fig. 25 at tAggON = 70.2 us.

use rowpress_bench::{bench_config, footer, header, module};
use rowpress_core::{acmax_sweep, bitflips_per_word, PatternKind};
use rowpress_dram::Time;
use rowpress_mitigations::{EccScheme, WordAnalysis};

fn main() {
    header(
        "Figure 26",
        "64-bit words with 1-2 / 3-8 / >8 bitflips at tAggON = 70.2 us (max activation count, 80 C)",
        "the same conclusions as Fig. 25 hold at the larger row-open time",
    );
    let cfg = bench_config(8).at_temperature(80.0);
    for kind in [PatternKind::SingleSided, PatternKind::DoubleSided] {
        let records = acmax_sweep(
            &cfg,
            &[module("S3"), module("H0")],
            kind,
            &[80.0],
            &[Time::from_us(70.2)],
        );
        let counts: Vec<usize> = records
            .iter()
            .flat_map(|r| bitflips_per_word(&r.flips, 64))
            .collect();
        let analysis = WordAnalysis::from_word_counts(&counts);
        println!(
            "{:<13} erroneous words: 1-2 flips {:>6}, 3-8 flips {:>5}, >8 flips {:>4}, worst word {} flips",
            kind.label(), analysis.words_1_2, analysis.words_3_8, analysis.words_gt_8, analysis.max_flips_in_word
        );
        println!(
            "    SECDED(72,64) fails on {:.1}% of erroneous words; multi-bit words are {:.1}% of erroneous words",
            100.0 * analysis.uncorrectable_fraction(EccScheme::Secded, &counts),
            100.0 * analysis.multi_bit_fraction()
        );
    }
    footer("Figure 26");
}
