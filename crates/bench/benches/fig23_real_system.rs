//! Fig. 23: bitflips induced by the user-level proof-of-concept program on a
//! TRR-protected real system, versus the number of cache blocks read per
//! aggressor activation.

use rowpress_attack::{run_attack, AttackParams, SystemModel};
use rowpress_bench::{footer, header};

fn main() {
    header(
        "Figure 23",
        "Real-system RowPress vs RowHammer bitflips (user-level program, TRR-protected DIMM)",
        "RowHammer (1 read/activation) flips ~0-8 bits; RowPress peaks at hundreds of bitflips and falls off at very large NUM_READS",
    );
    let system = SystemModel::comet_lake_trr().with_victims(200);
    for naa in [4u32, 3, 2] {
        println!("-- NUM_AGGR_ACTS = {naa} --");
        for nr in [1u32, 2, 4, 8, 16, 32, 48, 64, 128] {
            let outcome = run_attack(&system, &AttackParams::algorithm1(naa, nr));
            println!(
                "  NUM_READS {:>3}: {:>5} bitflips in {:>4} rows (of {})",
                nr, outcome.total_bitflips, outcome.rows_with_bitflips, outcome.victims_tested
            );
        }
    }
    footer("Figure 23");
}
