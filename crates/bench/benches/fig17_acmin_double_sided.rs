//! Fig. 17: ACmin of the double-sided RowPress pattern at 50 C.

use rowpress_bench::{bench_config, fmt_taggon, footer, header, one_module_per_manufacturer};
use rowpress_core::stats::loglog_slope;
use rowpress_core::{acmin_by_die, acmin_sweep, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 17",
        "ACmin vs tAggON, double-sided RowPress at 50 C",
        "double-sided ACmin also falls with slope about -1.01 beyond tREFI",
    );
    let cfg = bench_config(5);
    let taggons = vec![
        Time::from_ns(36.0),
        Time::from_ns(186.0),
        Time::from_us(7.8),
        Time::from_us(70.2),
        Time::from_ms(6.0),
        Time::from_ms(30.0),
    ];
    let records = acmin_sweep(
        &cfg,
        &one_module_per_manufacturer(),
        PatternKind::DoubleSided,
        &[50.0],
        &taggons,
    );
    let by_die = acmin_by_die(&records);
    let mut dies: Vec<_> = by_die.keys().map(|(d, m, _)| (d.clone(), *m)).collect();
    dies.sort();
    dies.dedup();
    for (die, mfr) in dies {
        print!("{mfr} {die:<12}");
        let mut curve = Vec::new();
        for t in &taggons {
            if let Some(a) = by_die.get(&(die.clone(), mfr, t.as_ps())) {
                print!(" {}={:.0}", fmt_taggon(*t), a.mean);
                curve.push((t.as_us(), a.mean));
            }
        }
        let tail: Vec<(f64, f64)> = curve.iter().copied().filter(|(t, _)| *t >= 7.8).collect();
        match loglog_slope(&tail) {
            Some(s) => println!("  | slope beyond tREFI = {s:.3}"),
            None => println!(),
        }
    }
    footer("Figure 17");
}
