//! Criterion performance benchmark of sharded campaign execution (not a
//! paper figure): a single-process engine run against the same plan split
//! into strided `Plan::shard` sub-plans executed by independent engines and
//! merge-sorted back — the in-process model of the paper's Slurm-style
//! DRAM-Bender fan-out.

use criterion::{criterion_group, criterion_main, Criterion};
use rowpress_core::campaign::run_sharded;
use rowpress_core::engine::{Engine, Measurement, Plan};
use rowpress_core::ExperimentConfig;
use rowpress_dram::Time;

const SHARDS: usize = 4;

fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
    Plan::grid(cfg)
        .modules(&rowpress_bench::engine_bench_modules())
        .measurements(
            [Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)]
                .into_iter()
                .map(|t| Measurement::AcMin { t_aggon: t }),
        )
        .build()
}

fn bench_shard(c: &mut Criterion) {
    let cfg = ExperimentConfig::test_scale();
    let plan = acmin_plan(&cfg);
    println!(
        "perf_shard: {} trials/iteration, {SHARDS} shards, shard sizes {:?}",
        plan.len(),
        (0..SHARDS)
            .map(|i| plan.shard(i, SHARDS).len())
            .collect::<Vec<_>>()
    );

    // Determinism gate before timing anything: the merged shard streams must
    // reproduce the single-process record stream exactly.
    let baseline = Engine::new(&cfg).run_collect(&plan).expect("valid site");
    let merged = run_sharded(&Engine::new(&cfg), &plan, SHARDS).expect("valid site");
    assert_eq!(merged, baseline, "sharded merge must be byte-identical");

    c.bench_function("acmin_grid_single_process", |b| {
        // A fresh engine per iteration: raw single-process throughput.
        b.iter(|| {
            Engine::new(&cfg)
                .run_collect(&plan)
                .expect("valid site")
                .len()
        })
    });
    c.bench_function("acmin_grid_sharded_merged", |b| {
        // Shard, execute each shard on its own fresh-cache engine, merge.
        b.iter(|| {
            run_sharded(&Engine::new(&cfg), &plan, SHARDS)
                .expect("valid site")
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_shard
}
criterion_main!(benches);
