//! Fig. 7: ACmin between tREFI and 9xtREFI in linear scale: the reduction rate
//! of ACmin slows down as tAggON grows.

use rowpress_bench::{bench_config, fmt_taggon, footer, header, one_module_per_manufacturer};
use rowpress_core::{acmin_by_die, acmin_sweep, PatternKind};
use rowpress_dram::Time;

fn main() {
    header(
        "Figure 7",
        "ACmin for tAggON between 7.8 us and 70.2 us (linear scale)",
        "ACmin reduction rate decreases: about -0.4/us between 7.8 and 15 us but only -0.02/us between 30 and 70.2 us",
    );
    let cfg = bench_config(5);
    let taggons = vec![
        Time::from_us(7.8),
        Time::from_us(15.0),
        Time::from_us(30.0),
        Time::from_us(70.2),
    ];
    let records = acmin_sweep(
        &cfg,
        &one_module_per_manufacturer(),
        PatternKind::SingleSided,
        &[50.0],
        &taggons,
    );
    let by_die = acmin_by_die(&records);
    let mut keys: Vec<_> = by_die.keys().cloned().collect();
    keys.sort();
    let mut per_die: std::collections::BTreeMap<String, Vec<(f64, f64)>> = Default::default();
    for (die, _mfr, t_ps) in keys {
        let a = by_die[&(die.clone(), _mfr, t_ps)];
        per_die
            .entry(die)
            .or_default()
            .push((Time::from_ps(t_ps).as_us(), a.mean));
    }
    for (die, curve) in per_die {
        print!("{die:<12}");
        for (t, v) in &curve {
            print!(" {}us={:.0}", t, v);
        }
        if curve.len() >= 2 {
            let early = (curve[1].1 - curve[0].1) / (curve[1].0 - curve[0].0);
            let late = (curve[curve.len() - 1].1 - curve[curve.len() - 2].1)
                / (curve[curve.len() - 1].0 - curve[curve.len() - 2].0);
            println!("  | early rate {early:.1}/us, late rate {late:.1}/us (paper: late rate ~20x smaller)");
        } else {
            println!();
        }
    }
    let _ = fmt_taggon(Time::from_us(7.8));
    footer("Figure 7");
}
