//! Table 5: per-module summary of RowHammer / RowPress vulnerability in terms
//! of ACmin and tAggONmin.

use rowpress_bench::{bench_config, footer, header};
use rowpress_core::{acmin_sweep, taggonmin_sweep, PatternKind};
use rowpress_dram::{representative_modules, Time};

fn main() {
    header(
        "Table 5",
        "Per-die ACmin at representative tAggON values and tAggONmin at AC=1 (50 C)",
        "ACmin(36 ns) ranges ~31K-386K, ACmin(7.8 us) ~5.5K-7.2K, ACmin(70.2 us) ~0.6K-0.8K, tAggONmin(AC=1) ~35-58 ms",
    );
    let cfg = bench_config(4);
    let modules = representative_modules();
    let taggons = vec![Time::from_ns(36.0), Time::from_us(7.8), Time::from_us(70.2)];
    let records = acmin_sweep(&cfg, &modules, PatternKind::SingleSided, &[50.0], &taggons);
    let ton_records = taggonmin_sweep(&cfg, &modules, &[1], &[50.0]);
    println!(
        "{:<22} {:>14} {:>14} {:>14} {:>16}",
        "die", "ACmin@36ns", "ACmin@7.8us", "ACmin@70.2us", "tAggONmin@AC=1"
    );
    for m in &modules {
        let mean_ac = |t: Time| -> String {
            let v: Vec<f64> = records
                .iter()
                .filter(|r| r.module.module_id == m.id && r.t_aggon == t)
                .filter_map(|r| r.ac_min.map(|a| a as f64))
                .collect();
            if v.is_empty() {
                "no bitflip".into()
            } else {
                format!("{:.0}", v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        let ton: Vec<f64> = ton_records
            .iter()
            .filter(|r| r.module.module_id == m.id)
            .filter_map(|r| r.t_aggon_min.map(|t| t.as_ms()))
            .collect();
        let ton_str = if ton.is_empty() {
            "no bitflip".to_string()
        } else {
            format!("{:.1}ms", ton.iter().sum::<f64>() / ton.len() as f64)
        };
        println!(
            "{:<22} {:>14} {:>14} {:>14} {:>16}",
            format!("{} {}", m.die.manufacturer, m.die.label()),
            mean_ac(taggons[0]),
            mean_ac(taggons[1]),
            mean_ac(taggons[2]),
            ton_str
        );
    }
    footer("Table 5");
}
