//! Table 3: performance overhead of Graphene-RP and PARA-RP over their
//! baselines for different maximum row-open times (four-core workloads).

use rowpress_bench::{footer, header};
use rowpress_memctrl::{RowPolicy, SystemConfig};
use rowpress_mitigations::{adapted_trh, evaluate_mixes, summarize_overheads, MechanismKind};
use rowpress_workloads::{build_mixes, find_workload, homogeneous_mix};

fn main() {
    header(
        "Table 3",
        "Graphene-RP and PARA-RP slowdown vs Graphene and PARA (four-core workloads)",
        "Graphene-RP: avg -0.63% to 1.3%, max <= 10.2%; PARA-RP: avg 3.2-12.9%, max up to 31.6%",
    );
    let sim = SystemConfig {
        accesses_per_core: 8_000,
        policy: RowPolicy::Open,
        retire_width: 4,
        seed: 17,
    };
    let mut mixes = build_mixes(&["HHHH", "HHLL", "LLLL"], 1, 99);
    mixes.push(homogeneous_mix(&find_workload("462.libquantum").unwrap()));
    mixes.push(homogeneous_mix(&find_workload("429.mcf").unwrap()));
    let tmro = [36u32, 96, 636];
    println!(
        "{:<12} {:>8} {:>8} {:>12} {:>12}",
        "mechanism", "tmro", "T'RH", "avg ovh %", "max ovh %"
    );
    for kind in [MechanismKind::Graphene, MechanismKind::Para] {
        let records = evaluate_mixes(kind, 1000, &tmro, &mixes, &sim);
        for (k, t, avg, max) in summarize_overheads(&records) {
            println!(
                "{:<12} {:>6}ns {:>8} {:>12.2} {:>12.2}",
                format!("{k:?}-RP"),
                t,
                adapted_trh(1000, t),
                avg,
                max
            );
        }
    }
    println!("expected shape: Graphene-RP stays within a few percent (sometimes negative); PARA-RP costs more and grows with tmro");
    footer("Table 3");
}
