//! Table 1: the inventory of tested DDR4 modules and chips.

use rowpress_bench::{footer, header};
use rowpress_dram::module_inventory;

fn main() {
    header(
        "Table 1",
        "Tested DDR4 DRAM chips",
        "21 modules / 164 chips across Mfr. S, H and M",
    );
    let modules = module_inventory();
    let chips: u32 = modules.iter().map(|m| m.chips).sum();
    for m in &modules {
        println!(
            "{:<4} {:<8} {:<12} x{:<3} {:>2} chips  date {:<8} press-vulnerable: {}",
            m.id,
            format!("{}", m.die.manufacturer),
            m.die.label(),
            m.organization,
            m.chips,
            m.date_code.clone().unwrap_or_else(|| "N/A".into()),
            m.die.is_press_vulnerable()
        );
    }
    println!(
        "total: {} modules, {chips} chips (paper: 21 modules, 164 chips)",
        modules.len()
    );
    footer("Table 1");
}
