//! Fig. 49 (Appendix G): the Algorithm 2 variant (interleaved flushes) induces
//! even more bitflips than Algorithm 1.

use rowpress_attack::{run_attack, AttackParams, SystemModel};
use rowpress_bench::{footer, header};

fn main() {
    header(
        "Figure 49",
        "Algorithm 1 vs Algorithm 2 bitflips on the real system",
        "interleaving the cache-line flushes with the reads keeps rows open longer and produces many more bitflips",
    );
    let system = SystemModel::comet_lake_trr().with_victims(200);
    for naa in [4u32, 3, 2] {
        println!("-- NUM_AGGR_ACTS = {naa} --");
        for nr in [8u32, 16, 32, 64] {
            let a1 = run_attack(&system, &AttackParams::algorithm1(naa, nr));
            let a2 = run_attack(&system, &AttackParams::algorithm2(naa, nr));
            println!(
                "  NUM_READS {:>3}: Algorithm 1 -> {:>5} flips / {:>4} rows    Algorithm 2 -> {:>5} flips / {:>4} rows",
                nr, a1.total_bitflips, a1.rows_with_bitflips, a2.total_bitflips, a2.rows_with_bitflips
            );
        }
    }
    footer("Figure 49");
}
