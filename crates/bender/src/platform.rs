//! The DRAM testing platform: command-level execution, temperature control
//! and the experiment-hygiene rules of the paper's methodology (§3.1).
//!
//! The platform mirrors the paper's FPGA infrastructure: auto-refresh is
//! disabled during test programs, the execution time of a program is bounded
//! to stay strictly within a refresh window (60 ms), and a temperature
//! controller holds the chips at the requested set point before a program
//! runs.

use crate::program::{Instr, Program};
use rowpress_dram::{
    BankId, Bitflip, DataPattern, DramCommand, DramError, DramModule, DramResult, RowId, RowRole,
    Time,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Model of the PID temperature controller + heater pads (MaxWell FT200 in the
/// paper). The controller settles exponentially toward the set point; the
/// platform waits for settling before running a program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperatureController {
    current_c: f64,
    set_point_c: f64,
    /// Fraction of the remaining error removed per settle step.
    gain: f64,
    /// Tolerance within which the controller reports "settled".
    tolerance_c: f64,
}

impl TemperatureController {
    /// Creates a controller currently at ambient temperature.
    pub fn new(ambient_c: f64) -> Self {
        TemperatureController {
            current_c: ambient_c,
            set_point_c: ambient_c,
            gain: 0.5,
            tolerance_c: 0.5,
        }
    }

    /// Sets a new target temperature.
    pub fn set_target(&mut self, celsius: f64) {
        self.set_point_c = celsius;
    }

    /// The current chip temperature.
    pub fn current(&self) -> f64 {
        self.current_c
    }

    /// The target temperature.
    pub fn target(&self) -> f64 {
        self.set_point_c
    }

    /// Runs one control step; returns true once the temperature is within
    /// tolerance of the set point.
    pub fn step(&mut self) -> bool {
        self.current_c += (self.set_point_c - self.current_c) * self.gain;
        self.is_settled()
    }

    /// True if the chip temperature is within tolerance of the set point.
    pub fn is_settled(&self) -> bool {
        (self.current_c - self.set_point_c).abs() <= self.tolerance_c
    }

    /// Steps the controller until settled, returning the number of steps.
    pub fn settle(&mut self) -> u32 {
        let mut steps = 0;
        while !self.is_settled() {
            self.step();
            steps += 1;
            if steps > 10_000 {
                break;
            }
        }
        steps
    }
}

/// Outcome of executing one test program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Total wall-clock time the program occupied the DRAM bus.
    pub elapsed: Time,
    /// Total ACT commands issued.
    pub activations: u64,
    /// Whether the program exceeded the platform's execution-time budget
    /// (60 ms in the paper — strictly within the 64 ms refresh window). When
    /// true, the paper's methodology reports "no bitflips could be induced".
    pub exceeded_budget: bool,
    /// Per-bank count of timing-constraint violations that had to be fixed up
    /// by inserting waits (a well-formed program has none).
    pub timing_fixups: u64,
}

/// The DRAM testing platform wrapping a [`DramModule`].
#[derive(Debug)]
pub struct TestPlatform {
    module: DramModule,
    controller: TemperatureController,
    /// Execution-time budget per program (60 ms in the paper).
    budget: Time,
}

/// Per-bank executor state: which row is open and since when.
#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<(RowId, Time)>,
    /// Time at which the previous episode of each row ended (for t_aggoff).
    last_pre: Option<(RowId, Time)>,
}

impl TestPlatform {
    /// Creates a platform around a module, starting at 50 °C with the paper's
    /// 60 ms execution budget.
    pub fn new(module: DramModule) -> Self {
        let mut controller = TemperatureController::new(50.0);
        controller.set_target(50.0);
        TestPlatform {
            module,
            controller,
            budget: Time::from_ms(60.0),
        }
    }

    /// Access to the module under test.
    pub fn module(&self) -> &DramModule {
        &self.module
    }

    /// Mutable access to the module under test (e.g. to initialize rows).
    pub fn module_mut(&mut self) -> &mut DramModule {
        &mut self.module
    }

    /// Consumes the platform, returning the module.
    pub fn into_module(self) -> DramModule {
        self.module
    }

    /// The execution-time budget applied to programs.
    pub fn budget(&self) -> Time {
        self.budget
    }

    /// Overrides the execution-time budget.
    pub fn set_budget(&mut self, budget: Time) {
        self.budget = budget;
    }

    /// Sets the target chip temperature and waits for the controller to
    /// settle; the module then operates at that temperature.
    pub fn set_temperature(&mut self, celsius: f64) {
        self.controller.set_target(celsius);
        self.controller.settle();
        self.module.set_temperature(self.controller.current());
    }

    /// The current chip temperature.
    pub fn temperature(&self) -> f64 {
        self.controller.current()
    }

    /// Initializes a set of rows with a data pattern: aggressors get the
    /// aggressor byte, victims the victim byte (Table 2).
    ///
    /// # Errors
    ///
    /// Returns an error if any row address is out of range.
    pub fn initialize_rows(
        &mut self,
        bank: BankId,
        aggressors: &[RowId],
        victims: &[RowId],
        pattern: DataPattern,
    ) -> DramResult<()> {
        for &row in aggressors {
            self.module
                .init_row_pattern(bank, row, pattern, RowRole::Aggressor)?;
        }
        for &row in victims {
            self.module
                .init_row_pattern(bank, row, pattern, RowRole::Victim)?;
        }
        Ok(())
    }

    /// Executes a test program command by command, translating row-open
    /// episodes into disturbance on the module. Auto-refresh stays disabled
    /// for the duration of the program (the paper's methodology), and the
    /// report flags programs that exceed the execution budget.
    ///
    /// # Errors
    ///
    /// Returns an error if a command addresses a row or bank outside the
    /// module geometry.
    pub fn execute(&mut self, program: &Program) -> DramResult<ExecutionReport> {
        let timing = *self.module.timing();
        let granularity = timing.command_granularity;
        let mut now = Time::ZERO;
        let mut activations = 0u64;
        let mut timing_fixups = 0u64;
        let mut banks: HashMap<BankId, BankState> = HashMap::new();
        // Hard ceiling so command-level execution of an unreasonably long
        // program cannot run away: 30 ms past the budget is plenty to report
        // `exceeded_budget` faithfully.
        let hard_stop = self.budget + Time::from_ms(30.0);

        // Flatten the instruction stream iteratively to avoid recursion limits
        // on deeply repeated programs. Work items are
        // (current iterator, remaining repetitions, loop body).
        let mut stack: Vec<(std::slice::Iter<'_, Instr>, u64, &[Instr])> =
            vec![(program.instrs.iter(), 1, &program.instrs)];

        while !stack.is_empty() && now <= hard_stop {
            let next_instr = stack.last_mut().and_then(|top| top.0.next());
            let Some(instr) = next_instr else {
                let top = stack.last_mut().expect("stack non-empty");
                if top.1 > 1 {
                    top.1 -= 1;
                    top.0 = top.2.iter();
                } else {
                    stack.pop();
                }
                continue;
            };
            match instr {
                Instr::Wait(t) => now += *t,
                Instr::Repeat { count, body: inner } => {
                    if *count > 0 && !inner.is_empty() {
                        stack.push((inner.iter(), *count, inner));
                    }
                }
                Instr::Command(cmd) => {
                    now += granularity;
                    match *cmd {
                        DramCommand::Act { bank, row } => {
                            let state = banks.entry(bank).or_insert(BankState {
                                open_row: None,
                                last_pre: None,
                            });
                            if let Some((open, since)) = state.open_row.take() {
                                // Implicit precharge fix-up: the program violated
                                // the one-open-row-per-bank rule.
                                timing_fixups += 1;
                                let t_on = now.saturating_sub(since).max(timing.t_ras);
                                self.module.activate(bank, open, t_on, timing.t_rp)?;
                            }
                            state.open_row = Some((row, now));
                            activations += 1;
                        }
                        DramCommand::Pre { bank } => {
                            let state = banks.entry(bank).or_insert(BankState {
                                open_row: None,
                                last_pre: None,
                            });
                            if let Some((row, since)) = state.open_row.take() {
                                let mut t_on = now.saturating_sub(since);
                                if t_on < timing.t_ras {
                                    timing_fixups += 1;
                                    t_on = timing.t_ras;
                                }
                                // The off time until the row's next activation: use
                                // the interval since this row's previous precharge
                                // as the best estimate of the pattern period, and
                                // fall back to tRP for the first episode.
                                let t_off = match state.last_pre {
                                    Some((prev_row, prev_pre)) if prev_row == row => now
                                        .saturating_sub(prev_pre)
                                        .saturating_sub(t_on)
                                        .max(timing.t_rp),
                                    _ => timing.t_rp,
                                };
                                self.module.activate(bank, row, t_on, t_off)?;
                                state.last_pre = Some((row, now));
                            }
                        }
                        DramCommand::Rd { .. } | DramCommand::Wr { .. } => {
                            // Column accesses keep the row open; the elapsed time
                            // is already reflected in `now`.
                        }
                        DramCommand::Ref => {
                            self.module.refresh_all();
                        }
                        DramCommand::Nop => {}
                    }
                }
            }
        }

        // Close any row left open at the end of the program.
        for (bank, state) in banks.iter_mut() {
            if let Some((row, since)) = state.open_row.take() {
                let t_on = now.saturating_sub(since).max(timing.t_ras);
                self.module.activate(*bank, row, t_on, timing.t_rp)?;
            }
        }

        // The module clock advanced by each activation; align it to the
        // program duration so retention accounting matches wall-clock time.
        let module_now = self.module.now();
        if now > module_now {
            self.module.idle(now - module_now);
        }

        Ok(ExecutionReport {
            elapsed: now,
            activations,
            exceeded_budget: now > self.budget,
            timing_fixups,
        })
    }

    /// Checks a victim row for bitflips.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn check_row(&self, bank: BankId, row: RowId) -> Result<Vec<Bitflip>, DramError> {
        self.module.check_row(bank, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use rowpress_dram::{module_inventory, Geometry, TimingParams};

    fn platform() -> TestPlatform {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "S0")
            .unwrap();
        TestPlatform::new(DramModule::new(&spec, Geometry::tiny()))
    }

    #[test]
    fn temperature_controller_settles_to_target() {
        let mut tc = TemperatureController::new(25.0);
        tc.set_target(80.0);
        assert!(!tc.is_settled());
        let steps = tc.settle();
        assert!(steps > 0 && steps < 100);
        assert!((tc.current() - 80.0).abs() <= 0.5);
        assert_eq!(tc.target(), 80.0);
        // Stepping when settled stays settled.
        assert!(tc.step());
    }

    #[test]
    fn platform_set_temperature_propagates_to_module() {
        let mut p = platform();
        p.set_temperature(80.0);
        assert!((p.temperature() - 80.0).abs() <= 0.5);
        assert!((p.module().temperature() - 80.0).abs() <= 0.5);
    }

    #[test]
    fn executing_a_press_program_induces_bitflips() {
        let mut p = platform();
        let bank = BankId(1);
        let aggressor = RowId(20);
        let victims = [RowId(19), RowId(21)];
        p.initialize_rows(bank, &[aggressor], &victims, DataPattern::Checkerboard)
            .unwrap();
        // Ten 5 ms presses: 50 ms of on time, within the 60 ms budget.
        let program = ProgramBuilder::single_sided_press(
            TimingParams::ddr4(),
            bank,
            aggressor,
            Time::from_ms(5.0),
            10,
        );
        let report = p.execute(&program).unwrap();
        assert_eq!(report.activations, 10);
        assert!(!report.exceeded_budget);
        assert_eq!(report.timing_fixups, 0);
        let flips: usize = victims
            .iter()
            .map(|&v| p.check_row(bank, v).unwrap().len())
            .sum();
        assert!(
            flips > 0,
            "a 50 ms cumulative press should flip bits on the S 8Gb B-die"
        );
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let mut p = platform();
        let bank = BankId(1);
        p.initialize_rows(bank, &[RowId(10)], &[RowId(11)], DataPattern::Checkerboard)
            .unwrap();
        let program = ProgramBuilder::single_sided_press(
            TimingParams::ddr4(),
            bank,
            RowId(10),
            Time::from_ms(30.0),
            3, // 90 ms > 60 ms budget
        );
        let report = p.execute(&program).unwrap();
        assert!(report.exceeded_budget);
        assert!(report.elapsed > Time::from_ms(60.0));
    }

    #[test]
    fn command_level_and_bulk_activation_agree() {
        // The same physical access pattern expressed as a command program and
        // as a bulk activate_many call must produce the same bitflips.
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "S3")
            .unwrap();
        let bank = BankId(1);
        let t_aggon = Time::from_ms(2.0);
        let count = 20u64;

        let mut via_program = TestPlatform::new(DramModule::new(&spec, Geometry::tiny()));
        via_program
            .initialize_rows(bank, &[RowId(20)], &[RowId(21)], DataPattern::Checkerboard)
            .unwrap();
        let program = ProgramBuilder::single_sided_press(
            TimingParams::ddr4(),
            bank,
            RowId(20),
            t_aggon,
            count,
        );
        via_program.execute(&program).unwrap();
        let flips_program = via_program.check_row(bank, RowId(21)).unwrap();

        let mut via_bulk = DramModule::new(&spec, Geometry::tiny());
        via_bulk
            .init_row_pattern(
                bank,
                RowId(20),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        via_bulk
            .init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        via_bulk
            .activate_many(bank, RowId(20), t_aggon, TimingParams::ddr4().t_rp, count)
            .unwrap();
        let flips_bulk = via_bulk.check_row(bank, RowId(21)).unwrap();

        let cols_a: Vec<u32> = flips_program.iter().map(|f| f.addr.column.0).collect();
        let cols_b: Vec<u32> = flips_bulk.iter().map(|f| f.addr.column.0).collect();
        assert_eq!(cols_a, cols_b);
    }

    #[test]
    fn ill_formed_program_gets_timing_fixups() {
        let mut p = platform();
        let bank = BankId(0);
        p.initialize_rows(
            bank,
            &[RowId(5), RowId(7)],
            &[RowId(6)],
            DataPattern::Checkerboard,
        )
        .unwrap();
        // Open two rows back-to-back without a PRE: the executor fixes it up.
        let mut b = ProgramBuilder::new(TimingParams::ddr4(), "ill-formed");
        b.act(bank, RowId(5)).act(bank, RowId(7)).pre(bank);
        let report = p.execute(&b.build()).unwrap();
        assert!(report.timing_fixups >= 1);
    }

    #[test]
    fn refresh_command_restores_victims() {
        let mut p = platform();
        let bank = BankId(1);
        p.initialize_rows(bank, &[RowId(30)], &[RowId(31)], DataPattern::Checkerboard)
            .unwrap();
        // Press hard, refresh, then check: the refresh clears the accumulated
        // disturbance of rows that have not flipped yet, and the check after a
        // tiny second press sees no flips.
        let mut b = ProgramBuilder::new(TimingParams::ddr4(), "press then refresh");
        b.act(bank, RowId(30));
        b.wait(Time::from_ms(10.0));
        b.pre(bank);
        b.refresh();
        p.execute(&b.build()).unwrap();
        let flips_after_refresh = p.check_row(bank, RowId(31)).unwrap().len();
        // Compare against the same press without refresh, continued by another press.
        assert_eq!(flips_after_refresh, 0);
    }
}
