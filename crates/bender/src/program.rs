//! Test-program representation (the DRAM-Bender program IR).
//!
//! The paper's characterization programs are sequences of DDR4 commands with
//! precise timing, issued by an FPGA at a 1.5 ns command-bus granularity with
//! auto-refresh disabled. [`Program`] captures such a sequence, including
//! nested repeat loops, and [`ProgramBuilder`] provides the high-level
//! constructors used by the characterization code (single-sided RowPress,
//! double-sided RowPress, RowPress-ONOFF).

use rowpress_dram::{BankId, ColumnId, DramCommand, RowId, Time, TimingParams};
use serde::{Deserialize, Serialize};

/// One instruction of a test program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Issue a DRAM command.
    Command(DramCommand),
    /// Advance time without issuing a command (the FPGA idles the bus).
    Wait(Time),
    /// Repeat a block of instructions `count` times.
    Repeat {
        /// Number of iterations.
        count: u64,
        /// Instructions repeated on every iteration.
        body: Vec<Instr>,
    },
}

impl Instr {
    /// Total wall-clock duration of this instruction, assuming each command
    /// occupies one command-bus slot of `granularity`.
    pub fn duration(&self, granularity: Time) -> Time {
        match self {
            Instr::Command(_) => granularity,
            Instr::Wait(t) => *t,
            Instr::Repeat { count, body } => {
                let body_time: Time = body.iter().map(|i| i.duration(granularity)).sum();
                body_time * *count
            }
        }
    }

    /// Number of DRAM commands this instruction expands to.
    pub fn command_count(&self) -> u64 {
        match self {
            Instr::Command(_) => 1,
            Instr::Wait(_) => 0,
            Instr::Repeat { count, body } => {
                count * body.iter().map(Instr::command_count).sum::<u64>()
            }
        }
    }
}

/// A complete test program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// The instruction sequence.
    pub instrs: Vec<Instr>,
    /// Human-readable description for logs and experiment records.
    pub description: String,
}

impl Program {
    /// Creates an empty program with a description.
    pub fn new(description: impl Into<String>) -> Self {
        Program {
            instrs: Vec::new(),
            description: description.into(),
        }
    }

    /// Total duration of the program.
    pub fn duration(&self, timing: &TimingParams) -> Time {
        self.instrs
            .iter()
            .map(|i| i.duration(timing.command_granularity))
            .sum()
    }

    /// Total number of DRAM commands issued.
    pub fn command_count(&self) -> u64 {
        self.instrs.iter().map(Instr::command_count).sum()
    }

    /// Total number of ACT commands issued (the paper's activation count).
    pub fn activation_count(&self) -> u64 {
        fn count(instrs: &[Instr]) -> u64 {
            instrs
                .iter()
                .map(|i| match i {
                    Instr::Command(DramCommand::Act { .. }) => 1,
                    Instr::Repeat { count: c, body } => c * count(body),
                    _ => 0,
                })
                .sum()
        }
        count(&self.instrs)
    }
}

/// Builds test programs while keeping track of DDR4 timing constraints.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    timing: TimingParams,
    program: Program,
}

impl ProgramBuilder {
    /// Creates a builder with the given timing parameters.
    pub fn new(timing: TimingParams, description: impl Into<String>) -> Self {
        ProgramBuilder {
            timing,
            program: Program::new(description),
        }
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.program.instrs.push(instr);
        self
    }

    /// Appends an ACT command.
    pub fn act(&mut self, bank: BankId, row: RowId) -> &mut Self {
        self.push(Instr::Command(DramCommand::Act { bank, row }))
    }

    /// Appends a PRE command.
    pub fn pre(&mut self, bank: BankId) -> &mut Self {
        self.push(Instr::Command(DramCommand::Pre { bank }))
    }

    /// Appends a RD command.
    pub fn rd(&mut self, bank: BankId, column: ColumnId) -> &mut Self {
        self.push(Instr::Command(DramCommand::Rd { bank, column }))
    }

    /// Appends a REF command.
    pub fn refresh(&mut self) -> &mut Self {
        self.push(Instr::Command(DramCommand::Ref))
    }

    /// Appends an explicit wait.
    pub fn wait(&mut self, t: Time) -> &mut Self {
        if !t.is_zero() {
            self.push(Instr::Wait(t));
        }
        self
    }

    /// Finishes the program.
    pub fn build(&self) -> Program {
        self.program.clone()
    }

    /// One iteration of the single-sided RowPress pattern (paper Fig. 5):
    /// ACT the aggressor, keep it open for `t_aggon`, PRE, then wait tRP.
    pub fn press_iteration(&mut self, bank: BankId, aggressor: RowId, t_aggon: Time) -> &mut Self {
        let t_on = t_aggon.max(self.timing.t_ras);
        // The ACT command itself occupies one bus slot; the remaining open
        // time is an explicit wait.
        let open_wait = t_on.saturating_sub(self.timing.command_granularity);
        self.act(bank, aggressor);
        self.wait(open_wait);
        self.pre(bank);
        self.wait(
            self.timing
                .t_rp
                .saturating_sub(self.timing.command_granularity),
        );
        self
    }

    /// The complete single-sided RowPress program: `count` press iterations
    /// (identical to single-sided RowHammer when `t_aggon == tRAS`).
    pub fn single_sided_press(
        timing: TimingParams,
        bank: BankId,
        aggressor: RowId,
        t_aggon: Time,
        count: u64,
    ) -> Program {
        let mut builder = ProgramBuilder::new(
            timing,
            format!("single-sided RowPress: row {aggressor}, tAggON {t_aggon}, {count} ACTs"),
        );
        let mut body = ProgramBuilder::new(timing, "");
        body.press_iteration(bank, aggressor, t_aggon);
        builder.push(Instr::Repeat {
            count,
            body: body.build().instrs,
        });
        builder.build()
    }

    /// The double-sided RowPress program (paper Fig. 16): alternate press
    /// iterations between the two aggressors; `total_acts` counts activations
    /// of both aggressors together, as the paper's ACmin does.
    pub fn double_sided_press(
        timing: TimingParams,
        bank: BankId,
        aggressor_low: RowId,
        aggressor_high: RowId,
        t_aggon: Time,
        total_acts: u64,
    ) -> Program {
        let mut builder = ProgramBuilder::new(
            timing,
            format!(
                "double-sided RowPress: rows {aggressor_low}/{aggressor_high}, tAggON {t_aggon}, {total_acts} total ACTs"
            ),
        );
        let mut body = ProgramBuilder::new(timing, "");
        body.press_iteration(bank, aggressor_low, t_aggon);
        body.press_iteration(bank, aggressor_high, t_aggon);
        let pairs = total_acts / 2;
        builder.push(Instr::Repeat {
            count: pairs,
            body: body.build().instrs,
        });
        if total_acts % 2 == 1 {
            builder.press_iteration(bank, aggressor_low, t_aggon);
        }
        builder.build()
    }

    /// The RowPress-ONOFF pattern (paper Fig. 21): a fixed activate-to-activate
    /// time `t_a2a = t_aggon + t_aggoff`, sweeping how much of the slack goes
    /// to the on time versus the off time.
    pub fn onoff_pattern(
        timing: TimingParams,
        bank: BankId,
        aggressors: &[RowId],
        t_aggon: Time,
        t_aggoff: Time,
        iterations: u64,
    ) -> Program {
        let mut builder = ProgramBuilder::new(
            timing,
            format!(
                "RowPress-ONOFF: tAggON {t_aggon}, tAggOFF {t_aggoff}, {iterations} iterations"
            ),
        );
        let mut body = ProgramBuilder::new(timing, "");
        for &row in aggressors {
            let t_on = t_aggon.max(timing.t_ras);
            let t_off = t_aggoff.max(timing.t_rp);
            body.act(bank, row);
            body.wait(t_on.saturating_sub(timing.command_granularity));
            body.pre(bank);
            body.wait(t_off.saturating_sub(timing.command_granularity));
        }
        builder.push(Instr::Repeat {
            count: iterations,
            body: body.build().instrs,
        });
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> TimingParams {
        TimingParams::ddr4()
    }

    #[test]
    fn single_sided_program_counts_and_duration() {
        let p = ProgramBuilder::single_sided_press(
            timing(),
            BankId(1),
            RowId(10),
            Time::from_ns(36.0),
            1000,
        );
        assert_eq!(p.activation_count(), 1000);
        assert_eq!(p.command_count(), 2000); // ACT + PRE per iteration
                                             // Each iteration lasts ~tRAS + tRP = 51 ns.
        let d = p.duration(&timing());
        assert!((d.as_us() - 51.0).abs() < 2.0, "duration = {d}");
    }

    #[test]
    fn rowhammer_is_press_with_minimum_taggon() {
        let hammer = ProgramBuilder::single_sided_press(
            timing(),
            BankId(0),
            RowId(5),
            Time::from_ns(36.0),
            10,
        );
        let press = ProgramBuilder::single_sided_press(
            timing(),
            BankId(0),
            RowId(5),
            Time::from_ns(10.0),
            10,
        );
        // tAggON below tRAS is clamped to tRAS, so the two programs last the same.
        assert_eq!(hammer.duration(&timing()), press.duration(&timing()));
    }

    #[test]
    fn double_sided_splits_activations_between_aggressors() {
        let p = ProgramBuilder::double_sided_press(
            timing(),
            BankId(1),
            RowId(10),
            RowId(12),
            Time::from_us(7.8),
            101,
        );
        assert_eq!(p.activation_count(), 101);
        // Odd counts append one extra activation of the low aggressor.
        let p = ProgramBuilder::double_sided_press(
            timing(),
            BankId(1),
            RowId(10),
            RowId(12),
            Time::from_us(7.8),
            100,
        );
        assert_eq!(p.activation_count(), 100);
    }

    #[test]
    fn onoff_pattern_duration_follows_t_a2a() {
        let p = ProgramBuilder::onoff_pattern(
            timing(),
            BankId(0),
            &[RowId(3)],
            Time::from_ns(636.0),
            Time::from_ns(615.0),
            100,
        );
        assert_eq!(p.activation_count(), 100);
        let d = p.duration(&timing());
        // t_a2a = 1251 ns per iteration.
        assert!((d.as_us() - 125.1).abs() < 2.0, "duration = {d}");
    }

    #[test]
    fn nested_repeat_counts_commands() {
        let inner = Instr::Repeat {
            count: 3,
            body: vec![
                Instr::Command(DramCommand::Ref),
                Instr::Wait(Time::from_ns(100.0)),
            ],
        };
        let outer = Instr::Repeat {
            count: 2,
            body: vec![inner],
        };
        assert_eq!(outer.command_count(), 6);
        let d = outer.duration(Time::from_ns(1.5));
        assert!((d.as_ns() - 2.0 * 3.0 * 101.5).abs() < 1e-6);
    }

    #[test]
    fn builder_wait_skips_zero_waits() {
        let mut b = ProgramBuilder::new(timing(), "t");
        b.wait(Time::ZERO)
            .wait(Time::from_ns(5.0))
            .refresh()
            .rd(BankId(0), ColumnId(3));
        let p = b.build();
        assert_eq!(p.instrs.len(), 3);
        assert_eq!(p.command_count(), 2);
        assert_eq!(p.activation_count(), 0);
    }
}
