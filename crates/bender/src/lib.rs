//! # rowpress-bender
//!
//! A DRAM-Bender-style testing platform for the RowPress reproduction. It
//! mirrors the role of the paper's FPGA-based infrastructure (§3.1): it takes
//! command-level test programs with precise timing, executes them against a
//! [`rowpress_dram::DramModule`] with auto-refresh disabled, enforces the
//! 60 ms execution budget that keeps experiments strictly inside a refresh
//! window, and models the temperature-controller loop that holds the chips at
//! the requested set point.
//!
//! The crate provides:
//!
//! * [`Program`], [`Instr`], [`ProgramBuilder`] — the test-program IR with the
//!   paper's access patterns (single-sided RowPress, double-sided RowPress,
//!   RowPress-ONOFF) as ready-made constructors.
//! * [`TestPlatform`], [`ExecutionReport`] — the command-level executor.
//! * [`TemperatureController`] — the heater/PID model.
//!
//! # Example
//!
//! ```
//! use rowpress_bender::{ProgramBuilder, TestPlatform};
//! use rowpress_dram::{module_inventory, BankId, DataPattern, DramModule, Geometry, RowId, Time, TimingParams};
//!
//! let spec = module_inventory().remove(0);
//! let mut platform = TestPlatform::new(DramModule::new(&spec, Geometry::tiny()));
//! platform.set_temperature(80.0);
//!
//! let bank = BankId(1);
//! platform.initialize_rows(bank, &[RowId(20)], &[RowId(19), RowId(21)], DataPattern::Checkerboard)?;
//! let program = ProgramBuilder::single_sided_press(
//!     TimingParams::ddr4(), bank, RowId(20), Time::from_ms(5.0), 10);
//! let report = platform.execute(&program)?;
//! assert_eq!(report.activations, 10);
//! # Ok::<(), rowpress_dram::DramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod platform;
mod program;

pub use platform::{ExecutionReport, TemperatureController, TestPlatform};
pub use program::{Instr, Program, ProgramBuilder};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<TestPlatform>();
        assert_send::<Program>();
        assert_send::<TemperatureController>();
    }
}
