//! Cycle-level DDR4 memory-controller model: bank state machines, FR-FCFS
//! scheduling, row-buffer policies, refresh, and the hook through which
//! RowHammer/RowPress mitigations inject preventive refreshes (paper §7,
//! Appendix D).
//!
//! Times are expressed in CPU cycles of the simulated 4 GHz core (0.25 ns per
//! cycle), matching the paper's simulated system configuration (Table 7).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// DRAM timing parameters in CPU cycles (4 GHz core clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CtrlTiming {
    /// Activate-to-read delay.
    pub t_rcd: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Minimum row-open time.
    pub t_ras: u64,
    /// Column (CAS) latency.
    pub t_cl: u64,
    /// Data-burst transfer time.
    pub t_bl: u64,
    /// Refresh interval.
    pub t_refi: u64,
    /// Refresh cycle time.
    pub t_rfc: u64,
    /// Refresh window (every row refreshed once per window).
    pub t_refw: u64,
}

impl CtrlTiming {
    /// DDR4-3200-like timings for a 4 GHz core (1 cycle = 0.25 ns).
    pub fn ddr4_3200() -> Self {
        CtrlTiming {
            t_rcd: 55,
            t_rp: 55,
            t_ras: 130,
            t_cl: 55,
            t_bl: 16,
            t_refi: 31_200,
            t_rfc: 1_400,
            t_refw: 256_000_000,
        }
    }

    /// Row cycle time (tRAS + tRP).
    pub fn t_rc(&self) -> u64 {
        self.t_ras + self.t_rp
    }

    /// Converts nanoseconds to CPU cycles (4 GHz).
    pub fn ns_to_cycles(ns: f64) -> u64 {
        (ns * 4.0).round() as u64
    }
}

impl Default for CtrlTiming {
    fn default() -> Self {
        Self::ddr4_3200()
    }
}

/// Row-buffer management policy (paper §7.3 and Appendix D.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Keep the row open until a conflicting access or refresh (the baseline
    /// FR-FCFS open-row policy).
    Open,
    /// Close the row immediately after each column access (the
    /// "minimally-open-row" policy of Appendix D.1).
    Closed,
    /// Keep the row open at most `tmro` nanoseconds after its activation (the
    /// row policy component of Graphene-RP / PARA-RP, §7.4).
    TimerCapped {
        /// Maximum row-open time in nanoseconds.
        tmro_ns: u32,
    },
}

impl RowPolicy {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            RowPolicy::Open => "open-row".to_string(),
            RowPolicy::Closed => "minimally-open-row".to_string(),
            RowPolicy::TimerCapped { tmro_ns } => format!("tmro={tmro_ns}ns"),
        }
    }
}

/// The physical DRAM location of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLocation {
    /// Bank index.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (cache-block) index within the row.
    pub column: u64,
}

/// Maps a physical byte address to a DRAM location: columns in the low bits,
/// banks in the middle, rows on top (8 KiB rows, 64 B blocks).
pub fn map_address(addr: u64, banks: usize) -> DramLocation {
    let block = addr / 64;
    let blocks_per_row = 128;
    let column = block % blocks_per_row;
    let bank = ((block / blocks_per_row) % banks as u64) as usize;
    let row = block / (blocks_per_row * banks as u64);
    DramLocation { bank, row, column }
}

/// The interface RowHammer/RowPress mitigation mechanisms implement
/// (Graphene, PARA and their -RP adaptations live in `rowpress-mitigations`).
pub trait ReadDisturbMitigation: Send {
    /// Called on every row activation. Returns `true` when the mechanism
    /// issues a preventive refresh of the activated row's neighbours, which
    /// costs the bank one extra row cycle per neighbour.
    fn on_activation(&mut self, bank: usize, row: u64, cycle: u64) -> bool;

    /// Called on every periodic refresh command (used by counter-reset logic).
    fn on_refresh(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// Mechanism name for reports.
    fn name(&self) -> &'static str;
}

/// A pass-through mitigation that never refreshes preventively.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMitigation;

impl ReadDisturbMitigation for NoMitigation {
    fn on_activation(&mut self, _bank: usize, _row: u64, _cycle: u64) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Aggregate statistics of one simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Total requests served.
    pub requests: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that found the bank closed.
    pub row_misses: u64,
    /// Requests that had to close another row first.
    pub row_conflicts: u64,
    /// Row activations issued.
    pub activations: u64,
    /// Preventive refreshes issued by the mitigation mechanism.
    pub preventive_refreshes: u64,
    /// Periodic refresh commands issued.
    pub refreshes: u64,
    /// Maximum number of activations any single row received within one
    /// refresh window (the quantity of Fig. 38).
    pub max_row_activations_in_window: u64,
}

impl ControllerStats {
    /// Row-buffer hit rate.
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Bank {
    open_row: Option<u64>,
    opened_at: u64,
    ready_at: u64,
    acts_in_window: HashMap<u64, u64>,
}

/// The memory controller: banks, policy, refresh state and the mitigation.
pub struct MemoryController {
    timing: CtrlTiming,
    policy: RowPolicy,
    banks: Vec<Bank>,
    mitigation: Box<dyn ReadDisturbMitigation>,
    next_refresh: u64,
    window_start: u64,
    stats: ControllerStats,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("policy", &self.policy)
            .field("banks", &self.banks.len())
            .field("mitigation", &self.mitigation.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemoryController {
    /// Creates a controller with 16 banks.
    pub fn new(
        timing: CtrlTiming,
        policy: RowPolicy,
        mitigation: Box<dyn ReadDisturbMitigation>,
    ) -> Self {
        MemoryController {
            timing,
            policy,
            banks: (0..16).map(|_| Bank::default()).collect(),
            mitigation,
            next_refresh: timing.t_refi,
            window_start: 0,
            stats: ControllerStats::default(),
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// The configured row policy.
    pub fn policy(&self) -> RowPolicy {
        self.policy
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    fn roll_refresh_window(&mut self, now: u64) {
        if now.saturating_sub(self.window_start) >= self.timing.t_refw {
            let max_in_window = self
                .banks
                .iter()
                .flat_map(|b| b.acts_in_window.values())
                .copied()
                .max()
                .unwrap_or(0);
            self.stats.max_row_activations_in_window =
                self.stats.max_row_activations_in_window.max(max_in_window);
            for bank in &mut self.banks {
                bank.acts_in_window.clear();
            }
            self.window_start = now;
        }
    }

    fn apply_refresh(&mut self, now: u64) {
        while now >= self.next_refresh {
            let refresh_start = self.next_refresh;
            for bank in &mut self.banks {
                bank.open_row = None;
                bank.ready_at = bank.ready_at.max(refresh_start) + self.timing.t_rfc;
            }
            self.mitigation.on_refresh(refresh_start);
            self.stats.refreshes += 1;
            self.next_refresh += self.timing.t_refi;
        }
    }

    /// True if the request at `loc` would hit the currently open row.
    pub fn is_row_hit(&self, loc: DramLocation) -> bool {
        self.banks[loc.bank].open_row == Some(loc.row)
    }

    /// Earliest cycle at which the bank serving `loc` can accept a command.
    pub fn bank_ready_at(&self, loc: DramLocation) -> u64 {
        self.banks[loc.bank].ready_at
    }

    /// Serves one request that the scheduler selected, starting no earlier
    /// than `now`, and returns the cycle at which its data is available.
    pub fn service(&mut self, loc: DramLocation, now: u64) -> u64 {
        self.apply_refresh(now);
        self.roll_refresh_window(now);
        let t = self.timing;
        let policy = self.policy;
        let start = now.max(self.banks[loc.bank].ready_at);
        let mut cycle = start;
        self.stats.requests += 1;

        // Enforce the tmro cap lazily: if the open row has exceeded its
        // allowance, it is considered already closed (the precharge happened
        // in the background).
        let effective_open = {
            let bank = &self.banks[loc.bank];
            match (bank.open_row, policy) {
                (Some(row), RowPolicy::TimerCapped { tmro_ns }) => {
                    let limit = CtrlTiming::ns_to_cycles(f64::from(tmro_ns));
                    if start.saturating_sub(bank.opened_at) > limit {
                        None
                    } else {
                        Some(row)
                    }
                }
                (open, _) => open,
            }
        };

        let hit = effective_open == Some(loc.row);
        let needs_precharge = effective_open.is_some() && !hit;

        if hit {
            self.stats.row_hits += 1;
        } else {
            if needs_precharge {
                self.stats.row_conflicts += 1;
                // Respect tRAS of the currently open row before precharging.
                let opened_at = self.banks[loc.bank].opened_at;
                cycle = cycle.max(opened_at + t.t_ras) + t.t_rp;
            } else {
                self.stats.row_misses += 1;
            }
            // Activate the requested row.
            cycle += t.t_rcd;
            self.stats.activations += 1;
            {
                let bank = &mut self.banks[loc.bank];
                bank.open_row = Some(loc.row);
                bank.opened_at = cycle - t.t_rcd;
                *bank.acts_in_window.entry(loc.row).or_default() += 1;
            }
            // Mitigation hook: a triggered preventive refresh keeps the bank
            // busy for one extra row cycle per refreshed neighbour (2 rows).
            if self.mitigation.on_activation(loc.bank, loc.row, cycle) {
                self.stats.preventive_refreshes += 1;
                cycle += 2 * t.t_rc();
            }
        }

        // Column access and data burst.
        let data_ready = cycle + t.t_cl + t.t_bl;

        // Row-policy epilogue.
        let bank = &mut self.banks[loc.bank];
        match policy {
            RowPolicy::Open | RowPolicy::TimerCapped { .. } => {
                bank.ready_at = data_ready;
            }
            RowPolicy::Closed => {
                // Precharge right after the access (respecting tRAS).
                let pre_at = (bank.opened_at + t.t_ras).max(data_ready);
                bank.ready_at = pre_at + t.t_rp;
                bank.open_row = None;
            }
        }
        data_ready
    }

    /// Finalizes window-level statistics at the end of a simulation.
    pub fn finalize(&mut self, now: u64) {
        let end = self.window_start + self.timing.t_refw;
        self.roll_refresh_window(end.max(now + self.timing.t_refw));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(policy: RowPolicy) -> MemoryController {
        MemoryController::new(CtrlTiming::ddr4_3200(), policy, Box::new(NoMitigation))
    }

    #[test]
    fn address_mapping_keeps_row_locality() {
        let a = map_address(0, 16);
        let b = map_address(64, 16);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, a.column + 1);
        // The next 8 KiB chunk moves to the next bank, not the next row.
        let c = map_address(8192, 16);
        assert_eq!(c.bank, a.bank + 1);
        assert_eq!(c.row, a.row);
        let d = map_address(8192 * 16, 16);
        assert_eq!(d.bank, a.bank);
        assert_eq!(d.row, a.row + 1);
    }

    #[test]
    fn open_policy_turns_second_access_into_row_hit() {
        let mut c = controller(RowPolicy::Open);
        let loc = map_address(0, 16);
        let first = c.service(loc, 0);
        let second_loc = map_address(64, 16);
        let second = c.service(second_loc, first);
        assert_eq!(c.stats().row_hits, 1);
        assert_eq!(c.stats().row_misses, 1);
        // A row hit is roughly tRCD cheaper than a row miss.
        assert!(second - first < first);
    }

    #[test]
    fn closed_policy_never_hits() {
        let mut c = controller(RowPolicy::Closed);
        let mut now = 0;
        for i in 0..8 {
            now = c.service(map_address(i * 64, 16), now);
        }
        assert_eq!(c.stats().row_hits, 0);
        assert_eq!(c.stats().requests, 8);
        assert_eq!(c.stats().activations, 8);
    }

    #[test]
    fn conflict_precharges_and_reopens() {
        let mut c = controller(RowPolicy::Open);
        let row0 = map_address(0, 16);
        let row1 = map_address(8192 * 16, 16); // same bank, next row
        assert_eq!(row0.bank, row1.bank);
        let t1 = c.service(row0, 0);
        let _t2 = c.service(row1, t1);
        assert_eq!(c.stats().row_conflicts, 1);
        assert_eq!(c.stats().activations, 2);
    }

    #[test]
    fn tmro_policy_closes_rows_after_allowance() {
        let mut c = controller(RowPolicy::TimerCapped { tmro_ns: 96 });
        let loc = map_address(0, 16);
        let t1 = c.service(loc, 0);
        // Access the same row long after tmro expired: it must be a miss, not a hit.
        let _ = c.service(map_address(64, 16), t1 + 10_000);
        assert_eq!(c.stats().row_hits, 0);
        assert_eq!(c.stats().activations, 2);
        // But an immediate second access still hits.
        let mut c = controller(RowPolicy::TimerCapped { tmro_ns: 96 });
        let t1 = c.service(loc, 0);
        let _ = c.service(map_address(64, 16), t1);
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn refresh_closes_rows_and_counts() {
        let mut c = controller(RowPolicy::Open);
        let loc = map_address(0, 16);
        let t = c.service(loc, 0);
        // Jump past several refresh intervals.
        let far = t + 4 * CtrlTiming::ddr4_3200().t_refi;
        let _ = c.service(map_address(64, 16), far);
        assert!(c.stats().refreshes >= 4);
        // The row was closed by refresh, so the second access is not a hit.
        assert_eq!(c.stats().row_hits, 0);
    }

    #[test]
    fn window_activation_tracking() {
        let mut c = controller(RowPolicy::Closed);
        let loc = map_address(0, 16);
        let mut now = 0;
        for _ in 0..50 {
            now = c.service(loc, now);
        }
        c.finalize(now);
        assert!(c.stats().max_row_activations_in_window >= 50);
    }

    #[test]
    fn mitigation_hook_is_invoked_and_charged() {
        struct Always;
        impl ReadDisturbMitigation for Always {
            fn on_activation(&mut self, _b: usize, _r: u64, _c: u64) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "always"
            }
        }
        let mut with =
            MemoryController::new(CtrlTiming::ddr4_3200(), RowPolicy::Closed, Box::new(Always));
        let mut without = controller(RowPolicy::Closed);
        let mut t_with = 0;
        let mut t_without = 0;
        for i in 0..20 {
            t_with = with.service(map_address(i * 64, 16), t_with);
            t_without = without.service(map_address(i * 64, 16), t_without);
        }
        assert_eq!(with.stats().preventive_refreshes, 20);
        assert!(t_with > t_without, "preventive refreshes must cost time");
        assert!(format!("{:?}", with).contains("always"));
    }

    #[test]
    fn timing_helpers() {
        let t = CtrlTiming::ddr4_3200();
        assert_eq!(t.t_rc(), t.t_ras + t.t_rp);
        assert_eq!(CtrlTiming::ns_to_cycles(36.0), 144);
        assert_eq!(RowPolicy::Open.label(), "open-row");
        assert!(RowPolicy::TimerCapped { tmro_ns: 96 }
            .label()
            .contains("96"));
    }
}
