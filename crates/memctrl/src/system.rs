//! Trace-driven multi-core system simulation on top of the memory controller.
//!
//! Each core replays a synthetic trace from `rowpress-workloads` through a
//! simple blocking-core model (4-wide retire, stalls on every LLC miss until
//! the data returns). The model is deliberately simple: the paper's mitigation
//! results depend on relative changes in memory latency and row-buffer hit
//! rate, which this model captures, not on absolute IPC.

use crate::controller::{
    map_address, ControllerStats, CtrlTiming, DramLocation, MemoryController,
    ReadDisturbMitigation, RowPolicy,
};
use rowpress_workloads::{TraceGenerator, WorkloadMix, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Result of simulating one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreResult {
    /// Workload name.
    pub workload: String,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed (shared across cores in a multi-core run).
    pub cycles: u64,
    /// Memory requests issued.
    pub requests: u64,
}

impl CoreResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Result of one system simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-core results.
    pub cores: Vec<CoreResult>,
    /// Memory-controller statistics.
    pub controller: ControllerStats,
}

impl SimResult {
    /// Weighted speedup against per-core baseline IPCs (paper Appendix D.2):
    /// the sum over cores of IPC_shared / IPC_alone.
    pub fn weighted_speedup(&self, alone_ipcs: &[f64]) -> f64 {
        self.cores
            .iter()
            .zip(alone_ipcs)
            .map(|(c, &alone)| if alone > 0.0 { c.ipc() / alone } else { 0.0 })
            .sum()
    }
}

/// Configuration of a system simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of memory accesses each core replays.
    pub accesses_per_core: usize,
    /// Row-buffer policy of the memory controller.
    pub policy: RowPolicy,
    /// Retire width of each core (instructions per cycle while not stalled).
    pub retire_width: u32,
    /// Trace-generation seed.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            accesses_per_core: 20_000,
            policy: RowPolicy::Open,
            retire_width: 4,
            seed: 1,
        }
    }
}

struct CoreState {
    workload: String,
    trace: Vec<rowpress_workloads::TraceRecord>,
    next_index: usize,
    /// Cycle at which the core is ready to issue its next request.
    ready_at: u64,
    /// The pending request, if any (location, issue cycle).
    pending: Option<(DramLocation, u64)>,
    instructions: u64,
    requests: u64,
    finish_cycle: u64,
}

/// Simulates a workload mix on a shared memory controller and returns per-core
/// IPCs plus controller statistics.
pub fn simulate_mix(
    mix: &WorkloadMix,
    config: &SystemConfig,
    mitigation: Box<dyn ReadDisturbMitigation>,
) -> SimResult {
    let mut controller = MemoryController::new(CtrlTiming::ddr4_3200(), config.policy, mitigation);
    let banks = controller.banks();

    let mut cores: Vec<CoreState> = mix
        .workloads
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let mut generator =
                TraceGenerator::new(profile.clone(), config.seed.wrapping_add(i as u64 * 977));
            CoreState {
                workload: profile.name.clone(),
                trace: generator.generate(config.accesses_per_core),
                next_index: 0,
                ready_at: 0,
                pending: None,
                instructions: 0,
                requests: 0,
                finish_cycle: 0,
            }
        })
        .collect();
    // Offset each core's address space so cores do not share rows.
    let core_offset: u64 = 1 << 33;

    loop {
        // Stage 1: cores that are idle prepare their next request.
        for (i, core) in cores.iter_mut().enumerate() {
            if core.pending.is_none() && core.next_index < core.trace.len() {
                let rec = core.trace[core.next_index];
                core.next_index += 1;
                // Execute the non-memory instructions at the retire width.
                let exec_cycles = u64::from(rec.inst_gap) / u64::from(config.retire_width.max(1));
                core.instructions += u64::from(rec.inst_gap) + 1;
                core.ready_at += exec_cycles;
                let loc = map_address(rec.addr + core_offset * i as u64, banks);
                core.pending = Some((loc, core.ready_at));
                core.requests += 1;
            }
        }

        // Stage 2: FR-FCFS among the pending requests — row hits first, then
        // the oldest request.
        let candidate = cores
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.pending.map(|(loc, at)| (i, loc, at)))
            .min_by_key(|&(_, loc, at)| {
                let hit = controller.is_row_hit(loc);
                (if hit { 0u64 } else { 1u64 }, at)
            });

        let Some((core_idx, loc, issue_at)) = candidate else {
            break; // all cores have drained their traces
        };
        let done = controller.service(loc, issue_at);
        let core = &mut cores[core_idx];
        core.pending = None;
        core.ready_at = done;
        core.finish_cycle = done;
    }

    let total_cycles = cores
        .iter()
        .map(|c| c.finish_cycle)
        .max()
        .unwrap_or(0)
        .max(1);
    controller.finalize(total_cycles);

    SimResult {
        cores: cores
            .into_iter()
            .map(|c| CoreResult {
                workload: c.workload,
                instructions: c.instructions,
                cycles: total_cycles,
                requests: c.requests,
            })
            .collect(),
        controller: controller.stats().clone(),
    }
}

/// Simulates a single workload running alone (used as the weighted-speedup
/// baseline and for the single-core studies of Fig. 38–40).
pub fn simulate_alone(
    profile: &WorkloadProfile,
    config: &SystemConfig,
    mitigation: Box<dyn ReadDisturbMitigation>,
) -> SimResult {
    let mix = WorkloadMix {
        label: profile.name.clone(),
        workloads: vec![profile.clone()],
    };
    simulate_mix(&mix, config, mitigation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::NoMitigation;
    use rowpress_workloads::{find_workload, homogeneous_mix};

    fn quick_config(policy: RowPolicy) -> SystemConfig {
        SystemConfig {
            accesses_per_core: 4_000,
            policy,
            retire_width: 4,
            seed: 3,
        }
    }

    #[test]
    fn single_core_simulation_produces_sane_ipc() {
        let p = find_workload("462.libquantum").unwrap();
        let r = simulate_alone(&p, &quick_config(RowPolicy::Open), Box::new(NoMitigation));
        assert_eq!(r.cores.len(), 1);
        let ipc = r.cores[0].ipc();
        assert!(ipc > 0.01 && ipc <= 4.0, "ipc = {ipc}");
        assert_eq!(r.controller.requests, 4_000);
        assert!(
            r.controller.row_hit_rate() > 0.7,
            "libquantum should be row-buffer friendly"
        );
    }

    #[test]
    fn closed_policy_slows_down_high_locality_workloads() {
        let p = find_workload("462.libquantum").unwrap();
        let open = simulate_alone(&p, &quick_config(RowPolicy::Open), Box::new(NoMitigation));
        let closed = simulate_alone(&p, &quick_config(RowPolicy::Closed), Box::new(NoMitigation));
        let slowdown = open.cores[0].ipc() / closed.cores[0].ipc();
        assert!(
            slowdown > 1.1,
            "minimally-open-row must hurt libquantum, slowdown = {slowdown}"
        );
        // A low-locality workload is barely affected.
        let mcf = find_workload("429.mcf").unwrap();
        let open_mcf = simulate_alone(&mcf, &quick_config(RowPolicy::Open), Box::new(NoMitigation));
        let closed_mcf = simulate_alone(
            &mcf,
            &quick_config(RowPolicy::Closed),
            Box::new(NoMitigation),
        );
        let slowdown_mcf = open_mcf.cores[0].ipc() / closed_mcf.cores[0].ipc();
        assert!(
            slowdown_mcf < slowdown,
            "mcf ({slowdown_mcf}) must suffer less than libquantum ({slowdown})"
        );
    }

    #[test]
    fn closed_policy_inflates_per_row_activation_counts() {
        let p = find_workload("510.parest").unwrap();
        let open = simulate_alone(&p, &quick_config(RowPolicy::Open), Box::new(NoMitigation));
        let closed = simulate_alone(&p, &quick_config(RowPolicy::Closed), Box::new(NoMitigation));
        assert!(
            closed.controller.max_row_activations_in_window
                > open.controller.max_row_activations_in_window,
            "closed {} vs open {}",
            closed.controller.max_row_activations_in_window,
            open.controller.max_row_activations_in_window
        );
    }

    #[test]
    fn four_core_mix_shares_bandwidth() {
        let p = find_workload("470.lbm").unwrap();
        let mix = homogeneous_mix(&p);
        let cfg = quick_config(RowPolicy::Open);
        let shared = simulate_mix(&mix, &cfg, Box::new(NoMitigation));
        assert_eq!(shared.cores.len(), 4);
        let alone = simulate_alone(&p, &cfg, Box::new(NoMitigation));
        // Sharing the channel cannot make a core faster than running alone.
        for c in &shared.cores {
            assert!(c.ipc() <= alone.cores[0].ipc() * 1.05);
        }
        // Weighted speedup of 4 identical cores is between 0 and 4.
        let ws = shared.weighted_speedup(&[alone.cores[0].ipc(); 4]);
        assert!(ws > 0.5 && ws <= 4.0, "ws = {ws}");
    }

    #[test]
    fn tmro_policy_sits_between_open_and_closed() {
        let p = find_workload("h264_encode").unwrap();
        let cfg_open = quick_config(RowPolicy::Open);
        let cfg_tmro = quick_config(RowPolicy::TimerCapped { tmro_ns: 636 });
        let cfg_closed = quick_config(RowPolicy::Closed);
        let open = simulate_alone(&p, &cfg_open, Box::new(NoMitigation)).cores[0].ipc();
        let tmro = simulate_alone(&p, &cfg_tmro, Box::new(NoMitigation)).cores[0].ipc();
        let closed = simulate_alone(&p, &cfg_closed, Box::new(NoMitigation)).cores[0].ipc();
        assert!(open >= tmro * 0.98, "open {open} vs tmro {tmro}");
        assert!(tmro >= closed * 0.98, "tmro {tmro} vs closed {closed}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let p = find_workload("tpch17").unwrap();
        let cfg = quick_config(RowPolicy::Open);
        let a = simulate_alone(&p, &cfg, Box::new(NoMitigation));
        let b = simulate_alone(&p, &cfg, Box::new(NoMitigation));
        assert_eq!(a, b);
    }
}
