//! # rowpress-memctrl
//!
//! A cycle-level DDR4 memory-controller and multi-core system simulator used
//! by the RowPress mitigation evaluation (paper §7 and Appendix D). It plays
//! the role Ramulator plays in the paper: FR-FCFS scheduling, open / closed /
//! tmro-capped row policies, periodic refresh, per-row activation accounting
//! within the refresh window, and a hook ([`ReadDisturbMitigation`]) through
//! which Graphene / PARA and their RowPress adaptations inject preventive
//! refreshes.
//!
//! # Example
//!
//! ```
//! use rowpress_memctrl::{simulate_alone, NoMitigation, RowPolicy, SystemConfig};
//! use rowpress_workloads::find_workload;
//!
//! let workload = find_workload("462.libquantum").unwrap();
//! let config = SystemConfig { accesses_per_core: 2_000, policy: RowPolicy::Open, ..Default::default() };
//! let result = simulate_alone(&workload, &config, Box::new(NoMitigation));
//! assert!(result.cores[0].ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod system;

pub use controller::{
    map_address, ControllerStats, CtrlTiming, DramLocation, MemoryController, NoMitigation,
    ReadDisturbMitigation, RowPolicy,
};
pub use system::{simulate_alone, simulate_mix, CoreResult, SimResult, SystemConfig};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn config_defaults_are_reasonable() {
        let c = SystemConfig::default();
        assert_eq!(c.policy, RowPolicy::Open);
        assert!(c.accesses_per_core >= 1_000);
        assert!(c.retire_width >= 1);
    }
}
