//! End-to-end evaluation of the adapted mitigations (Table 3, Table 9,
//! Fig. 40/41): simulate workloads under the baseline mechanism (RowHammer
//! threshold, open-row policy) and under the RowPress-adapted configuration
//! (scaled threshold, tmro-capped row policy), and report the slowdown.

use crate::mechanisms::{MechanismKind, MitigationConfig};
use rowpress_memctrl::{simulate_alone, simulate_mix, RowPolicy, SystemConfig};
use rowpress_workloads::{WorkloadMix, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// One (configuration, workload) evaluation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadRecord {
    /// Mechanism evaluated.
    pub kind: MechanismKind,
    /// Maximum row-open time of the adapted configuration (ns).
    pub tmro_ns: u32,
    /// Adapted threshold T'RH.
    pub trh_adapted: u64,
    /// Workload or mix label.
    pub workload: String,
    /// Performance metric of the baseline mechanism (IPC for single-core,
    /// weighted speedup for multi-core).
    pub baseline_perf: f64,
    /// Performance metric of the adapted mechanism.
    pub adapted_perf: f64,
}

impl OverheadRecord {
    /// Slowdown of the adapted configuration relative to the baseline, in
    /// percent (negative values are speedups, which the paper also observes).
    pub fn overhead_pct(&self) -> f64 {
        if self.adapted_perf <= 0.0 {
            return 100.0;
        }
        (self.baseline_perf / self.adapted_perf - 1.0) * 100.0
    }
}

/// Evaluates a mechanism's RowPress adaptation on single-core workloads: for
/// every tmro value, every workload is simulated under the baseline
/// (tmro = 36 ns ⇒ open-row policy, unadapted threshold) and the adapted
/// configuration, and the per-workload slowdown is recorded.
pub fn evaluate_single_core(
    kind: MechanismKind,
    trh_base: u64,
    tmro_values: &[u32],
    workloads: &[WorkloadProfile],
    sim: &SystemConfig,
) -> Vec<OverheadRecord> {
    let mut records = Vec::new();
    for &tmro_ns in tmro_values {
        let adapted = MitigationConfig {
            kind,
            trh_base,
            tmro_ns,
        };
        let baseline = MitigationConfig {
            kind,
            trh_base,
            tmro_ns: 36,
        };
        for w in workloads {
            let base_cfg = SystemConfig {
                policy: RowPolicy::Open,
                ..*sim
            };
            let adapted_cfg = SystemConfig {
                policy: adapted.row_policy(),
                ..*sim
            };
            let base = simulate_alone(w, &base_cfg, baseline.build(7)).cores[0].ipc();
            let adpt = simulate_alone(w, &adapted_cfg, adapted.build(7)).cores[0].ipc();
            records.push(OverheadRecord {
                kind,
                tmro_ns,
                trh_adapted: adapted.adapted_trh(),
                workload: w.name.clone(),
                baseline_perf: base,
                adapted_perf: adpt,
            });
        }
    }
    records
}

/// Evaluates a mechanism's RowPress adaptation on multi-programmed mixes using
/// weighted speedup (Appendix D.2). `alone_ipcs` must contain, per mix, the
/// IPC of each workload running alone under the baseline system.
pub fn evaluate_mixes(
    kind: MechanismKind,
    trh_base: u64,
    tmro_values: &[u32],
    mixes: &[WorkloadMix],
    sim: &SystemConfig,
) -> Vec<OverheadRecord> {
    // Alone baselines (open-row, baseline mechanism) per distinct workload.
    let mut alone_cache: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let baseline_mech = MitigationConfig {
        kind,
        trh_base,
        tmro_ns: 36,
    };
    let base_cfg = SystemConfig {
        policy: RowPolicy::Open,
        ..*sim
    };
    for mix in mixes {
        for w in &mix.workloads {
            alone_cache.entry(w.name.clone()).or_insert_with(|| {
                simulate_alone(w, &base_cfg, baseline_mech.build(7)).cores[0].ipc()
            });
        }
    }

    let mut records = Vec::new();
    for &tmro_ns in tmro_values {
        let adapted = MitigationConfig {
            kind,
            trh_base,
            tmro_ns,
        };
        for mix in mixes {
            let alone: Vec<f64> = mix.workloads.iter().map(|w| alone_cache[&w.name]).collect();
            let base =
                simulate_mix(mix, &base_cfg, baseline_mech.build(7)).weighted_speedup(&alone);
            let adapted_cfg = SystemConfig {
                policy: adapted.row_policy(),
                ..*sim
            };
            let adpt = simulate_mix(mix, &adapted_cfg, adapted.build(7)).weighted_speedup(&alone);
            records.push(OverheadRecord {
                kind,
                tmro_ns,
                trh_adapted: adapted.adapted_trh(),
                workload: mix.label.clone(),
                baseline_perf: base,
                adapted_perf: adpt,
            });
        }
    }
    records
}

/// Average and maximum overhead per (mechanism, tmro) — the rows of Table 3.
pub fn summarize_overheads(records: &[OverheadRecord]) -> Vec<(MechanismKind, u32, f64, f64)> {
    let mut keys: Vec<(MechanismKind, u32)> = records.iter().map(|r| (r.kind, r.tmro_ns)).collect();
    keys.sort_by_key(|&(k, t)| (format!("{k:?}"), t));
    keys.dedup();
    keys.into_iter()
        .map(|(kind, tmro)| {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.kind == kind && r.tmro_ns == tmro)
                .map(OverheadRecord::overhead_pct)
                .collect();
            let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            (kind, tmro, avg, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpress_workloads::find_workload;

    fn quick_sim() -> SystemConfig {
        SystemConfig {
            accesses_per_core: 3_000,
            policy: RowPolicy::Open,
            retire_width: 4,
            seed: 5,
        }
    }

    #[test]
    fn single_core_overheads_are_small_for_graphene() {
        let workloads = vec![
            find_workload("462.libquantum").unwrap(),
            find_workload("429.mcf").unwrap(),
        ];
        let records = evaluate_single_core(
            MechanismKind::Graphene,
            1000,
            &[96],
            &workloads,
            &quick_sim(),
        );
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.trh_adapted, 724);
            assert!(r.baseline_perf > 0.0 && r.adapted_perf > 0.0);
            // Graphene-RP at tmro = 96 ns stays within a few percent of Graphene.
            assert!(
                r.overhead_pct() < 20.0,
                "{}: {}%",
                r.workload,
                r.overhead_pct()
            );
        }
    }

    #[test]
    fn para_overhead_grows_with_larger_tmro() {
        let workloads = vec![find_workload("470.lbm").unwrap()];
        let records = evaluate_single_core(
            MechanismKind::Para,
            1000,
            &[36, 636],
            &workloads,
            &quick_sim(),
        );
        let summary = summarize_overheads(&records);
        assert_eq!(summary.len(), 2);
        let at = |tmro: u32| summary.iter().find(|s| s.1 == tmro).unwrap().2;
        // The tmro = 36 ns configuration is identical to the baseline, so its
        // overhead is zero by construction; the 636 ns configuration trades a
        // much smaller threshold (more preventive refreshes) against a row
        // policy that converts row conflicts into cheaper misses. The paper
        // reports single-digit percentages either way (Table 9); what must
        // hold here is that the overhead stays bounded in that regime.
        assert!(
            at(36).abs() < 1e-6,
            "baseline-equal configuration must have zero overhead"
        );
        assert!(
            at(636) > -10.0 && at(636) < 25.0,
            "PARA-RP overhead out of range: {}",
            at(636)
        );
    }

    #[test]
    fn mix_evaluation_uses_weighted_speedup() {
        let mixes = vec![rowpress_workloads::homogeneous_mix(
            &find_workload("h264_encode").unwrap(),
        )];
        let records = evaluate_mixes(MechanismKind::Graphene, 1000, &[96], &mixes, &quick_sim());
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert!(r.baseline_perf > 0.0 && r.baseline_perf <= 4.0);
        assert!(r.adapted_perf > 0.0 && r.adapted_perf <= 4.0);
        assert!(r.overhead_pct().abs() < 30.0);
    }

    #[test]
    fn overhead_record_math() {
        let r = OverheadRecord {
            kind: MechanismKind::Graphene,
            tmro_ns: 96,
            trh_adapted: 724,
            workload: "x".into(),
            baseline_perf: 2.0,
            adapted_perf: 1.6,
        };
        assert!((r.overhead_pct() - 25.0).abs() < 1e-9);
        let speedup = OverheadRecord {
            adapted_perf: 2.5,
            ..r.clone()
        };
        assert!(speedup.overhead_pct() < 0.0);
        let broken = OverheadRecord {
            adapted_perf: 0.0,
            ..r
        };
        assert_eq!(broken.overhead_pct(), 100.0);
    }
}
