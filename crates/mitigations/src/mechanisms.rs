//! RowHammer mitigation mechanisms (Graphene, PARA) and the paper's
//! methodology for adapting them to also cover RowPress (§7.4).
//!
//! The adaptation has two parts: (1) scale the RowHammer threshold down by the
//! worst-case ACmin reduction observed at the chosen maximum row-open time
//! (Table 8), and (2) enforce that maximum row-open time in the memory
//! controller (`RowPolicy::TimerCapped`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rowpress_memctrl::ReadDisturbMitigation;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The per-tmro adapted RowHammer threshold of Table 8, for a baseline
/// threshold of 1K: the characterization says that allowing a row to stay open
/// for `tmro` reduces ACmin by up to the listed factor, so the mitigation must
/// act as if the threshold were proportionally lower.
pub const TRH_ADAPTATION_TABLE: [(u32, f64); 6] = [
    (36, 1.000),
    (66, 0.809),
    (96, 0.724),
    (186, 0.619),
    (336, 0.555),
    (636, 0.419),
];

/// Scales a baseline RowHammer threshold to its RowPress-adapted value for a
/// maximum row-open time of `tmro_ns`, interpolating the characterization
/// table (Table 8). Values beyond the table are clamped to its ends.
pub fn adapted_trh(trh_base: u64, tmro_ns: u32) -> u64 {
    let table = &TRH_ADAPTATION_TABLE;
    let factor = if tmro_ns <= table[0].0 {
        table[0].1
    } else if tmro_ns >= table[table.len() - 1].0 {
        table[table.len() - 1].1
    } else {
        let mut factor = table[0].1;
        for pair in table.windows(2) {
            let (t0, f0) = pair[0];
            let (t1, f1) = pair[1];
            if tmro_ns >= t0 && tmro_ns <= t1 {
                let alpha = f64::from(tmro_ns - t0) / f64::from(t1 - t0);
                factor = f0 + alpha * (f1 - f0);
                break;
            }
        }
        factor
    };
    ((trh_base as f64) * factor).round().max(1.0) as u64
}

/// Derives the adaptation factor directly from an ACmin-vs-tAggON
/// characterization (pairs of `(t_aggon_ns, mean ACmin)`): the factor for a
/// given tmro is `ACmin(tmro) / ACmin(tRAS)`, i.e. how much more dangerous an
/// activation becomes when the row may stay open that long.
pub fn adaptation_factor_from_characterization(curve: &[(f64, f64)], tmro_ns: f64) -> Option<f64> {
    let base = curve
        .iter()
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .map(|&(_, ac)| ac)?;
    if base <= 0.0 {
        return None;
    }
    // Find the ACmin at the largest characterized tAggON not exceeding tmro.
    let at_tmro = curve
        .iter()
        .filter(|&&(t, _)| t <= tmro_ns)
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .map(|&(_, ac)| ac)?;
    Some((at_tmro / base).clamp(0.0, 1.0))
}

/// Graphene: a Misra–Gries frequent-element counter table per bank that
/// preventively refreshes the neighbours of any row whose activation count
/// crosses multiples of the table threshold.
#[derive(Debug)]
pub struct Graphene {
    /// Preventive-refresh threshold (T in the paper; roughly T_RH / 3).
    threshold: u64,
    /// Counter-table capacity per bank.
    capacity: usize,
    tables: HashMap<usize, HashMap<u64, u64>>,
    spill: HashMap<usize, u64>,
    refreshes_seen: u64,
    refreshes_per_window: u64,
}

impl Graphene {
    /// Creates a Graphene instance for a RowHammer threshold `trh`, using the
    /// paper's configuration rule T = trh / 3 and a 128-entry table per bank.
    pub fn for_threshold(trh: u64) -> Self {
        Graphene {
            threshold: (trh / 3).max(1),
            capacity: 128,
            tables: HashMap::new(),
            spill: HashMap::new(),
            refreshes_seen: 0,
            refreshes_per_window: 8192,
        }
    }

    /// The preventive-refresh threshold T.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl ReadDisturbMitigation for Graphene {
    fn on_activation(&mut self, bank: usize, row: u64, _cycle: u64) -> bool {
        let spill = self.spill.entry(bank).or_insert(0);
        let table = self.tables.entry(bank).or_default();
        let count = if let Some(c) = table.get_mut(&row) {
            *c += 1;
            *c
        } else if table.len() < self.capacity {
            let start = *spill + 1;
            table.insert(row, start);
            start
        } else {
            // Misra-Gries: decrement everyone; evict zeros; raise the spill.
            *spill += 1;
            table.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
            return false;
        };
        count % self.threshold == 0
    }

    fn on_refresh(&mut self, _cycle: u64) {
        self.refreshes_seen += 1;
        if self
            .refreshes_seen
            .is_multiple_of(self.refreshes_per_window)
        {
            self.tables.clear();
            self.spill.clear();
        }
    }

    fn name(&self) -> &'static str {
        "Graphene"
    }
}

/// PARA: on every activation, refresh the activated row's neighbours with a
/// small probability `p`.
#[derive(Debug)]
pub struct Para {
    probability: f64,
    rng: SmallRng,
}

impl Para {
    /// Creates a PARA instance with an explicit refresh probability.
    pub fn new(probability: f64, seed: u64) -> Self {
        Para {
            probability: probability.clamp(0.0, 1.0),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Creates a PARA instance for a RowHammer threshold, using the paper's
    /// configuration rule (Table 8 lists p = 0.034 for a threshold of 1K,
    /// growing as the threshold shrinks).
    pub fn for_threshold(trh: u64, seed: u64) -> Self {
        let p = (34.0 / trh.max(1) as f64).clamp(1e-4, 0.5);
        Self::new(p, seed)
    }

    /// The per-activation preventive-refresh probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl ReadDisturbMitigation for Para {
    fn on_activation(&mut self, _bank: usize, _row: u64, _cycle: u64) -> bool {
        self.rng.gen_bool(self.probability)
    }

    fn name(&self) -> &'static str {
        "PARA"
    }
}

/// Which base mechanism an adapted configuration builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MechanismKind {
    /// Graphene (low performance overhead, per-bank counter tables).
    Graphene,
    /// PARA (low area overhead, probabilistic).
    Para,
}

/// A complete mitigation configuration: the mechanism, the (possibly adapted)
/// threshold, and the maximum row-open time enforced by the row policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// Base mechanism.
    pub kind: MechanismKind,
    /// Baseline RowHammer threshold (1K in the paper's evaluation).
    pub trh_base: u64,
    /// Maximum row-open time in nanoseconds; 36 ns (= tRAS) disables the
    /// RowPress adaptation's row-policy component.
    pub tmro_ns: u32,
}

impl MitigationConfig {
    /// The RowPress-adapted threshold T'RH for this configuration.
    pub fn adapted_trh(&self) -> u64 {
        adapted_trh(self.trh_base, self.tmro_ns)
    }

    /// Instantiates the mechanism (boxed for the controller hook).
    pub fn build(&self, seed: u64) -> Box<dyn ReadDisturbMitigation> {
        match self.kind {
            MechanismKind::Graphene => Box::new(Graphene::for_threshold(self.adapted_trh())),
            MechanismKind::Para => Box::new(Para::for_threshold(self.adapted_trh(), seed)),
        }
    }

    /// The row policy the adapted configuration requires.
    pub fn row_policy(&self) -> rowpress_memctrl::RowPolicy {
        if self.tmro_ns <= 36 {
            rowpress_memctrl::RowPolicy::Open
        } else {
            rowpress_memctrl::RowPolicy::TimerCapped {
                tmro_ns: self.tmro_ns,
            }
        }
    }

    /// Display label ("Graphene-RP tmro=96ns").
    pub fn label(&self) -> String {
        let base = match self.kind {
            MechanismKind::Graphene => "Graphene",
            MechanismKind::Para => "PARA",
        };
        if self.tmro_ns <= 36 {
            format!("{base}-RP tmro=36ns(=tRAS)")
        } else {
            format!("{base}-RP tmro={}ns", self.tmro_ns)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_table_matches_paper_values() {
        assert_eq!(adapted_trh(1000, 36), 1000);
        assert_eq!(adapted_trh(1000, 66), 809);
        assert_eq!(adapted_trh(1000, 96), 724);
        assert_eq!(adapted_trh(1000, 186), 619);
        assert_eq!(adapted_trh(1000, 336), 555);
        assert_eq!(adapted_trh(1000, 636), 419);
        // Clamping and interpolation.
        assert_eq!(adapted_trh(1000, 10), 1000);
        assert_eq!(adapted_trh(1000, 10_000), 419);
        let mid = adapted_trh(1000, 81);
        assert!(mid < 809 && mid > 724);
        assert!(adapted_trh(0, 96) >= 1);
    }

    #[test]
    fn adaptation_factor_from_measured_curve() {
        // A synthetic ACmin curve: flat then dropping.
        let curve = vec![
            (36.0, 100_000.0),
            (96.0, 72_000.0),
            (636.0, 42_000.0),
            (7800.0, 6_000.0),
        ];
        let f96 = adaptation_factor_from_characterization(&curve, 96.0).unwrap();
        assert!((f96 - 0.72).abs() < 1e-9);
        let f_large = adaptation_factor_from_characterization(&curve, 1e6).unwrap();
        assert!((f_large - 0.06).abs() < 1e-9);
        assert!(adaptation_factor_from_characterization(&[], 96.0).is_none());
    }

    #[test]
    fn graphene_triggers_on_heavily_activated_rows_only() {
        let mut g = Graphene::for_threshold(999);
        assert_eq!(g.threshold(), 333);
        let mut refreshes = 0;
        for _ in 0..1000 {
            if g.on_activation(0, 42, 0) {
                refreshes += 1;
            }
        }
        assert_eq!(
            refreshes, 3,
            "a row activated 1000 times crosses T=333 three times"
        );
        // A row activated a handful of times never triggers.
        let mut g = Graphene::for_threshold(999);
        let any = (0..10).any(|_| g.on_activation(0, 7, 0));
        assert!(!any);
        assert_eq!(g.name(), "Graphene");
    }

    #[test]
    fn graphene_tracks_heavy_hitters_despite_noise() {
        let mut g = Graphene::for_threshold(900);
        let mut triggered = false;
        // Interleave one aggressor with many one-off rows (decoys).
        for i in 0..90_000u64 {
            if i % 3 == 0 {
                triggered |= g.on_activation(0, 1, 0);
            } else {
                g.on_activation(0, 1000 + i, 0);
            }
        }
        assert!(
            triggered,
            "the frequently activated row must eventually be caught"
        );
    }

    #[test]
    fn graphene_resets_at_refresh_window() {
        let mut g = Graphene::for_threshold(300);
        for _ in 0..50 {
            g.on_activation(0, 9, 0);
        }
        assert!(!g.tables.is_empty());
        for _ in 0..8192 {
            g.on_refresh(0);
        }
        assert!(g.tables.is_empty(), "counters reset every refresh window");
    }

    #[test]
    fn para_rate_matches_probability() {
        let mut p = Para::for_threshold(1000, 7);
        assert!((p.probability() - 0.034).abs() < 1e-9);
        let n = 200_000;
        let hits = (0..n).filter(|_| p.on_activation(0, 0, 0)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.034).abs() < 0.005, "measured rate {rate}");
        assert_eq!(p.name(), "PARA");
        // Smaller thresholds need more aggressive refreshing.
        assert!(
            Para::for_threshold(419, 7).probability() > Para::for_threshold(1000, 7).probability()
        );
    }

    #[test]
    fn mitigation_config_builds_adapted_mechanisms() {
        let cfg = MitigationConfig {
            kind: MechanismKind::Graphene,
            trh_base: 1000,
            tmro_ns: 96,
        };
        assert_eq!(cfg.adapted_trh(), 724);
        assert_eq!(
            cfg.row_policy(),
            rowpress_memctrl::RowPolicy::TimerCapped { tmro_ns: 96 }
        );
        assert!(cfg.label().contains("Graphene-RP"));
        let baseline = MitigationConfig {
            kind: MechanismKind::Para,
            trh_base: 1000,
            tmro_ns: 36,
        };
        assert_eq!(baseline.adapted_trh(), 1000);
        assert_eq!(baseline.row_policy(), rowpress_memctrl::RowPolicy::Open);
        let mut built = cfg.build(1);
        let _ = built.on_activation(0, 0, 0);
        let mut built = baseline.build(1);
        let _ = built.on_activation(0, 0, 0);
    }
}
