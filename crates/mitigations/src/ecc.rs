//! Error-correcting-code analysis (paper §7.1, Fig. 25/26).
//!
//! The paper asks whether the ECC schemes deployed in practice could absorb
//! RowPress bitflips, by counting how many bitflips land in each 64-bit data
//! word. This module classifies those per-word counts under SECDED, a strong
//! Hamming(7,4) code, and Chipkill, and summarizes the page-retirement cost.

use serde::{Deserialize, Serialize};

/// The ECC schemes analyzed in §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccScheme {
    /// No ECC.
    None,
    /// SECDED(72, 64): corrects one bitflip per 64-bit word, detects two.
    Secded,
    /// Hamming(7, 4) applied to every 4-bit nibble: corrects one bitflip per
    /// nibble (75 % storage overhead — the paper's "even this is not enough"
    /// example).
    Hamming74,
    /// Chipkill: corrects one erroneous symbol, detects two. The symbol width
    /// matches the device data width (x4, x8 or x16).
    Chipkill {
        /// Symbol width in bits (the DRAM device data width).
        symbol_bits: u8,
    },
}

/// What happens to a word with a given number of bitflips under a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccOutcome {
    /// No bitflips: nothing to do.
    Clean,
    /// All bitflips corrected.
    Corrected,
    /// Errors detected but not correctable (machine check / data loss).
    DetectedUncorrectable,
    /// Errors neither corrected nor detected (silent data corruption).
    SilentCorruption,
}

impl EccScheme {
    /// Classifies a 64-bit word with `flips` bitflips.
    ///
    /// For Chipkill the flips are assumed to spread across symbols as evenly
    /// as an adversary could arrange (the conservative assessment used by the
    /// paper's footnote: 25 bitflips imply at least 7 / 4 / 2 bad symbols for
    /// x4 / x8 / x16 devices).
    pub fn classify(&self, flips: usize) -> EccOutcome {
        if flips == 0 {
            return EccOutcome::Clean;
        }
        match self {
            EccScheme::None => EccOutcome::SilentCorruption,
            EccScheme::Secded => match flips {
                1 => EccOutcome::Corrected,
                2 => EccOutcome::DetectedUncorrectable,
                _ => EccOutcome::SilentCorruption,
            },
            EccScheme::Hamming74 => {
                // One correctable flip per 4-bit nibble; 16 nibbles per word.
                // More than one flip in any nibble breaks it. Worst case, all
                // flips pile into as few nibbles as possible; best case they
                // spread out. We take the adversarial view: any word with more
                // flips than nibbles that could each absorb one is at risk, and
                // two flips in one nibble is miscorrected silently.
                if flips <= 1 {
                    EccOutcome::Corrected
                } else {
                    EccOutcome::SilentCorruption
                }
            }
            EccScheme::Chipkill { symbol_bits } => {
                let symbols_hit =
                    flips
                        .div_ceil(usize::from(*symbol_bits))
                        .max(if flips > 0 { 1 } else { 0 });
                // An adversary spreads flips over as many symbols as possible:
                // up to `flips` symbols, bounded by the symbols per word.
                let symbols_per_word = 64 / usize::from(*symbol_bits);
                let worst_case_symbols = flips.min(symbols_per_word).max(symbols_hit);
                match worst_case_symbols {
                    1 => EccOutcome::Corrected,
                    2 => EccOutcome::DetectedUncorrectable,
                    _ => EccOutcome::SilentCorruption,
                }
            }
        }
    }

    /// Human-readable name.
    pub fn label(&self) -> String {
        match self {
            EccScheme::None => "no ECC".to_string(),
            EccScheme::Secded => "SECDED(72,64)".to_string(),
            EccScheme::Hamming74 => "Hamming(7,4)".to_string(),
            EccScheme::Chipkill { symbol_bits } => format!("Chipkill x{symbol_bits}"),
        }
    }
}

/// The per-word bitflip-count histogram of Fig. 25/26 plus ECC outcomes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WordAnalysis {
    /// Words with one or two bitflips.
    pub words_1_2: usize,
    /// Words with three to eight bitflips.
    pub words_3_8: usize,
    /// Words with more than eight bitflips.
    pub words_gt_8: usize,
    /// The largest number of bitflips observed in a single word.
    pub max_flips_in_word: usize,
    /// Total erroneous words.
    pub total_words: usize,
    /// Total bitflips.
    pub total_flips: usize,
}

impl WordAnalysis {
    /// Builds the analysis from per-word bitflip counts (zeros are ignored).
    pub fn from_word_counts(counts: &[usize]) -> Self {
        let mut a = WordAnalysis::default();
        for &c in counts.iter().filter(|&&c| c > 0) {
            a.total_words += 1;
            a.total_flips += c;
            a.max_flips_in_word = a.max_flips_in_word.max(c);
            match c {
                1 | 2 => a.words_1_2 += 1,
                3..=8 => a.words_3_8 += 1,
                _ => a.words_gt_8 += 1,
            }
        }
        a
    }

    /// Fraction of erroneous words that a scheme fails to correct.
    pub fn uncorrectable_fraction(&self, scheme: EccScheme, counts: &[usize]) -> f64 {
        let erroneous: Vec<usize> = counts.iter().copied().filter(|&c| c > 0).collect();
        if erroneous.is_empty() {
            return 0.0;
        }
        let bad = erroneous
            .iter()
            .filter(|&&c| {
                matches!(
                    scheme.classify(c),
                    EccOutcome::DetectedUncorrectable | EccOutcome::SilentCorruption
                )
            })
            .count();
        bad as f64 / erroneous.len() as f64
    }

    /// Fraction of erroneous words with at least three bitflips — the words
    /// that would force page retirement to give up capacity (§7.1).
    pub fn multi_bit_fraction(&self) -> f64 {
        if self.total_words == 0 {
            return 0.0;
        }
        (self.words_3_8 + self.words_gt_8) as f64 / self.total_words as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secded_corrects_one_detects_two() {
        assert_eq!(EccScheme::Secded.classify(0), EccOutcome::Clean);
        assert_eq!(EccScheme::Secded.classify(1), EccOutcome::Corrected);
        assert_eq!(
            EccScheme::Secded.classify(2),
            EccOutcome::DetectedUncorrectable
        );
        assert_eq!(EccScheme::Secded.classify(3), EccOutcome::SilentCorruption);
        assert_eq!(EccScheme::None.classify(1), EccOutcome::SilentCorruption);
    }

    #[test]
    fn chipkill_matches_paper_footnote() {
        // 25 bitflips in a 64-bit word: not even Chipkill survives.
        for bits in [4u8, 8, 16] {
            let outcome = EccScheme::Chipkill { symbol_bits: bits }.classify(25);
            assert_eq!(outcome, EccOutcome::SilentCorruption, "x{bits}");
        }
        assert_eq!(
            EccScheme::Chipkill { symbol_bits: 8 }.classify(1),
            EccOutcome::Corrected
        );
        assert_eq!(
            EccScheme::Chipkill { symbol_bits: 8 }.classify(2),
            EccOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn hamming74_still_fails_multi_bit_words() {
        assert_eq!(EccScheme::Hamming74.classify(1), EccOutcome::Corrected);
        assert_ne!(EccScheme::Hamming74.classify(25), EccOutcome::Corrected);
    }

    #[test]
    fn word_analysis_histogram() {
        let counts = vec![0, 1, 2, 3, 8, 9, 25, 0, 1];
        let a = WordAnalysis::from_word_counts(&counts);
        assert_eq!(a.total_words, 7);
        assert_eq!(a.words_1_2, 3);
        assert_eq!(a.words_3_8, 2);
        assert_eq!(a.words_gt_8, 2);
        assert_eq!(a.max_flips_in_word, 25);
        assert_eq!(a.total_flips, 1 + 2 + 3 + 8 + 9 + 25 + 1);
        assert!((a.multi_bit_fraction() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrectable_fractions_order_by_scheme_strength() {
        let counts = vec![1, 1, 2, 3, 5, 9];
        let a = WordAnalysis::from_word_counts(&counts);
        let none = a.uncorrectable_fraction(EccScheme::None, &counts);
        let secded = a.uncorrectable_fraction(EccScheme::Secded, &counts);
        let chipkill = a.uncorrectable_fraction(EccScheme::Chipkill { symbol_bits: 8 }, &counts);
        assert_eq!(none, 1.0);
        assert!(secded <= none);
        assert!(chipkill <= secded + 1e-12);
        assert!(secded > 0.0, "SECDED cannot absorb multi-bit words");
        let empty = WordAnalysis::from_word_counts(&[]);
        assert_eq!(empty.uncorrectable_fraction(EccScheme::Secded, &[]), 0.0);
        assert_eq!(empty.multi_bit_fraction(), 0.0);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(EccScheme::Secded.label(), "SECDED(72,64)");
        assert!(EccScheme::Chipkill { symbol_bits: 4 }
            .label()
            .contains("x4"));
        assert_eq!(EccScheme::None.label(), "no ECC");
        assert_eq!(EccScheme::Hamming74.label(), "Hamming(7,4)");
    }
}
