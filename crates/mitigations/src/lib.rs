//! # rowpress-mitigations
//!
//! RowHammer mitigation mechanisms (Graphene, PARA), the paper's methodology
//! for adapting them to also mitigate RowPress (§7.4), the ECC analysis of
//! §7.1 and the end-to-end overhead evaluation behind Table 3 / Table 9.
//!
//! # Example
//!
//! ```
//! use rowpress_mitigations::{adapted_trh, MechanismKind, MitigationConfig};
//!
//! // Graphene-RP with a 96 ns maximum row-open time: the RowHammer threshold
//! // shrinks to account for the extra disturbance of the longer row-open time.
//! let config = MitigationConfig { kind: MechanismKind::Graphene, trh_base: 1000, tmro_ns: 96 };
//! assert_eq!(config.adapted_trh(), 724);
//! assert_eq!(adapted_trh(1000, 636), 419);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ecc;
mod evaluation;
mod mechanisms;

pub use ecc::{EccOutcome, EccScheme, WordAnalysis};
pub use evaluation::{evaluate_mixes, evaluate_single_core, summarize_overheads, OverheadRecord};
pub use mechanisms::{
    adaptation_factor_from_characterization, adapted_trh, Graphene, MechanismKind,
    MitigationConfig, Para, TRH_ADAPTATION_TABLE,
};
