//! # rowpress-workloads
//!
//! Synthetic memory-trace generation for the RowPress mitigation evaluation
//! (paper §7 and Appendix D).
//!
//! The paper evaluates its adapted mitigations on SPEC CPU2006/2017, TPC-H and
//! YCSB traces. Those traces are not redistributable, so this crate generates
//! synthetic traces whose two load-bearing properties — memory intensity
//! (last-level-cache misses per kilo-instruction) and row-buffer locality
//! (row-hit probability of consecutive misses) — are set per benchmark from
//! the paper's qualitative descriptions. The mitigation results only depend on
//! those two properties, so the relative ordering of the paper's Table 3 /
//! Table 9 / Fig. 38–41 is preserved.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One memory access of a trace: the number of non-memory instructions the
/// core executes before it, the physical address, and whether it is a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Instructions executed (and retired) before this access issues.
    pub inst_gap: u32,
    /// Physical byte address of the access (cache-block aligned).
    pub addr: u64,
    /// True for a write-back, false for a read.
    pub is_write: bool,
}

/// Memory-behaviour profile of a benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name as used in the paper ("462.libquantum", "ycsb_aserver", ...).
    pub name: String,
    /// Last-level-cache misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Probability that a miss hits the currently open DRAM row under an
    /// open-row policy (row-buffer locality).
    pub row_hit_rate: f64,
    /// Fraction of misses that are write-backs.
    pub write_fraction: f64,
    /// Memory footprint in bytes the trace walks over.
    pub footprint: u64,
}

impl WorkloadProfile {
    /// Row-buffer misses per kilo-instruction implied by the profile.
    pub fn rbmpki(&self) -> f64 {
        self.llc_mpki * (1.0 - self.row_hit_rate)
    }

    /// The paper's memory-intensity classification: "H" when both LLC-MPKI and
    /// RBMPKI are at least 1, otherwise "L" (Appendix D.2).
    pub fn is_memory_intensive(&self) -> bool {
        self.llc_mpki >= 1.0 && self.rbmpki() >= 1.0
    }
}

/// The benchmark catalog: every workload named in the paper's evaluation, with
/// intensity/locality targets consistent with its qualitative descriptions
/// (e.g. 462.libquantum is streaming with very high row-buffer locality,
/// 429.mcf is pointer-chasing with poor locality, h264_encode has an 87 %
/// row-hit rate).
pub fn workload_catalog() -> Vec<WorkloadProfile> {
    fn w(
        name: &str,
        llc_mpki: f64,
        row_hit_rate: f64,
        write_fraction: f64,
        footprint_mb: u64,
    ) -> WorkloadProfile {
        WorkloadProfile {
            name: name.to_string(),
            llc_mpki,
            row_hit_rate,
            write_fraction,
            footprint: footprint_mb * 1024 * 1024,
        }
    }
    vec![
        // SPEC CPU2006
        w("429.mcf", 68.6, 0.15, 0.25, 1700),
        w("433.milc", 25.0, 0.55, 0.30, 700),
        w("434.zeusmp", 4.8, 0.50, 0.35, 500),
        w("436.cactusADM", 5.1, 0.60, 0.30, 650),
        w("437.leslie3d", 20.9, 0.55, 0.30, 130),
        w("450.soplex", 27.0, 0.40, 0.25, 440),
        w("459.GemsFDTD", 9.9, 0.55, 0.30, 840),
        w("462.libquantum", 25.4, 0.96, 0.20, 64),
        w("470.lbm", 20.1, 0.60, 0.40, 410),
        w("471.omnetpp", 20.2, 0.20, 0.25, 170),
        w("473.astar", 9.1, 0.25, 0.25, 330),
        w("482.sphinx3", 12.1, 0.50, 0.15, 190),
        w("483.xalancbmk", 22.9, 0.18, 0.20, 480),
        // SPEC CPU2017
        w("505.mcf", 15.7, 0.20, 0.25, 3400),
        w("507.cactuBSSN", 4.0, 0.60, 0.30, 780),
        w("510.parest", 4.3, 0.92, 0.20, 410),
        w("519.lbm", 19.4, 0.60, 0.40, 410),
        w("520.omnetpp", 16.4, 0.22, 0.25, 250),
        w("538.imagick", 0.5, 0.70, 0.30, 280),
        w("544.nab", 0.6, 0.55, 0.25, 150),
        w("549.fotonik3d", 14.2, 0.65, 0.30, 850),
        // Media and data-analytics kernels
        w("h264_encode", 2.4, 0.87, 0.30, 110),
        w("h264_decode", 1.2, 0.80, 0.30, 70),
        w("jp2_encode", 3.1, 0.75, 0.35, 90),
        w("jp2_decode", 2.5, 0.72, 0.35, 90),
        w("bfs_cm2003", 12.0, 0.30, 0.15, 540),
        w("bfs_dblp", 10.5, 0.28, 0.15, 260),
        w("bfs_ny", 9.8, 0.30, 0.15, 160),
        w("grep_map0", 1.9, 0.60, 0.20, 220),
        w("wc_8443", 2.2, 0.58, 0.25, 220),
        w("wc_map0", 1.8, 0.60, 0.25, 220),
        // TPC-H
        w("tpch17", 5.9, 0.45, 0.20, 900),
        w("tpch2", 4.2, 0.48, 0.20, 700),
        // YCSB
        w("ycsb_aserver", 6.5, 0.35, 0.40, 800),
        w("ycsb_bserver", 5.8, 0.35, 0.15, 800),
        w("ycsb_cserver", 5.2, 0.36, 0.05, 800),
        w("ycsb_dserver", 4.9, 0.40, 0.25, 800),
        w("ycsb_eserver", 7.1, 0.30, 0.20, 800),
    ]
}

/// Looks up a workload profile by name.
pub fn find_workload(name: &str) -> Option<WorkloadProfile> {
    workload_catalog().into_iter().find(|w| w.name == name)
}

/// Generates a deterministic synthetic trace realizing a workload profile.
///
/// The generator walks the footprint with a mixture of row-local bursts
/// (producing row hits under an open-row policy) and random row jumps, with
/// instruction gaps sized so the trace's LLC-MPKI matches the profile.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SmallRng,
    current_row: u64,
    next_block_in_row: u64,
    row_bytes: u64,
    block_bytes: u64,
}

impl TraceGenerator {
    /// Creates a generator for a profile with a given seed.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5E_ED0F_1234_u64);
        let row_bytes = 8192u64;
        let rows = (profile.footprint / row_bytes).max(2);
        let current_row = rng.gen_range(0..rows);
        TraceGenerator {
            profile,
            rng,
            current_row,
            next_block_in_row: 0,
            row_bytes,
            block_bytes: 64,
        }
    }

    /// The profile this generator realizes.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generates the next access.
    pub fn next_record(&mut self) -> TraceRecord {
        // Instruction gap: on average 1000 / LLC-MPKI instructions per miss.
        let mean_gap = (1000.0 / self.profile.llc_mpki.max(0.01)).max(1.0);
        // Exponentially distributed gap keeps burstiness realistic.
        let u: f64 = self.rng.gen_range(1e-9..1.0f64);
        let inst_gap = (-u.ln() * mean_gap).min(1e7) as u32;

        let rows = (self.profile.footprint / self.row_bytes).max(2);
        let blocks_per_row = self.row_bytes / self.block_bytes;
        let row_hit: bool = self.rng.gen_bool(self.profile.row_hit_rate.clamp(0.0, 1.0));
        if !row_hit {
            self.current_row = self.rng.gen_range(0..rows);
            self.next_block_in_row = self.rng.gen_range(0..blocks_per_row);
        }
        let block = self.next_block_in_row % blocks_per_row;
        self.next_block_in_row = (self.next_block_in_row + 1) % blocks_per_row;
        let addr = self.current_row * self.row_bytes + block * self.block_bytes;
        let is_write = self
            .rng
            .gen_bool(self.profile.write_fraction.clamp(0.0, 1.0));
        TraceRecord {
            inst_gap,
            addr,
            is_write,
        }
    }

    /// Generates a trace of `n` accesses.
    pub fn generate(&mut self, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }
}

/// A multi-programmed mix of workloads, one per core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Mix label ("HHHH-0", "HHLL-3", ...).
    pub label: String,
    /// Workload profiles, one per core.
    pub workloads: Vec<WorkloadProfile>,
}

/// Builds the heterogeneous four-core mixes of Appendix D.2: for each group
/// label (e.g. "HHLL"), `mixes_per_group` mixes are drawn from the
/// high-/low-intensity halves of the catalog.
pub fn build_mixes(groups: &[&str], mixes_per_group: usize, seed: u64) -> Vec<WorkloadMix> {
    let catalog = workload_catalog();
    let high: Vec<WorkloadProfile> = catalog
        .iter()
        .filter(|w| w.is_memory_intensive())
        .cloned()
        .collect();
    let low: Vec<WorkloadProfile> = catalog
        .iter()
        .filter(|w| !w.is_memory_intensive())
        .cloned()
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut mixes = Vec::new();
    for &group in groups {
        for i in 0..mixes_per_group {
            let workloads: Vec<WorkloadProfile> = group
                .chars()
                .map(|c| {
                    let pool = if c == 'H' { &high } else { &low };
                    pool[rng.gen_range(0..pool.len())].clone()
                })
                .collect();
            mixes.push(WorkloadMix {
                label: format!("{group}-{i}"),
                workloads,
            });
        }
    }
    mixes
}

/// Builds a homogeneous four-core mix (four copies of one workload).
pub fn homogeneous_mix(profile: &WorkloadProfile) -> WorkloadMix {
    WorkloadMix {
        label: format!("4x{}", profile.name),
        workloads: vec![profile.clone(); 4],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_contains_paper_workloads() {
        let names: Vec<String> = workload_catalog().into_iter().map(|w| w.name).collect();
        for expected in [
            "429.mcf",
            "462.libquantum",
            "510.parest",
            "483.xalancbmk",
            "h264_encode",
            "ycsb_eserver",
            "tpch17",
        ] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert!(names.len() >= 35);
        // Names are unique.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn intensity_classification_matches_paper_descriptions() {
        assert!(find_workload("429.mcf").unwrap().is_memory_intensive());
        assert!(find_workload("462.libquantum")
            .unwrap()
            .is_memory_intensive());
        assert!(!find_workload("538.imagick").unwrap().is_memory_intensive());
        // libquantum has the highest row-buffer locality of the SPEC2006 set.
        let libq = find_workload("462.libquantum").unwrap();
        let mcf = find_workload("429.mcf").unwrap();
        assert!(libq.row_hit_rate > 0.9);
        assert!(mcf.row_hit_rate < 0.3);
        assert!(
            libq.rbmpki() < 2.0,
            "libquantum RBMPKI is small: {}",
            libq.rbmpki()
        );
        assert!(mcf.rbmpki() > 10.0);
    }

    #[test]
    fn trace_generator_is_deterministic() {
        let p = find_workload("470.lbm").unwrap();
        let a = TraceGenerator::new(p.clone(), 7).generate(500);
        let b = TraceGenerator::new(p, 7).generate(500);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_respects_footprint_and_alignment() {
        let p = find_workload("437.leslie3d").unwrap();
        let trace = TraceGenerator::new(p.clone(), 1).generate(2000);
        for r in &trace {
            assert!(r.addr < p.footprint);
            assert_eq!(r.addr % 64, 0, "accesses are cache-block aligned");
        }
    }

    #[test]
    fn trace_row_locality_tracks_profile() {
        let measure = |name: &str| -> f64 {
            let p = find_workload(name).unwrap();
            let trace = TraceGenerator::new(p, 3).generate(20_000);
            let mut hits = 0;
            let mut total = 0;
            let mut current_row = None;
            for r in &trace {
                let row = r.addr / 8192;
                if current_row == Some(row) {
                    hits += 1;
                }
                total += 1;
                current_row = Some(row);
            }
            hits as f64 / total as f64
        };
        let libq = measure("462.libquantum");
        let mcf = measure("429.mcf");
        assert!(libq > 0.85, "libquantum measured row locality {libq}");
        assert!(mcf < 0.35, "mcf measured row locality {mcf}");
    }

    #[test]
    fn trace_intensity_tracks_mpki() {
        let p = find_workload("429.mcf").unwrap(); // 68.6 MPKI -> mean gap ~14.6 insts
        let trace = TraceGenerator::new(p, 11).generate(20_000);
        let insts: u64 = trace.iter().map(|r| u64::from(r.inst_gap)).sum();
        let mpki = trace.len() as f64 / (insts as f64 / 1000.0);
        assert!((mpki - 68.6).abs() / 68.6 < 0.25, "measured MPKI {mpki}");
    }

    #[test]
    fn mixes_have_requested_shape() {
        let mixes = build_mixes(&["HHHH", "HHLL", "LLLL"], 2, 42);
        assert_eq!(mixes.len(), 6);
        for mix in &mixes {
            assert_eq!(mix.workloads.len(), 4);
        }
        let hhhh = &mixes[0];
        assert!(hhhh.workloads.iter().all(|w| w.is_memory_intensive()));
        let llll = &mixes[5];
        assert!(llll.workloads.iter().all(|w| !w.is_memory_intensive()));
        // Deterministic for a fixed seed.
        let again = build_mixes(&["HHHH", "HHLL", "LLLL"], 2, 42);
        assert_eq!(mixes, again);
    }

    #[test]
    fn homogeneous_mix_replicates_workload() {
        let p = find_workload("h264_encode").unwrap();
        let mix = homogeneous_mix(&p);
        assert_eq!(mix.workloads.len(), 4);
        assert!(mix.workloads.iter().all(|w| w.name == "h264_encode"));
        assert!(mix.label.contains("h264_encode"));
    }
}
