//! Bisection searches for ACmin and tAggONmin (paper §4.1 and §4.2).
//!
//! * [`find_ac_min`] — the minimum number of total aggressor-row activations
//!   that induces at least one bitflip for a given tAggON, using the paper's
//!   modified bisection with a 1 % termination accuracy, repeated several
//!   times with the minimum reported.
//! * [`find_t_aggon_min`] — the minimum aggressor-row-on time that induces at
//!   least one bitflip for a given activation count (Fig. 9 / Fig. 15).

use crate::config::ExperimentConfig;
use crate::patterns::{run_pattern_any_flip, run_pattern_into, PatternInstance, PatternSite};
use rowpress_dram::{Bitflip, DataPattern, DramModule, DramResult, ProfileStore, Time};
use serde::{Deserialize, Serialize};

/// Reusable buffers for the trial hot path.
///
/// The bisection searches probe a site dozens of times per measurement; with
/// the device model's flat row storage the probes themselves are
/// allocation-free, and this scratch extends that to the flip collection: one
/// accumulator, owned by the caller (the engine keeps one per worker), is
/// reused across every probe and trial, so a full search performs no heap
/// allocation after warm-up beyond the outcome buffers that escape into
/// records.
///
/// The scratch also carries the [`ProfileStore`] the kernel path attaches to
/// each trial's freshly built module, so the several tAggON points a campaign
/// probes per (module, row) site amortize one cell-profile build instead of
/// repeating it per trial. Like the flip accumulator, the store never
/// influences outcomes — interned tables are bit-equal to fresh builds.
#[derive(Debug)]
pub struct TrialScratch {
    /// Flip accumulator reused by the collection passes.
    pub(crate) flips: Vec<Bitflip>,
    /// Cross-trial profile store shared by every trial run with this scratch.
    profile_store: ProfileStore,
}

impl TrialScratch {
    /// Creates an empty scratch (buffers grow on first use and stick) bound
    /// to the process-wide [`ProfileStore::global`] store.
    pub fn new() -> Self {
        Self::with_profile_store(ProfileStore::global())
    }

    /// A scratch bound to a specific [`ProfileStore`]. Perf harnesses use a
    /// private store so cold-build and hit/miss accounting is self-contained;
    /// everything else shares the global store via [`TrialScratch::new`].
    pub fn with_profile_store(store: ProfileStore) -> Self {
        TrialScratch {
            flips: Vec::new(),
            profile_store: store,
        }
    }

    /// The profile store trials executed with this scratch share.
    pub fn profile_store(&self) -> &ProfileStore {
        &self.profile_store
    }
}

impl Default for TrialScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of an ACmin search at one (site, tAggON) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcMinOutcome {
    /// The minimum total activation count that induced at least one bitflip.
    pub ac_min: u64,
    /// The bitflips observed at `ac_min` (used by the overlap and direction
    /// analyses of §4.3).
    pub flips: Vec<Bitflip>,
    /// The largest activation count that fits in the execution budget.
    pub ac_max: u64,
}

/// Searches for ACmin with the paper's bisection algorithm.
///
/// Returns `Ok(None)` when even the largest activation count that fits within
/// the execution budget (60 ms) induces no bitflip — the case the paper
/// reports as "no bitflips could be induced".
///
/// # Errors
///
/// Returns an error if a row of the site is out of range for the module.
pub fn find_ac_min(
    module: &mut DramModule,
    site: &PatternSite,
    t_aggon: Time,
    data_pattern: DataPattern,
    cfg: &ExperimentConfig,
) -> DramResult<Option<AcMinOutcome>> {
    find_ac_min_with(
        module,
        site,
        t_aggon,
        data_pattern,
        cfg,
        &mut TrialScratch::new(),
    )
}

/// [`find_ac_min`] with caller-provided scratch buffers: the engine's workers
/// thread one [`TrialScratch`] through every trial they execute, so repeated
/// searches reuse the same flip accumulator.
///
/// # Errors
///
/// Returns an error if a row of the site is out of range for the module.
pub fn find_ac_min_with(
    module: &mut DramModule,
    site: &PatternSite,
    t_aggon: Time,
    data_pattern: DataPattern,
    cfg: &ExperimentConfig,
    scratch: &mut TrialScratch,
) -> DramResult<Option<AcMinOutcome>> {
    let timing = *module.timing();
    let t_aggon = t_aggon.max(timing.t_ras);
    let ac_max = timing.max_activations_within(t_aggon, cfg.budget);
    if ac_max == 0 {
        return Ok(None);
    }

    let mut best: Option<u64> = None;
    for repeat in 0..cfg.repeats.max(1) {
        // Different repetitions only differ when the module has flip jitter
        // enabled; the repeat index seeds it through the caller if desired.
        // Each probe re-initializes the site's rows, which clears accumulated
        // exposure, so no other per-repeat reset is needed.
        let _ = repeat;
        let probe = |module: &mut DramModule, acts: u64| -> DramResult<bool> {
            let instance = PatternInstance {
                t_aggon,
                t_aggoff: timing.t_rp,
                total_acts: acts,
            };
            run_pattern_any_flip(module, site, instance, data_pattern)
        };
        if !probe(module, ac_max)? {
            continue;
        }
        // Bisection between 0 (no flips) and ac_max (flips), terminating when
        // the bracket is within the configured accuracy of the upper bound.
        let mut lo = 0u64;
        let mut hi = ac_max;
        loop {
            let tolerance = ((hi as f64) * cfg.accuracy_pct / 100.0).ceil().max(1.0) as u64;
            if hi - lo <= tolerance {
                break;
            }
            let mid = lo + (hi - lo) / 2;
            if probe(module, mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        best = Some(best.map_or(hi, |b: u64| b.min(hi)));
    }

    let Some(ac_min) = best else { return Ok(None) };
    // Collect the full flip set at ACmin for downstream analyses. The
    // accumulation reuses the scratch buffer; only the outcome's own vector
    // (which escapes into the record stream) is allocated.
    let instance = PatternInstance {
        t_aggon,
        t_aggoff: timing.t_rp,
        total_acts: ac_min,
    };
    run_pattern_into(module, site, instance, data_pattern, &mut scratch.flips)?;
    Ok(Some(AcMinOutcome {
        ac_min,
        flips: scratch.flips.clone(),
        ac_max,
    }))
}

/// Measures the bitflips induced by the *maximum* activation count that fits
/// in the budget (the paper's "at ACmax" experiments, e.g. Fig. 11 and the BER
/// tables).
///
/// # Errors
///
/// Returns an error if a row of the site is out of range for the module.
pub fn flips_at_ac_max(
    module: &mut DramModule,
    site: &PatternSite,
    t_aggon: Time,
    data_pattern: DataPattern,
    cfg: &ExperimentConfig,
) -> DramResult<(u64, Vec<Bitflip>)> {
    flips_at_ac_max_with(
        module,
        site,
        t_aggon,
        data_pattern,
        cfg,
        &mut TrialScratch::new(),
    )
}

/// [`flips_at_ac_max`] with caller-provided scratch buffers (see
/// [`find_ac_min_with`]).
///
/// # Errors
///
/// Returns an error if a row of the site is out of range for the module.
pub fn flips_at_ac_max_with(
    module: &mut DramModule,
    site: &PatternSite,
    t_aggon: Time,
    data_pattern: DataPattern,
    cfg: &ExperimentConfig,
    scratch: &mut TrialScratch,
) -> DramResult<(u64, Vec<Bitflip>)> {
    let timing = *module.timing();
    let t_aggon = t_aggon.max(timing.t_ras);
    let ac_max = timing.max_activations_within(t_aggon, cfg.budget);
    let instance = PatternInstance {
        t_aggon,
        t_aggoff: timing.t_rp,
        total_acts: ac_max,
    };
    run_pattern_into(module, site, instance, data_pattern, &mut scratch.flips)?;
    Ok((ac_max, scratch.flips.clone()))
}

/// Searches for the minimum tAggON that induces at least one bitflip with a
/// fixed activation count `ac` (paper Fig. 9 and Fig. 15). Returns `None` when
/// even the largest tAggON that keeps `ac` activations within the budget does
/// not flip anything.
///
/// # Errors
///
/// Returns an error if a row of the site is out of range for the module.
pub fn find_t_aggon_min(
    module: &mut DramModule,
    site: &PatternSite,
    ac: u64,
    data_pattern: DataPattern,
    cfg: &ExperimentConfig,
) -> DramResult<Option<Time>> {
    if ac == 0 {
        return Ok(None);
    }
    let timing = *module.timing();
    // The largest on time such that `ac` full cycles fit in the budget.
    let per_act_budget = cfg.budget / ac;
    if per_act_budget <= timing.t_rc() {
        return Ok(None);
    }
    let t_max = per_act_budget - timing.t_rp;
    let t_min = timing.t_ras;

    let probe = |module: &mut DramModule, t_on: Time| -> DramResult<bool> {
        let instance = PatternInstance {
            t_aggon: t_on,
            t_aggoff: timing.t_rp,
            total_acts: ac,
        };
        run_pattern_any_flip(module, site, instance, data_pattern)
    };

    if !probe(module, t_max)? {
        return Ok(None);
    }
    if probe(module, t_min)? {
        return Ok(Some(t_min));
    }

    // Bisection on time with a 1 % relative tolerance.
    let mut lo = t_min;
    let mut hi = t_max;
    loop {
        let tolerance_ps = ((hi.as_ps() as f64) * cfg.accuracy_pct / 100.0)
            .ceil()
            .max(1.0) as u64;
        if hi.as_ps() - lo.as_ps() <= tolerance_ps {
            break;
        }
        let mid = Time::from_ps(lo.as_ps() + (hi.as_ps() - lo.as_ps()) / 2);
        if probe(module, mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::PatternKind;
    use rowpress_dram::{module_inventory, BankId, Geometry, RowId};

    fn setup(id: &str) -> (DramModule, PatternSite) {
        let spec = module_inventory().into_iter().find(|m| m.id == id).unwrap();
        let module = DramModule::new(&spec, Geometry::tiny());
        let site = PatternSite::for_kind(PatternKind::SingleSided, BankId(1), RowId(20), 64);
        (module, site)
    }

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test_scale()
    }

    #[test]
    fn acmin_at_tras_matches_die_calibration_scale() {
        let (mut module, site) = setup("S3"); // 8Gb D-die: ACmin mean ~41.5K
        let out = find_ac_min(
            &mut module,
            &site,
            Time::from_ns(36.0),
            DataPattern::Checkerboard,
            &cfg(),
        )
        .unwrap()
        .expect("the D-die must be hammerable within 60 ms");
        assert!(
            out.ac_min > 5_000 && out.ac_min < 300_000,
            "ac_min = {}",
            out.ac_min
        );
        assert!(!out.flips.is_empty());
        assert!(out.ac_min <= out.ac_max);
    }

    #[test]
    fn acmin_decreases_as_taggon_increases() {
        let (mut module, site) = setup("S0");
        let sweep = [
            Time::from_ns(36.0),
            Time::from_us(7.8),
            Time::from_us(70.2),
            Time::from_ms(30.0),
        ];
        let mut previous = u64::MAX;
        for t in sweep {
            let out = find_ac_min(&mut module, &site, t, DataPattern::Checkerboard, &cfg())
                .unwrap()
                .expect("S 8Gb B-die flips at every representative tAggON");
            assert!(
                out.ac_min <= previous,
                "ACmin must be non-increasing in tAggON (got {} after {previous} at {t})",
                out.ac_min
            );
            previous = out.ac_min;
        }
        // The extreme case: a 30 ms press needs only a handful of activations
        // (the paper reports ACmin = 1 for many rows).
        assert!(
            previous <= 3,
            "ACmin at 30 ms should be tiny, got {previous}"
        );
    }

    #[test]
    fn press_invulnerable_die_reports_none_at_large_taggon() {
        let (mut module, site) = setup("M0"); // Micron 8Gb B-die: no RowPress
        let out = find_ac_min(
            &mut module,
            &site,
            Time::from_ms(30.0),
            DataPattern::Checkerboard,
            &cfg(),
        )
        .unwrap();
        assert!(out.is_none(), "M0 must not flip under RowPress");
        // It is still vulnerable to plain RowHammer within the budget? Its
        // mean ACmin (386K) is below the ~1.17M budget, so a search succeeds.
        let out = find_ac_min(
            &mut module,
            &site,
            Time::from_ns(36.0),
            DataPattern::Checkerboard,
            &cfg(),
        )
        .unwrap();
        assert!(out.is_some());
    }

    #[test]
    fn acmin_accuracy_is_within_one_percent() {
        let (mut module, site) = setup("S3");
        let c = cfg();
        let out = find_ac_min(
            &mut module,
            &site,
            Time::from_us(7.8),
            DataPattern::Checkerboard,
            &c,
        )
        .unwrap()
        .unwrap();
        // One activation fewer than (1 - accuracy) * ACmin must not flip.
        let below = ((out.ac_min as f64) * (1.0 - 2.0 * c.accuracy_pct / 100.0)).floor() as u64;
        let timing = *module.timing();
        let inst = PatternInstance {
            t_aggon: Time::from_us(7.8),
            t_aggoff: timing.t_rp,
            total_acts: below,
        };
        assert!(
            !run_pattern_any_flip(&mut module, &site, inst, DataPattern::Checkerboard).unwrap()
        );
    }

    #[test]
    fn taggonmin_decreases_as_ac_increases() {
        let (mut module, site) = setup("S0");
        let t1 =
            find_t_aggon_min(&mut module, &site, 1, DataPattern::Checkerboard, &cfg()).unwrap();
        let t100 =
            find_t_aggon_min(&mut module, &site, 100, DataPattern::Checkerboard, &cfg()).unwrap();
        let (t1, t100) = (
            t1.expect("AC=1 flips within 60 ms on S0"),
            t100.expect("AC=100 flips"),
        );
        assert!(
            t100 < t1,
            "tAggONmin must shrink as AC grows ({t100} !< {t1})"
        );
        // The product AC x tAggONmin is roughly constant (slope -1 in log-log,
        // Obsv. 5): allow a generous factor of 3.
        let p1 = t1.as_us();
        let p100 = t100.as_us() * 100.0;
        assert!(
            p100 / p1 < 3.0 && p1 / p100 < 3.0,
            "products {p1} vs {p100}"
        );
    }

    #[test]
    fn taggonmin_is_none_for_huge_ac_budgets() {
        let (mut module, site) = setup("S0");
        // With 10 million activations a full cycle does not even fit the budget.
        let out = find_t_aggon_min(
            &mut module,
            &site,
            10_000_000,
            DataPattern::Checkerboard,
            &cfg(),
        )
        .unwrap();
        assert!(out.is_none());
        let out =
            find_t_aggon_min(&mut module, &site, 0, DataPattern::Checkerboard, &cfg()).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn flips_at_ac_max_returns_consistent_ac() {
        let (mut module, site) = setup("S3");
        let (ac_max, flips) = flips_at_ac_max(
            &mut module,
            &site,
            Time::from_ns(36.0),
            DataPattern::Checkerboard,
            &cfg(),
        )
        .unwrap();
        let timing = *module.timing();
        assert_eq!(
            ac_max,
            timing.max_activations_within(Time::from_ns(36.0), cfg().budget)
        );
        assert!(!flips.is_empty(), "the D-die flips at ACmax");
    }
}
