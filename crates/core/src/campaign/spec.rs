//! Campaign specifications: the declarative input of the
//! `rowpress-campaign` orchestrator.
//!
//! A [`CampaignSpec`] names everything a multi-process campaign needs — a
//! configuration preset with overrides, the grid axes (modules,
//! temperatures, pattern families, data patterns), the measurement list and
//! the [`Orchestration`] policy (shard count, straggler timeout, respawn
//! budget) — and resolves to exactly one [`Plan`], so every shard process
//! of a campaign derives the same trial list from the same spec file.
//!
//! Specs parse from JSON or from a TOML subset (tables, array-of-tables
//! `[[measurement]]` entries, strings, numbers, booleans and flat arrays —
//! everything the spec grammar needs), and re-emit as *canonical JSON*:
//! parsing the canonical form reproduces it byte-for-byte, which is the
//! round-trip property `ci.sh` smoke-checks through the CLI.
//!
//! # Example
//!
//! ```
//! use rowpress_core::campaign::CampaignSpec;
//!
//! let spec = CampaignSpec::parse(
//!     r#"
//!     name = "smoke"
//!     [config]
//!     preset = "test"
//!     [grid]
//!     modules = ["S3"]
//!     [[measurement]]
//!     kind = "ac_min"
//!     t_aggon_ns = [36.0, 30000000.0]
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(spec.plan().unwrap().len(), 2 * spec.config().tested_sites().len());
//! // Canonical JSON is a fixed point: parse(emit(spec)) emits the same text.
//! let canonical = spec.canonical_json();
//! assert_eq!(CampaignSpec::parse(&canonical).unwrap().canonical_json(), canonical);
//! ```

use crate::config::ExperimentConfig;
use crate::engine::{lookup_module, Measurement, Plan};
use crate::patterns::PatternKind;
use rowpress_dram::{DataPattern, ModuleSpec, Time};
use serde::Value;
use std::fmt;
use std::path::Path;

/// A campaign spec failed to parse, validate, or resolve to a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl SpecError {
    fn new(message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "campaign spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

/// The named [`ExperimentConfig`] a spec starts from (before field
/// overrides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConfigPreset {
    /// [`ExperimentConfig::quick`]: the reduced-footprint bench scale.
    #[default]
    Quick,
    /// [`ExperimentConfig::test_scale`]: the tiny unit-test scale.
    Test,
    /// [`ExperimentConfig::paper_scale`]: the paper's full 3072-row scale.
    Paper,
}

impl ConfigPreset {
    fn parse(name: &str) -> Result<Self, SpecError> {
        match name {
            "quick" => Ok(ConfigPreset::Quick),
            "test" => Ok(ConfigPreset::Test),
            "paper" => Ok(ConfigPreset::Paper),
            other => Err(SpecError::new(format!(
                "unknown config preset {other:?} (expected \"quick\", \"test\" or \"paper\")"
            ))),
        }
    }

    fn name(self) -> &'static str {
        match self {
            ConfigPreset::Quick => "quick",
            ConfigPreset::Test => "test",
            ConfigPreset::Paper => "paper",
        }
    }

    fn config(self) -> ExperimentConfig {
        match self {
            ConfigPreset::Quick => ExperimentConfig::quick(),
            ConfigPreset::Test => ExperimentConfig::test_scale(),
            ConfigPreset::Paper => ExperimentConfig::paper_scale(),
        }
    }
}

/// How the orchestrator fans a campaign out across shard processes and when
/// it declares one a straggler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Orchestration {
    /// Number of shard processes ([`Plan::shard`] count).
    pub shards: usize,
    /// A shard that prints no progress line for this long is killed and
    /// respawned (it resumes from its persistent cache). The clock starts at
    /// the transport-acknowledged connect (the shard's first frame), not at
    /// spawn — see `connect_timeout_ms` for the pre-connect window.
    pub stall_timeout_ms: u64,
    /// How long a freshly spawned shard may take to deliver its first frame
    /// before it is declared unreachable and respawned. Separate from the
    /// stall timeout because a remote transport adds a connect window
    /// (process launch, socket dial, retries) before any heartbeat can
    /// arrive.
    pub connect_timeout_ms: u64,
    /// How many times one shard may be respawned (after a crash or a stall)
    /// before the campaign is aborted.
    pub max_respawns: u32,
}

impl Default for Orchestration {
    fn default() -> Self {
        Orchestration {
            shards: 2,
            stall_timeout_ms: 30_000,
            connect_timeout_ms: 10_000,
            max_respawns: 3,
        }
    }
}

/// A parsed, validated campaign specification. See the [module
/// docs](self) for the file format and [`CampaignSpec::parse`] for how to
/// obtain one.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (used in logs and output-file headers).
    pub name: String,
    /// The configuration preset the campaign runs under.
    pub preset: ConfigPreset,
    /// Override of [`ExperimentConfig::rows_per_module`], if any.
    pub rows_per_module: Option<u32>,
    /// Override of [`ExperimentConfig::repeats`], if any.
    pub repeats: Option<u32>,
    /// Module ids of the grid's module axis (resolved against the inventory
    /// by [`CampaignSpec::plan`]).
    pub modules: Vec<String>,
    /// Temperatures axis (defaults to the config's temperature).
    pub temperatures: Vec<f64>,
    /// Pattern-family axis (defaults to single-sided).
    pub kinds: Vec<PatternKind>,
    /// Data-pattern axis (defaults to the config's pattern).
    pub data_patterns: Vec<DataPattern>,
    /// The measurement axis, already expanded (one entry per grid point).
    pub measurements: Vec<Measurement>,
    /// Fan-out and straggler policy.
    pub orchestration: Orchestration,
    /// Byte budget for each shard's persistent-cache file: when set, a
    /// finishing shard [compacts](crate::engine::PersistentCache::compact)
    /// its cache and evicts the oldest records past the budget.
    pub cache_max_bytes: Option<u64>,
    /// When set, shards open their persistent caches with the
    /// [salvage](crate::engine::OpenPolicy::Salvage) policy: corrupt
    /// interior lines are quarantined to a `.quarantine` sidecar and the
    /// run continues, instead of refusing to start.
    pub cache_salvage: bool,
}

impl CampaignSpec {
    /// Parses a spec from JSON or the TOML subset, sniffing the format: text
    /// whose first non-whitespace byte is `{` is JSON, anything else TOML.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first syntax error, unknown
    /// key/value, or failed validation.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        if text.trim_start().starts_with('{') {
            Self::from_json_str(text)
        } else {
            Self::from_toml_str(text)
        }
    }

    /// Reads and parses a spec file ([`CampaignSpec::parse`] on its
    /// contents).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the file cannot be read or does not
    /// parse.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| SpecError::new(format!("{}: {e}", path.display())))?;
        Self::parse(&text).map_err(|e| SpecError::new(format!("{}: {}", path.display(), e.message)))
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on malformed JSON or an invalid spec.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| SpecError::new(format!("invalid JSON: {e}")))?;
        Self::from_value(&value)
    }

    /// Parses a spec from the TOML subset.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] on a syntax error or an invalid spec.
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        Self::from_value(&toml::parse(text)?)
    }

    /// Builds a spec from a parsed [`Value`] tree (shared by the JSON and
    /// TOML front ends).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending key on any shape or
    /// vocabulary mismatch.
    pub fn from_value(root: &Value) -> Result<Self, SpecError> {
        let root = as_map(root, "spec root")?;
        known_keys(
            root,
            &[
                "name",
                "config",
                "grid",
                "measurement",
                "orchestration",
                "cache",
            ],
            "spec root",
        )?;

        let name = match find(root, "name") {
            Some(v) => as_str(v, "name")?.to_string(),
            None => "campaign".to_string(),
        };

        let (preset, rows_per_module, repeats) = match find(root, "config") {
            Some(v) => {
                let config = as_map(v, "config")?;
                known_keys(config, &["preset", "rows_per_module", "repeats"], "config")?;
                let preset = match find(config, "preset") {
                    Some(p) => ConfigPreset::parse(as_str(p, "config.preset")?)?,
                    None => ConfigPreset::default(),
                };
                let rows = find(config, "rows_per_module")
                    .map(|v| as_u32(v, "config.rows_per_module"))
                    .transpose()?;
                let repeats = find(config, "repeats")
                    .map(|v| as_u32(v, "config.repeats"))
                    .transpose()?;
                (preset, rows, repeats)
            }
            None => (ConfigPreset::default(), None, None),
        };

        let base = {
            let mut cfg = preset.config();
            if let Some(rows) = rows_per_module {
                cfg.rows_per_module = rows;
            }
            if let Some(repeats) = repeats {
                cfg.repeats = repeats;
            }
            cfg
        };

        let grid = match find(root, "grid") {
            Some(v) => as_map(v, "grid")?,
            None => return Err(SpecError::new("missing [grid] table")),
        };
        known_keys(
            grid,
            &["modules", "temperatures", "patterns", "data_patterns"],
            "grid",
        )?;
        let modules = match find(grid, "modules") {
            Some(v) => as_seq(v, "grid.modules")?
                .iter()
                .map(|m| as_str(m, "grid.modules").map(str::to_string))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let temperatures = match find(grid, "temperatures") {
            Some(v) => as_seq(v, "grid.temperatures")?
                .iter()
                .map(|t| as_f64(t, "grid.temperatures"))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![base.temperature_c],
        };
        let kinds = match find(grid, "patterns") {
            Some(v) => as_seq(v, "grid.patterns")?
                .iter()
                .map(|k| parse_kind(as_str(k, "grid.patterns")?))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![PatternKind::SingleSided],
        };
        let data_patterns = match find(grid, "data_patterns") {
            Some(v) => as_seq(v, "grid.data_patterns")?
                .iter()
                .map(|p| parse_data_pattern(as_str(p, "grid.data_patterns")?))
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![base.data_pattern],
        };

        let measurements = match find(root, "measurement") {
            Some(v) => as_seq(v, "measurement")?
                .iter()
                .map(parse_measurement)
                .collect::<Result<Vec<Vec<_>>, _>>()?
                .into_iter()
                .flatten()
                .collect(),
            None => Vec::new(),
        };

        let orchestration = match find(root, "orchestration") {
            Some(v) => {
                let table = as_map(v, "orchestration")?;
                known_keys(
                    table,
                    &[
                        "shards",
                        "stall_timeout_ms",
                        "connect_timeout_ms",
                        "max_respawns",
                    ],
                    "orchestration",
                )?;
                let defaults = Orchestration::default();
                Orchestration {
                    shards: match find(table, "shards") {
                        Some(s) => as_u32(s, "orchestration.shards")? as usize,
                        None => defaults.shards,
                    },
                    stall_timeout_ms: match find(table, "stall_timeout_ms") {
                        Some(s) => as_u64(s, "orchestration.stall_timeout_ms")?,
                        None => defaults.stall_timeout_ms,
                    },
                    connect_timeout_ms: match find(table, "connect_timeout_ms") {
                        Some(s) => as_u64(s, "orchestration.connect_timeout_ms")?,
                        None => defaults.connect_timeout_ms,
                    },
                    max_respawns: match find(table, "max_respawns") {
                        Some(s) => as_u32(s, "orchestration.max_respawns")?,
                        None => defaults.max_respawns,
                    },
                }
            }
            None => Orchestration::default(),
        };

        let (cache_max_bytes, cache_salvage) = match find(root, "cache") {
            Some(v) => {
                let table = as_map(v, "cache")?;
                known_keys(table, &["max_bytes", "salvage"], "cache")?;
                let max_bytes = find(table, "max_bytes")
                    .map(|v| as_u64(v, "cache.max_bytes"))
                    .transpose()?;
                let salvage = match find(table, "salvage") {
                    Some(s) => as_bool(s, "cache.salvage")?,
                    None => false,
                };
                (max_bytes, salvage)
            }
            None => (None, false),
        };

        let spec = CampaignSpec {
            name,
            preset,
            rows_per_module,
            repeats,
            modules,
            temperatures,
            kinds,
            data_patterns,
            measurements,
            orchestration,
            cache_max_bytes,
            cache_salvage,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the constraints a runnable campaign needs.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.modules.is_empty() {
            return Err(SpecError::new("grid.modules must name at least one module"));
        }
        for id in &self.modules {
            lookup_module(id).map_err(|e| SpecError::new(e.to_string()))?;
        }
        if self.measurements.is_empty() {
            return Err(SpecError::new(
                "at least one [[measurement]] entry is required",
            ));
        }
        if self.orchestration.shards == 0 {
            return Err(SpecError::new("orchestration.shards must be positive"));
        }
        if self.orchestration.stall_timeout_ms == 0 {
            return Err(SpecError::new(
                "orchestration.stall_timeout_ms must be positive",
            ));
        }
        if self.orchestration.connect_timeout_ms == 0 {
            return Err(SpecError::new(
                "orchestration.connect_timeout_ms must be positive",
            ));
        }
        if self.cache_max_bytes == Some(0) {
            return Err(SpecError::new("cache.max_bytes must be positive"));
        }
        for m in &self.measurements {
            if let Measurement::OnOff { on_fraction, .. } = m {
                if !(0.0..=1.0).contains(on_fraction) {
                    return Err(SpecError::new(format!(
                        "on_fraction {on_fraction} outside [0, 1]"
                    )));
                }
            }
        }
        self.config().validate().map_err(SpecError::new)
    }

    /// The [`ExperimentConfig`] the campaign runs under: the preset with the
    /// spec's overrides applied.
    pub fn config(&self) -> ExperimentConfig {
        let mut cfg = self.preset.config();
        if let Some(rows) = self.rows_per_module {
            cfg.rows_per_module = rows;
        }
        if let Some(repeats) = self.repeats {
            cfg.repeats = repeats;
        }
        cfg
    }

    /// Resolves the module ids and expands the grid into the campaign's
    /// [`Plan`]. Every shard process derives the identical plan from the
    /// identical spec, which is what makes strided shard indices meaningful
    /// across processes.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when a module id is not in the tested-chip
    /// inventory.
    pub fn plan(&self) -> Result<Plan, SpecError> {
        let cfg = self.config();
        let modules = self
            .modules
            .iter()
            .map(|id| lookup_module(id).map_err(|e| SpecError::new(e.to_string())))
            .collect::<Result<Vec<ModuleSpec>, _>>()?;
        Ok(Plan::grid(&cfg)
            .modules(&modules)
            .temperatures(&self.temperatures)
            .kinds(&self.kinds)
            .data_patterns(&self.data_patterns)
            .measurements(self.measurements.iter().copied())
            .build())
    }

    /// Emits the spec as canonical JSON: every axis explicit, measurements
    /// fully expanded, keys in a fixed order. Parsing the canonical form
    /// yields a spec that emits the identical text (the round-trip property
    /// `ci.sh` checks).
    pub fn canonical_json(&self) -> String {
        let mut config = vec![("preset".to_string(), Value::Str(self.preset.name().into()))];
        if let Some(rows) = self.rows_per_module {
            config.push(("rows_per_module".to_string(), Value::U64(u64::from(rows))));
        }
        if let Some(repeats) = self.repeats {
            config.push(("repeats".to_string(), Value::U64(u64::from(repeats))));
        }
        let grid = vec![
            (
                "modules".to_string(),
                Value::Seq(self.modules.iter().map(|m| Value::Str(m.clone())).collect()),
            ),
            (
                "temperatures".to_string(),
                Value::Seq(self.temperatures.iter().map(|&t| Value::F64(t)).collect()),
            ),
            (
                "patterns".to_string(),
                Value::Seq(
                    self.kinds
                        .iter()
                        .map(|k| Value::Str(kind_name(*k).into()))
                        .collect(),
                ),
            ),
            (
                "data_patterns".to_string(),
                Value::Seq(
                    self.data_patterns
                        .iter()
                        .map(|p| Value::Str(data_pattern_name(*p).into()))
                        .collect(),
                ),
            ),
        ];
        let measurements = self
            .measurements
            .iter()
            .map(|m| Value::Map(measurement_fields(m)))
            .collect();
        let orchestration = vec![
            (
                "shards".to_string(),
                Value::U64(self.orchestration.shards as u64),
            ),
            (
                "stall_timeout_ms".to_string(),
                Value::U64(self.orchestration.stall_timeout_ms),
            ),
            (
                "connect_timeout_ms".to_string(),
                Value::U64(self.orchestration.connect_timeout_ms),
            ),
            (
                "max_respawns".to_string(),
                Value::U64(u64::from(self.orchestration.max_respawns)),
            ),
        ];
        let mut root = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("config".to_string(), Value::Map(config)),
            ("grid".to_string(), Value::Map(grid)),
            ("measurement".to_string(), Value::Seq(measurements)),
            ("orchestration".to_string(), Value::Map(orchestration)),
        ];
        // Emitted only when set, so specs without a budget keep their
        // pre-existing canonical form.
        if self.cache_max_bytes.is_some() || self.cache_salvage {
            let mut cache = Vec::new();
            if let Some(budget) = self.cache_max_bytes {
                cache.push(("max_bytes".to_string(), Value::U64(budget)));
            }
            if self.cache_salvage {
                cache.push(("salvage".to_string(), Value::Bool(true)));
            }
            root.push(("cache".to_string(), Value::Map(cache)));
        }
        serde_json::to_string(&Value::Map(root))
            .expect("canonical spec serialization is infallible")
    }
}

/// The spec vocabulary for [`PatternKind`].
fn parse_kind(name: &str) -> Result<PatternKind, SpecError> {
    match name {
        "single_sided" => Ok(PatternKind::SingleSided),
        "double_sided" => Ok(PatternKind::DoubleSided),
        other => Err(SpecError::new(format!(
            "unknown pattern family {other:?} (expected \"single_sided\" or \"double_sided\")"
        ))),
    }
}

fn kind_name(kind: PatternKind) -> &'static str {
    match kind {
        PatternKind::SingleSided => "single_sided",
        PatternKind::DoubleSided => "double_sided",
    }
}

/// The spec vocabulary for [`DataPattern`] (the paper's six patterns).
fn parse_data_pattern(name: &str) -> Result<DataPattern, SpecError> {
    match name {
        "checkerboard" => Ok(DataPattern::Checkerboard),
        "checkerboard_i" => Ok(DataPattern::CheckerboardI),
        "row_stripe" => Ok(DataPattern::RowStripe),
        "row_stripe_i" => Ok(DataPattern::RowStripeI),
        "col_stripe" => Ok(DataPattern::ColStripe),
        "col_stripe_i" => Ok(DataPattern::ColStripeI),
        other => Err(SpecError::new(format!(
            "unknown data pattern {other:?} (expected checkerboard[_i], \
             row_stripe[_i] or col_stripe[_i])"
        ))),
    }
}

fn data_pattern_name(pattern: DataPattern) -> &'static str {
    match pattern {
        DataPattern::Checkerboard => "checkerboard",
        DataPattern::CheckerboardI => "checkerboard_i",
        DataPattern::RowStripe => "row_stripe",
        DataPattern::RowStripeI => "row_stripe_i",
        DataPattern::ColStripe => "col_stripe",
        DataPattern::ColStripeI => "col_stripe_i",
    }
}

/// Parses one `[[measurement]]` entry, expanding scalar-or-array sweep
/// fields (`t_aggon_ns = [36.0, 7800.0]`) into one [`Measurement`] each.
fn parse_measurement(entry: &Value) -> Result<Vec<Measurement>, SpecError> {
    let map = as_map(entry, "measurement")?;
    let kind = as_str(
        find(map, "kind")
            .ok_or_else(|| SpecError::new("measurement entry is missing its `kind`"))?,
        "measurement.kind",
    )?;
    match kind {
        "ac_min" | "ac_max" => {
            known_keys(map, &["kind", "t_aggon_ns"], "measurement")?;
            let times = sweep_f64(map, "t_aggon_ns")?;
            Ok(times
                .into_iter()
                .map(|ns| {
                    let t_aggon = Time::from_ns(ns);
                    if kind == "ac_min" {
                        Measurement::AcMin { t_aggon }
                    } else {
                        Measurement::AcMax { t_aggon }
                    }
                })
                .collect())
        }
        "t_aggon_min" => {
            known_keys(map, &["kind", "ac"], "measurement")?;
            let acs = sweep_u64(map, "ac")?;
            Ok(acs
                .into_iter()
                .map(|ac| Measurement::TAggOnMin { ac })
                .collect())
        }
        "on_off" => {
            known_keys(map, &["kind", "delta_a2a_ns", "on_fraction"], "measurement")?;
            let deltas = sweep_f64(map, "delta_a2a_ns")?;
            let fractions = sweep_f64(map, "on_fraction")?;
            let mut out = Vec::with_capacity(deltas.len() * fractions.len());
            for &delta in &deltas {
                for &fraction in &fractions {
                    out.push(Measurement::OnOff {
                        delta_a2a: Time::from_ns(delta),
                        on_fraction: fraction,
                    });
                }
            }
            Ok(out)
        }
        "retention" => {
            known_keys(map, &["kind", "duration_ms"], "measurement")?;
            let durations = sweep_f64(map, "duration_ms")?;
            Ok(durations
                .into_iter()
                .map(|ms| Measurement::Retention {
                    duration: Time::from_ms(ms),
                })
                .collect())
        }
        other => Err(SpecError::new(format!(
            "unknown measurement kind {other:?} (expected ac_min, ac_max, \
             t_aggon_min, on_off or retention)"
        ))),
    }
}

/// The canonical-JSON fields of one expanded measurement.
fn measurement_fields(m: &Measurement) -> Vec<(String, Value)> {
    match m {
        Measurement::AcMin { t_aggon } => vec![
            ("kind".to_string(), Value::Str("ac_min".into())),
            ("t_aggon_ns".to_string(), Value::F64(t_aggon.as_ns())),
        ],
        Measurement::AcMax { t_aggon } => vec![
            ("kind".to_string(), Value::Str("ac_max".into())),
            ("t_aggon_ns".to_string(), Value::F64(t_aggon.as_ns())),
        ],
        Measurement::TAggOnMin { ac } => vec![
            ("kind".to_string(), Value::Str("t_aggon_min".into())),
            ("ac".to_string(), Value::U64(*ac)),
        ],
        Measurement::OnOff {
            delta_a2a,
            on_fraction,
        } => vec![
            ("kind".to_string(), Value::Str("on_off".into())),
            ("delta_a2a_ns".to_string(), Value::F64(delta_a2a.as_ns())),
            ("on_fraction".to_string(), Value::F64(*on_fraction)),
        ],
        Measurement::Retention { duration } => vec![
            ("kind".to_string(), Value::Str("retention".into())),
            ("duration_ms".to_string(), Value::F64(duration.as_ms())),
        ],
    }
}

/// Reads a required scalar-or-array float field.
fn sweep_f64(map: &[(String, Value)], key: &str) -> Result<Vec<f64>, SpecError> {
    let value = find(map, key)
        .ok_or_else(|| SpecError::new(format!("measurement entry is missing `{key}`")))?;
    match value {
        Value::Seq(items) => items.iter().map(|v| as_f64(v, key)).collect(),
        scalar => Ok(vec![as_f64(scalar, key)?]),
    }
}

/// Reads a required scalar-or-array unsigned-integer field.
fn sweep_u64(map: &[(String, Value)], key: &str) -> Result<Vec<u64>, SpecError> {
    let value = find(map, key)
        .ok_or_else(|| SpecError::new(format!("measurement entry is missing `{key}`")))?;
    match value {
        Value::Seq(items) => items.iter().map(|v| as_u64(v, key)).collect(),
        scalar => Ok(vec![as_u64(scalar, key)?]),
    }
}

fn find<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Rejects unknown keys so a typo ("tempratures") fails loudly instead of
/// silently falling back to a default axis.
fn known_keys(map: &[(String, Value)], known: &[&str], ctx: &str) -> Result<(), SpecError> {
    for (key, _) in map {
        if !known.contains(&key.as_str()) {
            return Err(SpecError::new(format!(
                "unknown key `{key}` in {ctx} (expected one of: {})",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

fn as_map<'v>(value: &'v Value, ctx: &str) -> Result<&'v [(String, Value)], SpecError> {
    match value {
        Value::Map(entries) => Ok(entries),
        other => Err(SpecError::new(format!(
            "{ctx} must be a table, found {}",
            other.kind()
        ))),
    }
}

fn as_seq<'v>(value: &'v Value, ctx: &str) -> Result<&'v [Value], SpecError> {
    match value {
        Value::Seq(items) => Ok(items),
        other => Err(SpecError::new(format!(
            "{ctx} must be an array, found {}",
            other.kind()
        ))),
    }
}

fn as_str<'v>(value: &'v Value, ctx: &str) -> Result<&'v str, SpecError> {
    match value {
        Value::Str(s) => Ok(s),
        other => Err(SpecError::new(format!(
            "{ctx} must be a string, found {}",
            other.kind()
        ))),
    }
}

fn as_f64(value: &Value, ctx: &str) -> Result<f64, SpecError> {
    match value {
        Value::F64(x) => Ok(*x),
        Value::U64(n) => Ok(*n as f64),
        Value::I64(n) => Ok(*n as f64),
        other => Err(SpecError::new(format!(
            "{ctx} must be a number, found {}",
            other.kind()
        ))),
    }
}

fn as_u64(value: &Value, ctx: &str) -> Result<u64, SpecError> {
    match value {
        Value::U64(n) => Ok(*n),
        other => Err(SpecError::new(format!(
            "{ctx} must be a non-negative integer, found {}",
            other.kind()
        ))),
    }
}

fn as_u32(value: &Value, ctx: &str) -> Result<u32, SpecError> {
    let raw = as_u64(value, ctx)?;
    u32::try_from(raw).map_err(|_| SpecError::new(format!("{ctx} is out of range")))
}

fn as_bool(value: &Value, ctx: &str) -> Result<bool, SpecError> {
    match value {
        Value::Bool(b) => Ok(*b),
        other => Err(SpecError::new(format!(
            "{ctx} must be a boolean, found {}",
            other.kind()
        ))),
    }
}

/// The TOML subset front end: tables, dotted table headers, array-of-tables
/// headers, and `key = value` pairs whose values are strings, integers,
/// floats, booleans or flat arrays — exactly the grammar of the campaign
/// spec. Inline tables, multi-line strings, dates and dotted keys are out
/// of scope and rejected with a line-numbered error.
mod toml {
    use super::{SpecError, Value};

    /// Parses the TOML subset into a [`Value::Map`] tree.
    pub fn parse(text: &str) -> Result<Value, SpecError> {
        let mut root: Vec<(String, Value)> = Vec::new();
        // Path of the table the next `key = value` lands in; empty = root.
        let mut current: Vec<PathStep> = Vec::new();
        for (number, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let fail = |message: String| SpecError::new(format!("line {}: {message}", number + 1));
            if let Some(header) = line.strip_prefix("[[") {
                let header = header
                    .strip_suffix("]]")
                    .ok_or_else(|| fail("unterminated [[table]] header".into()))?;
                current = parse_path(header).map_err(&fail)?;
                let last = current.len() - 1;
                current[last].new_element = true;
                // Materialize the new array element right away, so an empty
                // [[entry]] still appears in the tree.
                table_for(&mut root, &mut current).map_err(&fail)?;
            } else if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| fail("unterminated [table] header".into()))?;
                current = parse_path(header).map_err(&fail)?;
                table_for(&mut root, &mut current).map_err(&fail)?;
            } else {
                let (key, value) = line
                    .split_once('=')
                    .ok_or_else(|| fail("expected `key = value`".into()))?;
                let key = key.trim();
                if key.is_empty() || !is_bare_key(key) {
                    return Err(fail(format!("invalid key `{key}`")));
                }
                let value = parse_value(value.trim()).map_err(&fail)?;
                let table = table_for(&mut root, &mut current).map_err(&fail)?;
                if table.iter().any(|(k, _)| k == key) {
                    return Err(fail(format!("duplicate key `{key}`")));
                }
                table.push((key.to_string(), value));
            }
        }
        Ok(Value::Map(root))
    }

    /// One step of a table path; `new_element` marks the pending
    /// array-of-tables element a `[[header]]` opened.
    struct PathStep {
        key: String,
        new_element: bool,
    }

    fn parse_path(header: &str) -> Result<Vec<PathStep>, String> {
        let steps: Vec<PathStep> = header
            .split('.')
            .map(|part| PathStep {
                key: part.trim().to_string(),
                new_element: false,
            })
            .collect();
        if steps.is_empty()
            || steps
                .iter()
                .any(|s| s.key.is_empty() || !is_bare_key(&s.key))
        {
            return Err(format!("invalid table header `{header}`"));
        }
        Ok(steps)
    }

    fn is_bare_key(key: &str) -> bool {
        key.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    }

    /// Walks (creating as needed) to the table `path` points at. For a path
    /// step flagged `new_element`, the first visit appends a fresh element
    /// to the array-of-tables and clears the flag, so subsequent keys land
    /// in that element.
    fn table_for<'a>(
        root: &'a mut Vec<(String, Value)>,
        path: &mut [PathStep],
    ) -> Result<&'a mut Vec<(String, Value)>, String> {
        let mut table = root;
        for step in path {
            if !table.iter().any(|(k, _)| k == &step.key) {
                let initial = if step.new_element {
                    Value::Seq(Vec::new())
                } else {
                    Value::Map(Vec::new())
                };
                table.push((step.key.clone(), initial));
            }
            let slot = table
                .iter_mut()
                .find(|(k, _)| k == &step.key)
                .map(|(_, v)| v)
                .expect("slot just ensured");
            table = match slot {
                Value::Map(entries) => entries,
                Value::Seq(elements) => {
                    if step.new_element {
                        elements.push(Value::Map(Vec::new()));
                        step.new_element = false;
                    }
                    match elements.last_mut() {
                        Some(Value::Map(entries)) => entries,
                        _ => return Err(format!("`{}` is not an array of tables", step.key)),
                    }
                }
                _ => return Err(format!("`{}` is not a table", step.key)),
            };
        }
        Ok(table)
    }

    /// Drops a `#` comment, respecting `"…"` strings.
    fn strip_comment(line: &str) -> &str {
        let mut in_string = false;
        let mut escaped = false;
        for (i, b) in line.bytes().enumerate() {
            match b {
                b'\\' if in_string && !escaped => {
                    escaped = true;
                    continue;
                }
                b'"' if !escaped => in_string = !in_string,
                b'#' if !in_string => return &line[..i],
                _ => {}
            }
            escaped = false;
        }
        line
    }

    fn parse_value(text: &str) -> Result<Value, String> {
        let text = text.trim();
        if text.is_empty() {
            return Err("missing value".into());
        }
        if let Some(rest) = text.strip_prefix('"') {
            return parse_string(rest).map(Value::Str);
        }
        if let Some(body) = text.strip_prefix('[') {
            let body = body
                .strip_suffix(']')
                .ok_or_else(|| "unterminated array".to_string())?;
            let mut items = Vec::new();
            for part in split_top_level(body) {
                let part = part.trim();
                if !part.is_empty() {
                    items.push(parse_value(part)?);
                }
            }
            return Ok(Value::Seq(items));
        }
        match text {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        if text.contains(['.', 'e', 'E']) {
            if let Ok(x) = text.parse::<f64>() {
                return Ok(Value::F64(x));
            }
        } else if let Some(negative) = text.strip_prefix('-') {
            if let Ok(n) = negative.parse::<u64>() {
                return Ok(Value::I64(-(n as i64)));
            }
        } else if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
        Err(format!("cannot parse value `{text}`"))
    }

    /// Parses the remainder of a `"…"` string (escapes: `\\ \" \n \t`),
    /// rejecting trailing garbage.
    fn parse_string(rest: &str) -> Result<String, String> {
        let mut out = String::new();
        let mut chars = rest.chars();
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    let trailing = chars.as_str().trim();
                    if !trailing.is_empty() {
                        return Err(format!("unexpected `{trailing}` after string"));
                    }
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => return Err(format!("unsupported escape `\\{other:?}`")),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    /// Splits an array body on commas outside strings and nested brackets.
    fn split_top_level(body: &str) -> Vec<&str> {
        let mut parts = Vec::new();
        let mut depth = 0usize;
        let mut in_string = false;
        let mut escaped = false;
        let mut start = 0usize;
        for (i, b) in body.bytes().enumerate() {
            match b {
                b'\\' if in_string && !escaped => {
                    escaped = true;
                    continue;
                }
                b'"' if !escaped => in_string = !in_string,
                b'[' if !in_string => depth += 1,
                b']' if !in_string => depth = depth.saturating_sub(1),
                b',' if !in_string && depth == 0 => {
                    parts.push(&body[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
            escaped = false;
        }
        parts.push(&body[start..]);
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK_ACMIN: &str = r#"
        # The quick ACmin grid of tests/golden.rs, as a campaign spec.
        name = "quick-acmin"

        [config]
        preset = "quick"

        [grid]
        modules = ["S0", "S3", "H0", "M3"]

        [[measurement]]
        kind = "ac_min"
        t_aggon_ns = [36.0, 7800.0, 30000000.0]

        [orchestration]
        shards = 2
        stall_timeout_ms = 30000
        max_respawns = 3
    "#;

    #[test]
    fn toml_spec_reproduces_the_golden_plan() {
        let spec = CampaignSpec::parse(QUICK_ACMIN).unwrap();
        assert_eq!(spec.name, "quick-acmin");
        assert_eq!(spec.preset, ConfigPreset::Quick);
        assert_eq!(spec.orchestration.shards, 2);
        let plan = spec.plan().unwrap();
        // The exact grid of tests/golden.rs: 4 modules x 3 tAggON x 6 rows.
        let cfg = ExperimentConfig::quick();
        let modules: Vec<_> = ["S0", "S3", "H0", "M3"]
            .iter()
            .map(|id| lookup_module(id).unwrap())
            .collect();
        let golden = Plan::grid(&cfg)
            .modules(&modules)
            .measurements(
                [Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)]
                    .into_iter()
                    .map(|t| Measurement::AcMin { t_aggon: t }),
            )
            .build();
        assert_eq!(plan, golden);
    }

    #[test]
    fn canonical_json_is_a_fixed_point_and_json_parses_back() {
        let spec = CampaignSpec::parse(QUICK_ACMIN).unwrap();
        let canonical = spec.canonical_json();
        let reparsed = CampaignSpec::parse(&canonical).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.canonical_json(), canonical);
        // Without a [cache] table the budget is off and the canonical form
        // does not mention it (older specs keep their fixed point).
        assert_eq!(spec.cache_max_bytes, None);
        assert!(!canonical.contains("cache"));
    }

    #[test]
    fn cache_budget_parses_validates_and_round_trips() {
        let budgeted = format!("{QUICK_ACMIN}\n[cache]\nmax_bytes = 4096\n");
        let spec = CampaignSpec::parse(&budgeted).unwrap();
        assert_eq!(spec.cache_max_bytes, Some(4096));
        let canonical = spec.canonical_json();
        assert!(canonical.contains("\"max_bytes\":4096"));
        let reparsed = CampaignSpec::parse(&canonical).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.canonical_json(), canonical);

        let zero = format!("{QUICK_ACMIN}\n[cache]\nmax_bytes = 0\n");
        let err = CampaignSpec::parse(&zero).unwrap_err();
        assert!(err.to_string().contains("max_bytes"), "{err}");

        let unknown = format!("{QUICK_ACMIN}\n[cache]\nmax_lines = 7\n");
        let err = CampaignSpec::parse(&unknown).unwrap_err();
        assert!(err.to_string().contains("max_lines"), "{err}");
    }

    #[test]
    fn cache_salvage_parses_defaults_off_and_round_trips() {
        let base = CampaignSpec::parse(QUICK_ACMIN).unwrap();
        assert!(!base.cache_salvage, "salvage is opt-in");

        let salvaging = format!("{QUICK_ACMIN}\n[cache]\nsalvage = true\n");
        let spec = CampaignSpec::parse(&salvaging).unwrap();
        assert!(spec.cache_salvage);
        assert_eq!(spec.cache_max_bytes, None);
        let canonical = spec.canonical_json();
        assert!(canonical.contains("\"salvage\":true"));
        let reparsed = CampaignSpec::parse(&canonical).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.canonical_json(), canonical);

        // `salvage = false` parses but stays out of the canonical form,
        // matching the no-[cache] fixed point.
        let explicit_off = format!("{QUICK_ACMIN}\n[cache]\nsalvage = false\n");
        let spec = CampaignSpec::parse(&explicit_off).unwrap();
        assert!(!spec.cache_salvage);
        assert!(!spec.canonical_json().contains("cache"));

        let bad = format!("{QUICK_ACMIN}\n[cache]\nsalvage = 1\n");
        let err = CampaignSpec::parse(&bad).unwrap_err();
        assert!(err.to_string().contains("salvage"), "{err}");
    }

    #[test]
    fn defaults_fill_unspecified_axes() {
        let spec = CampaignSpec::parse(
            r#"
            [grid]
            modules = ["S3"]
            [[measurement]]
            kind = "retention"
            duration_ms = 4000.0
            "#,
        )
        .unwrap();
        assert_eq!(spec.name, "campaign");
        assert_eq!(spec.preset, ConfigPreset::Quick);
        assert_eq!(spec.temperatures, vec![50.0]);
        assert_eq!(spec.kinds, vec![PatternKind::SingleSided]);
        assert_eq!(spec.data_patterns, vec![DataPattern::Checkerboard]);
        assert_eq!(spec.orchestration, Orchestration::default());
        assert_eq!(
            spec.measurements,
            vec![Measurement::Retention {
                duration: Time::from_secs(4.0)
            }]
        );
    }

    #[test]
    fn every_measurement_kind_parses_and_round_trips() {
        let spec = CampaignSpec::parse(
            r#"
            [config]
            preset = "test"
            [grid]
            modules = ["S3"]
            patterns = ["single_sided", "double_sided"]
            data_patterns = ["row_stripe", "col_stripe_i"]
            temperatures = [50.0, 80.0]
            [[measurement]]
            kind = "ac_min"
            t_aggon_ns = 36.0
            [[measurement]]
            kind = "ac_max"
            t_aggon_ns = [70200.0]
            [[measurement]]
            kind = "t_aggon_min"
            ac = [1, 10]
            [[measurement]]
            kind = "on_off"
            delta_a2a_ns = 6000.0
            on_fraction = [0.25, 0.75]
            [[measurement]]
            kind = "retention"
            duration_ms = 4000.0
            "#,
        )
        .unwrap();
        assert_eq!(spec.measurements.len(), 1 + 1 + 2 + 2 + 1);
        assert_eq!(spec.kinds.len(), 2);
        assert_eq!(spec.data_patterns.len(), 2);
        let canonical = spec.canonical_json();
        assert_eq!(CampaignSpec::parse(&canonical).unwrap(), spec);
        // The expanded grid exists and is non-trivial.
        assert!(spec.plan().unwrap().len() > spec.measurements.len());
    }

    #[test]
    fn config_overrides_apply() {
        let spec = CampaignSpec::parse(
            r#"
            [config]
            preset = "test"
            rows_per_module = 2
            repeats = 3
            [grid]
            modules = ["S3"]
            [[measurement]]
            kind = "ac_min"
            t_aggon_ns = 36.0
            "#,
        )
        .unwrap();
        let cfg = spec.config();
        assert_eq!(cfg.rows_per_module, 2);
        assert_eq!(cfg.repeats, 3);
        assert_eq!(spec.plan().unwrap().len(), 2);
    }

    #[test]
    fn errors_name_the_offending_key() {
        let cases: &[(&str, &str)] = &[
            ("[grid]\nmodules = []", "at least one module"),
            ("[grid]\nmodules = [\"S3\"]", "measurement"),
            (
                "[grid]\nmodules = [\"Z9\"]\n[[measurement]]\nkind = \"ac_min\"\nt_aggon_ns = 36.0",
                "Z9",
            ),
            (
                "[grid]\nmodules = [\"S3\"]\n[[measurement]]\nkind = \"warp\"",
                "warp",
            ),
            (
                "[grid]\nmodules = [\"S3\"]\ntempratures = [50.0]",
                "tempratures",
            ),
            ("[config]\npreset = \"fast\"", "fast"),
            (
                "[grid]\nmodules = [\"S3\"]\n[[measurement]]\nkind = \"ac_min\"",
                "t_aggon_ns",
            ),
            ("[grid]\nmodules = 3", "array"),
            ("name = \"x\"\nname = \"y\"", "duplicate"),
            ("key", "key = value"),
            ("[unclosed", "unterminated"),
        ];
        for (text, needle) in cases {
            let err = CampaignSpec::parse(text).unwrap_err().to_string();
            assert!(
                err.contains(needle),
                "spec {text:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn toml_subset_handles_comments_strings_and_nesting() {
        let spec = CampaignSpec::parse(
            "name = \"a # not-a-comment\" # a real comment\n\
             [grid]\n\
             modules = [\"S3\", \"S0\"] # trailing comment\n\
             temperatures = [50.0,] # trailing comma\n\
             [[measurement]]\n\
             kind = \"t_aggon_min\"\n\
             ac = 5\n",
        )
        .unwrap();
        assert_eq!(spec.name, "a # not-a-comment");
        assert_eq!(spec.modules, vec!["S3", "S0"]);
        assert_eq!(spec.temperatures, vec![50.0]);
        assert_eq!(spec.measurements, vec![Measurement::TAggOnMin { ac: 5 }]);
    }

    #[test]
    fn json_and_toml_front_ends_agree() {
        let toml_spec = CampaignSpec::parse(QUICK_ACMIN).unwrap();
        let json_spec = CampaignSpec::parse(&toml_spec.canonical_json()).unwrap();
        assert_eq!(toml_spec, json_spec);
        assert_eq!(toml_spec.plan().unwrap(), json_spec.plan().unwrap());
    }
}
