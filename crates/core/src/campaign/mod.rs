//! Bounded parallel execution of characterization campaigns.
//!
//! Testing one unit of work (a module, a trial) is independent of any other,
//! so campaigns fan work out over a pool of worker threads. The pool is
//! **bounded**: it never spawns more threads than the machine has logical
//! cores, no matter how many work items there are — the full 21-module
//! inventory (164 chips) used to spawn one OS thread per module; it now
//! shares [`worker_count`] workers pulling items off a common queue. The
//! paper's artifact does the same fan-out with a Slurm cluster —
//! [`run_sharded`] models exactly that: one engine per [`Plan::shard`], the
//! partial streams merge-sorted back into plan order.
//!
//! The *multi-process* version of the fan-out lives in the submodules:
//! [`spec`] defines the declarative [`CampaignSpec`] (TOML/JSON) that every
//! shard process resolves to the identical plan, and [`shard`] provides
//! [`run_shard`], the crash-safe per-shard entry point the
//! `rowpress-campaign` orchestrator drives (persistent cache flushed per
//! record, progress events as heartbeats).

pub mod shard;
pub mod spec;

pub use shard::{
    run_shard, run_shard_on, run_shard_with, shard_cache_path, shard_output_path, CampaignError,
    ShardEvent, ShardRun, DEGRADE_AFTER, MERGED_CRC_FILENAME, MERGED_FILENAME,
};
pub use spec::{CampaignSpec, ConfigPreset, Orchestration, SpecError};

use crate::engine::{Engine, Plan, TrialRecord};
use rowpress_dram::{DramResult, ModuleSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers a default campaign pool uses: the machine's available
/// parallelism, with a fallback of 1 when it cannot be determined.
pub fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on a bounded pool of at most `workers` threads
/// and returns the results in input order.
///
/// Workers pull items off a single shared atomic queue, so a slow item never
/// idles the rest of the pool: whichever worker finishes first claims the
/// next item (shared-queue scheduling, not per-worker deques with stealing).
/// Results are written into per-item slots, making the output order — and
/// therefore every downstream record stream — independent of scheduling.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have stopped.
pub fn bounded_par_map<I, T, F>(items: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = std::iter::repeat_with(|| Mutex::new(None))
        .take(n)
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let value = f(&items[index]);
                *slots[index].lock().expect("result slot lock") = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every claimed slot was filled")
        })
        .collect()
}

/// Applies `f` to every module on the bounded default pool
/// (≤ [`worker_count`] threads) and returns the results in input order.
///
/// Kept as the coarse-grained per-module entry point. The study drivers
/// themselves schedule individual trials through [`crate::engine::Engine`],
/// whose run loop uses the same shared-queue scheme but maintains its own
/// workers so it can stream results to a sink in plan order while trials are
/// still executing.
pub fn par_map_modules<T, F>(modules: &[ModuleSpec], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ModuleSpec) -> T + Sync,
{
    bounded_par_map(modules, worker_count(), f)
}

/// Runs a plan as `shards` independent [`Plan::shard`] campaigns — each on a
/// clone of `engine` (the clones share its cache handle) driven by one
/// [`bounded_par_map`] slot — and merge-sorts the partial record streams
/// back into plan order with [`Plan::merge`].
///
/// This is the in-process model of the paper's Slurm-style fan-out: the
/// record stream is byte-identical to `engine.run_collect(plan)`. For the
/// real multi-process version, hand each process its own shard index and a
/// `JsonlSink`, then reassemble with
/// [`JsonlReader::merge_shards`](crate::engine::JsonlReader::merge_shards).
///
/// # Errors
///
/// Returns the first trial error of any shard.
pub fn run_sharded(engine: &Engine, plan: &Plan, shards: usize) -> DramResult<Vec<TrialRecord>> {
    let shards = shards.clamp(1, plan.len().max(1));
    let indices: Vec<usize> = (0..shards).collect();
    let streams = bounded_par_map(&indices, worker_count(), |&i| {
        // Each shard gets a 1-worker engine: the fan-out across shards *is*
        // the parallelism, exactly as one process per board provides it.
        engine
            .clone()
            .with_workers(1)
            .run_collect(&plan.shard(i, shards))
    })
    .into_iter()
    .collect::<DramResult<Vec<_>>>()?;
    Ok(Plan::merge(streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpress_dram::module_inventory;

    #[test]
    fn results_preserve_module_order() {
        let modules = module_inventory();
        let ids = par_map_modules(&modules, |m| m.id.clone());
        let expected: Vec<String> = modules.iter().map(|m| m.id.clone()).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn single_module_runs_inline() {
        let modules = &module_inventory()[..1];
        let out = par_map_modules(modules, |m| m.chips);
        assert_eq!(out, vec![modules[0].chips]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map_modules(&[], |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_work_actually_computes() {
        let modules = module_inventory();
        let sums = par_map_modules(&modules, |m| m.id.bytes().map(u64::from).sum::<u64>());
        assert_eq!(sums.len(), modules.len());
        assert!(sums.iter().all(|&s| s > 0));
    }

    #[test]
    fn bounded_pool_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 7, 64, 1000] {
            let out = bounded_par_map(&items, workers, |&x| x * x);
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn sharded_campaigns_match_the_single_engine_stream() {
        use crate::engine::{lookup_module, Measurement};
        use rowpress_dram::Time;
        let cfg = crate::ExperimentConfig::test_scale();
        let plan = Plan::grid(&cfg)
            .module(&lookup_module("S3").unwrap())
            .temperatures(&[50.0, 80.0])
            .measurements(
                [Time::from_ns(36.0), Time::from_ms(30.0)]
                    .into_iter()
                    .map(|t| Measurement::AcMin { t_aggon: t }),
            )
            .build();
        let engine = Engine::new(&cfg);
        let baseline = engine.run_collect(&plan).unwrap();
        for shards in [1, 3, 8, plan.len() + 5] {
            let records = run_sharded(&engine, &plan, shards).unwrap();
            assert_eq!(records, baseline, "shards = {shards}");
        }
    }

    #[test]
    fn pool_never_exceeds_requested_workers() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        bounded_par_map(&items, 3, |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }
}
