//! The shard-process entry point of a multi-process campaign: run one
//! [`Plan::shard`](crate::engine::Plan::shard) of a [`CampaignSpec`] with a
//! crash-safe persistent cache and per-record progress reporting.
//!
//! [`run_shard`] is what a `rowpress-campaign --shard i/n` child process
//! executes: it derives the campaign's plan from the spec (every process
//! derives the identical plan, so strided shard indices agree across
//! processes), opens the shard's private [`PersistentCache`] file, streams
//! the shard's records to a JSONL output file, and reports a
//! [`ShardEvent`] per record. The cache is flushed after *every* record, so
//! a shard killed at any point resumes from its cache file without
//! recomputing a single completed trial — the orchestrator's respawn
//! guarantee. Each incarnation rewrites the output file from the start;
//! already-cached trials replay in microseconds, so a resumed shard
//! reproduces the byte-identical stream almost for free.
//!
//! # Example: two shard "processes" and a merge
//!
//! ```
//! use rowpress_core::campaign::{run_shard, CampaignSpec, ShardEvent};
//! use rowpress_core::engine::JsonlReader;
//!
//! let spec = CampaignSpec::parse(
//!     r#"
//!     [config]
//!     preset = "test"
//!     [grid]
//!     modules = ["S3"]
//!     [[measurement]]
//!     kind = "ac_min"
//!     t_aggon_ns = [36.0, 30000000.0]
//!     "#,
//! )
//! .unwrap();
//! let dir = std::env::temp_dir().join(format!("rowpress-shard-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! for index in 0..2 {
//!     let run = run_shard(
//!         &spec,
//!         index,
//!         2,
//!         &dir.join(format!("shard-{index}.cache.jsonl")),
//!         &dir.join(format!("shard-{index}.jsonl")),
//!         |_event: ShardEvent| {},
//!     )
//!     .unwrap();
//!     assert_eq!(run.preloaded, 0, "first incarnation starts cold");
//! }
//! let merged = JsonlReader::merge_shards(
//!     (0..2).map(|i| JsonlReader::from_path(dir.join(format!("shard-{i}.jsonl"))).unwrap()),
//! )
//! .unwrap();
//! assert_eq!(merged.len(), spec.plan().unwrap().len());
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use super::spec::{CampaignSpec, SpecError};
use crate::engine::{
    CostModel, Engine, EngineError, JsonlSink, OpenPolicy, PersistentCache, PoolMetrics, Sink,
    TrialCache, TrialRecord,
};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// The file a shard streams its records to: `shard-NNNN.jsonl` under the
/// campaign's output directory.
pub fn shard_output_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:04}.jsonl"))
}

/// The shard's private persistent-cache file: `shard-NNNN.cache.jsonl`.
/// One process owns it at a time; a respawned shard preloads it to resume.
pub fn shard_cache_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index:04}.cache.jsonl"))
}

/// The merged, plan-ordered record stream the orchestrator writes after all
/// shards finish: byte-identical to a single-process run of the campaign.
pub const MERGED_FILENAME: &str = "merged.jsonl";

/// The integrity sidecar of [`MERGED_FILENAME`]: one CRC-32 (8 hex digits)
/// per merged record line, in stream order. The merged stream itself is a
/// golden, byte-pinned artifact, so its checksums ride alongside instead of
/// inline — `rowpress-campaign fsck` verifies the pair.
pub const MERGED_CRC_FILENAME: &str = "merged.jsonl.crc";

/// Consecutive per-record cache-flush failures a shard tolerates before it
/// stops persisting and degrades to compute-only. Three in a row is a disk
/// that is *staying* broken (ENOSPC, EIO), not a transient hiccup — and the
/// failed entries stay journaled in memory, so a later incarnation with a
/// healthy disk recomputes only what was never persisted.
pub const DEGRADE_AFTER: u32 = 3;

/// A progress report from a running shard, emitted through [`run_shard`]'s
/// callback. The CLI child prints one protocol line per event; the parent's
/// stall detector treats any event as a heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEvent {
    /// The shard opened its cache and is about to execute its sub-plan.
    Started {
        /// Records preloaded from the persistent-cache file (0 when cold).
        preloaded: usize,
        /// Trials in this shard's sub-plan.
        total: usize,
    },
    /// Worker-liveness heartbeat: trials are completing even though no
    /// record has drained (the default longest-pole-first dispatch can hold
    /// the plan-ordered drain behind one long trial while workers finish
    /// many others). Emitted at most twice a second, and only when the live
    /// counters advanced — a wedged shard stops beating, so the
    /// orchestrator's stall detector still fires. The counts are read from
    /// the live cache counters and may run ahead of what is on disk; use
    /// [`ShardEvent::Progress`]'s `computed` for resume accounting.
    Beat {
        /// Live cache-miss count (trials computed, possibly not yet drained).
        computed_live: u64,
        /// Live cache-hit count.
        replayed_live: u64,
        /// Wall-clock microseconds the engine's workers have spent computing
        /// trials so far (see [`PoolMetrics::busy_us`](crate::engine::PoolMetrics::busy_us)).
        busy_us: u64,
        /// Wall-clock microseconds workers have spent idle inside completed
        /// pooled runs.
        idle_us: u64,
        /// High-water mark of outcomes queued behind the plan-ordered drain.
        queue_peak: u64,
        /// True once the shard gave up on persistence after
        /// [`DEGRADE_AFTER`] consecutive flush failures and is running
        /// compute-only. Sticky for the rest of the incarnation.
        degraded: bool,
    },
    /// One record reached the shard's output stream (and the cache file was
    /// flushed past it).
    Progress {
        /// Records streamed so far, in plan order.
        done: usize,
        /// Trials in this shard's sub-plan.
        total: usize,
        /// Fresh outcomes *persisted to the cache file* so far this
        /// incarnation. Measured at the disk boundary (not the live miss
        /// counter, which can run ahead of the flush), so it is exactly
        /// what a respawned successor will preload on top of `preloaded` —
        /// the recovery tests' accounting invariant.
        computed: u64,
        /// Cache hits so far — trials replayed from the preloaded cache.
        replayed: u64,
    },
    /// The shard streamed every record and flushed its output.
    Finished {
        /// Trials in this shard's sub-plan (== records streamed).
        total: usize,
        /// Total fresh outcomes persisted by the incarnation.
        computed: u64,
        /// Total cache hits of the incarnation.
        replayed: u64,
        /// The incarnation finished compute-only (see [`ShardEvent::Beat`]'s
        /// `degraded`): its record stream is complete, but outcomes past
        /// `computed` were never persisted and will be recomputed by the
        /// next incarnation.
        degraded: bool,
    },
}

/// Summary of one completed [`run_shard`] incarnation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRun {
    /// Records streamed to the output file (the shard's sub-plan length).
    pub records: usize,
    /// Records preloaded from the cache file at open.
    pub preloaded: usize,
    /// Fresh trial outcomes computed and persisted this incarnation.
    pub computed: u64,
    /// Trials replayed from the cache (cache hits).
    pub replayed: u64,
    /// The incarnation disabled persistence after [`DEGRADE_AFTER`]
    /// consecutive flush failures and finished compute-only.
    pub degraded: bool,
}

/// A campaign step failed: the spec did not resolve, a file could not be
/// used, or the engine hit a trial/sink error.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec failed to parse, validate, or resolve to a plan.
    Spec(SpecError),
    /// A cache or output file could not be opened, read or written.
    Io(io::Error),
    /// A trial or sink failed inside the engine.
    Engine(EngineError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "{e}"),
            CampaignError::Io(e) => write!(f, "campaign I/O: {e}"),
            CampaignError::Engine(e) => write!(f, "campaign engine: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Spec(e) => Some(e),
            CampaignError::Io(e) => Some(e),
            CampaignError::Engine(e) => Some(e),
        }
    }
}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

impl From<EngineError> for CampaignError {
    fn from(e: EngineError) -> Self {
        CampaignError::Engine(e)
    }
}

/// A [`Sink`] adapter that flushes the persistent cache after every record
/// and reports a [`ShardEvent::Progress`] — the heartbeat the orchestrator
/// watches. Flushing per record is what makes a kill at any instant
/// resumable: every outcome that reached the output stream (and any the
/// workers computed ahead of the drain) is already on disk.
struct ProgressSink<'a, S: Sink, F: FnMut(ShardEvent)> {
    inner: S,
    persistent: &'a mut PersistentCache,
    counters: TrialCache,
    metrics: PoolMetrics,
    done: usize,
    total: usize,
    /// Fresh outcomes persisted across this incarnation's flushes — the
    /// number reported as `computed` (see [`ShardEvent::Progress`]).
    flushed: u64,
    /// Consecutive flush failures; resets on any successful flush. At
    /// [`DEGRADE_AFTER`] the sink trips `degraded` and stops persisting.
    flush_failures: u32,
    /// Sticky degraded flag, shared with the beat thread so heartbeats
    /// carry it to the orchestrator.
    degraded: &'a AtomicBool,
    /// Shared with the beat thread, which only ever takes it between
    /// events; a callback that blocks (a wedged consumer) therefore also
    /// silences the beats, keeping stall detection honest.
    on_event: &'a std::sync::Mutex<&'a mut F>,
}

impl<S: Sink, F: FnMut(ShardEvent)> Sink for ProgressSink<'_, S, F> {
    fn accept(&mut self, record: TrialRecord) -> io::Result<()> {
        self.inner.accept(record)?;
        // A failing cache flush must not kill the shard: the record stream
        // (this sink's `inner`) is still advancing, and the unwritten
        // outcomes stay journaled for a retry on the next record. Only
        // after DEGRADE_AFTER *consecutive* failures — a disk that is
        // staying broken — does the shard stop trying and go compute-only,
        // announcing the transition synchronously so the orchestrator
        // learns of it even on a sub-second shard.
        if !self.degraded.load(Ordering::Relaxed) {
            match self.persistent.flush() {
                Ok(written) => {
                    self.flushed += written as u64;
                    self.flush_failures = 0;
                }
                Err(_) => {
                    self.flush_failures += 1;
                    if self.flush_failures >= DEGRADE_AFTER {
                        self.degraded.store(true, Ordering::Relaxed);
                        (self.on_event.lock().expect("event lock"))(ShardEvent::Beat {
                            computed_live: self.counters.misses(),
                            replayed_live: self.counters.hits(),
                            busy_us: self.metrics.busy_us(),
                            idle_us: self.metrics.idle_us(),
                            queue_peak: self.metrics.queue_peak(),
                            degraded: true,
                        });
                    }
                }
            }
        }
        self.done += 1;
        (self.on_event.lock().expect("event lock"))(ShardEvent::Progress {
            done: self.done,
            total: self.total,
            computed: self.flushed,
            replayed: self.counters.hits(),
        });
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.inner.finish()
    }
}

/// Executes shard `index` of `of` of the campaign `spec`: the entry point a
/// `rowpress-campaign` child process runs, also callable in-process (tests,
/// single-machine fallback).
///
/// Opens (or resumes from) the persistent cache at `cache_path`, streams
/// the shard's plan-ordered records to `out_path` (truncated first — a
/// resumed incarnation rewrites the stream, replaying cached trials), and
/// invokes `on_event` for the start, every record, and completion. The
/// cache file is flushed after every record; see the [module docs](self)
/// for the resume guarantee.
///
/// # Errors
///
/// Returns a [`CampaignError`] when the spec does not resolve to a plan,
/// the cache or output file fails, or a trial fails in the engine.
pub fn run_shard(
    spec: &CampaignSpec,
    index: usize,
    of: usize,
    cache_path: &Path,
    out_path: &Path,
    on_event: impl FnMut(ShardEvent) + Send,
) -> Result<ShardRun, CampaignError> {
    let record_sink = JsonlSink::new(BufWriter::new(File::create(out_path)?));
    run_shard_with(spec, index, of, cache_path, record_sink, on_event)
}

/// [`run_shard`] with a caller-supplied record sink instead of a local
/// output file — the transport-agnostic entry point.
///
/// A local shard hands a file-backed [`JsonlSink`] here (that is all
/// [`run_shard`] does); a remote shard hands a network sink (e.g. a
/// [`FramedSink`](crate::engine::FramedSink) multiplexed onto the transport
/// connection, optionally behind a
/// [`ThreadedSink`](crate::engine::ThreadedSink)) so its records stream to
/// the orchestrator's collector instead of the local disk. The persistent
/// cache stays a local file either way: resume must survive the transport
/// being the very thing that failed.
///
/// # Errors
///
/// Returns a [`CampaignError`] when the spec does not resolve to a plan,
/// the cache file or record sink fails, or a trial fails in the engine.
pub fn run_shard_with(
    spec: &CampaignSpec,
    index: usize,
    of: usize,
    cache_path: &Path,
    record_sink: impl Sink,
    on_event: impl FnMut(ShardEvent) + Send,
) -> Result<ShardRun, CampaignError> {
    // `[cache] salvage = true` in the spec trades strictness for survival:
    // a corrupt cache line costs one record (quarantined to the sidecar),
    // not the shard's entire measured history.
    let policy = if spec.cache_salvage {
        OpenPolicy::Salvage
    } else {
        OpenPolicy::Strict
    };
    let persistent = PersistentCache::open_with_policy(cache_path, &spec.config(), policy)?;
    run_shard_on(spec, index, of, persistent, record_sink, on_event)
}

/// [`run_shard_with`] on an already-opened [`PersistentCache`] — the
/// injection seam for fault-harness tests ([`crate::engine::FsFaults`])
/// and callers that open the cache under a custom policy or worker count.
///
/// # Errors
///
/// Returns a [`CampaignError`] when the spec does not resolve to a plan,
/// the record sink fails, or a trial fails in the engine. A *cache* flush
/// failure is not fatal: after [`DEGRADE_AFTER`] consecutive failures the
/// shard degrades to compute-only and still completes its stream.
pub fn run_shard_on(
    spec: &CampaignSpec,
    index: usize,
    of: usize,
    mut persistent: PersistentCache,
    record_sink: impl Sink,
    mut on_event: impl FnMut(ShardEvent) + Send,
) -> Result<ShardRun, CampaignError> {
    let cfg = spec.config();
    let shard = spec.plan()?.shard(index, of);
    let preloaded = persistent.preloaded();
    // Learn per-measurement cost corrections from the wall times a previous
    // incarnation recorded: a respawned shard dispatches its remaining
    // trials by observed cost, not just the analytic model. A cold cache
    // has no samples and `fit` falls back to the analytic model.
    let cost = CostModel::default().fit(
        &cfg,
        persistent.timed_samples().iter().map(|(t, w)| (t, *w)),
    );
    let engine = Engine::new(&cfg)
        .with_persistent_cache(&persistent)
        .with_cost_model(cost);
    let counters = engine.cache().clone();
    let metrics = engine.pool_metrics().clone();
    on_event(ShardEvent::Started {
        preloaded,
        total: shard.len(),
    });
    let degraded_flag = AtomicBool::new(false);
    let flushed = {
        let events = std::sync::Mutex::new(&mut on_event);
        let stop = AtomicBool::new(false);
        let mut sink = ProgressSink {
            inner: record_sink,
            persistent: &mut persistent,
            counters: counters.clone(),
            metrics: metrics.clone(),
            done: 0,
            total: shard.len(),
            flushed: 0,
            flush_failures: 0,
            degraded: &degraded_flag,
            on_event: &events,
        };
        std::thread::scope(|scope| {
            // Worker-liveness beats: under longest-pole-first dispatch the
            // plan-ordered drain can sit behind one long trial while the
            // pool completes many others in silence — which would look like
            // a stall to the orchestrator. Beat whenever the live counters
            // advance; a genuinely wedged shard stops advancing (and a
            // wedged event consumer holds the lock), so beats stop too.
            scope.spawn(|| {
                let mut last = (0, 0);
                let mut polls_since_emit = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    // Poll at 100 ms for prompt shutdown, but emit at most
                    // every 5th poll — the documented <= 2 beats/second.
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    polls_since_emit += 1;
                    let now = (counters.misses(), counters.hits());
                    if now != last && polls_since_emit >= 5 && !stop.load(Ordering::Relaxed) {
                        last = now;
                        polls_since_emit = 0;
                        (events.lock().expect("event lock"))(ShardEvent::Beat {
                            computed_live: now.0,
                            replayed_live: now.1,
                            busy_us: metrics.busy_us(),
                            idle_us: metrics.idle_us(),
                            queue_peak: metrics.queue_peak(),
                            degraded: degraded_flag.load(Ordering::Relaxed),
                        });
                    }
                }
            });
            let result = engine.run(&shard, &mut sink);
            stop.store(true, Ordering::Relaxed);
            result
        })?;
        sink.flushed
    };
    let degraded = degraded_flag.load(Ordering::Relaxed);
    // Every worker has stopped by now, so this final flush drains any
    // outcome computed ahead of the last drained record; `computed` is
    // thereafter an exact on-disk count. A degraded shard skips it (and
    // the compaction): its disk is the thing that is broken, and the
    // journaled outcomes belong to the next, healthy incarnation.
    let computed = if degraded {
        flushed
    } else {
        flushed + persistent.flush()? as u64
    };
    // A finishing shard is the safe moment to compact: no flush is racing
    // the rewrite, and the next incarnation preloads the slimmed file.
    if !degraded {
        if let Some(budget) = spec.cache_max_bytes {
            persistent.compact(Some(budget))?;
        }
    }
    let replayed = counters.hits();
    on_event(ShardEvent::Finished {
        total: shard.len(),
        computed,
        replayed,
        degraded,
    });
    Ok(ShardRun {
        records: shard.len(),
        preloaded,
        computed,
        replayed,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{JsonlReader, JsonlSink, Plan};

    fn spec() -> CampaignSpec {
        CampaignSpec::parse(
            r#"
            name = "shard-tests"
            [config]
            preset = "test"
            [grid]
            modules = ["S3", "S0"]
            [[measurement]]
            kind = "ac_min"
            t_aggon_ns = [36.0, 30000000.0]
            "#,
        )
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "rowpress-campaign-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn single_process_bytes(spec: &CampaignSpec) -> Vec<u8> {
        let cfg = spec.config();
        let plan = spec.plan().unwrap();
        let mut sink = JsonlSink::new(Vec::new());
        Engine::new(&cfg).run(&plan, &mut sink).unwrap();
        sink.into_inner()
    }

    #[test]
    fn sharded_files_merge_to_the_single_process_stream() {
        let spec = spec();
        let dir = temp_dir("merge");
        let of = spec.orchestration.shards;
        let mut events = Vec::new();
        for index in 0..of {
            let run = run_shard(
                &spec,
                index,
                of,
                &shard_cache_path(&dir, index),
                &shard_output_path(&dir, index),
                |e| events.push(e),
            )
            .unwrap();
            assert_eq!(run.preloaded, 0);
            assert_eq!(run.computed, run.records as u64);
            assert_eq!(run.replayed, 0);
        }
        // Events: per shard one Started, one Progress per record, one
        // Finished — and the heartbeats carry monotonically growing `done`.
        let starts = events
            .iter()
            .filter(|e| matches!(e, ShardEvent::Started { .. }))
            .count();
        let finishes = events
            .iter()
            .filter(|e| matches!(e, ShardEvent::Finished { .. }))
            .count();
        assert_eq!((starts, finishes), (of, of));

        let merged = JsonlReader::merge_shards(
            (0..of).map(|i| JsonlReader::from_path(shard_output_path(&dir, i)).unwrap()),
        )
        .unwrap();
        let mut sink = JsonlSink::new(Vec::new());
        for record in merged {
            sink.accept(record).unwrap();
        }
        assert_eq!(
            sink.into_inner(),
            single_process_bytes(&spec),
            "merged shard files must be byte-identical to one process"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_second_incarnation_resumes_without_recomputing() {
        let spec = spec();
        let dir = temp_dir("resume");
        let cache = shard_cache_path(&dir, 0);
        let out = shard_output_path(&dir, 0);
        let first = run_shard(&spec, 0, 2, &cache, &out, |_| {}).unwrap();
        assert!(first.computed > 0);
        let first_bytes = std::fs::read(&out).unwrap();

        // The "respawned" incarnation preloads everything and computes
        // nothing, yet rewrites the identical output stream.
        let second = run_shard(&spec, 0, 2, &cache, &out, |_| {}).unwrap();
        assert_eq!(second.preloaded, first.records);
        assert_eq!(second.computed, 0, "resume must not recompute");
        assert_eq!(second.replayed, first.records as u64);
        assert_eq!(std::fs::read(&out).unwrap(), first_bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_is_flushed_per_record_for_mid_run_kills() {
        let spec = spec();
        let dir = temp_dir("midrun");
        let cache = shard_cache_path(&dir, 0);
        let out = shard_output_path(&dir, 0);
        // Observe the cache file's record count at every progress event: by
        // the time record k reaches the stream, at least k outcomes must
        // already be on disk — the property that makes kill-anywhere safe.
        let cfg = spec.config();
        let mut on_disk_counts = Vec::new();
        run_shard(&spec, 0, 2, &cache, &out, |e| {
            if let ShardEvent::Progress { done, .. } = e {
                let persisted = PersistentCache::open(&cache, &cfg).unwrap().preloaded();
                on_disk_counts.push((done, persisted));
            }
        })
        .unwrap();
        for (done, persisted) in on_disk_counts {
            assert!(
                persisted >= done,
                "record {done} streamed but only {persisted} on disk"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn finishing_shard_compacts_its_cache_to_the_spec_budget() {
        // Size a budget off an unbudgeted run: half the full cache file.
        let unbudgeted = spec();
        let dir = temp_dir("budget");
        let cache = shard_cache_path(&dir, 0);
        let out = shard_output_path(&dir, 0);
        let full_run = run_shard(&unbudgeted, 0, 1, &cache, &out, |_| {}).unwrap();
        let full = std::fs::metadata(&cache).unwrap().len();

        let mut budgeted = unbudgeted.clone();
        budgeted.cache_max_bytes = Some(full / 2);
        budgeted.validate().unwrap();
        let dir2 = temp_dir("budget2");
        let cache2 = shard_cache_path(&dir2, 0);
        let out2 = shard_output_path(&dir2, 0);
        let run = run_shard(&budgeted, 0, 1, &cache2, &out2, |_| {}).unwrap();
        assert_eq!(run.records, full_run.records);
        assert!(
            std::fs::metadata(&cache2).unwrap().len() <= full / 2,
            "the finishing shard must compact its cache to the budget"
        );
        // The output stream is unaffected by the cache budget.
        assert_eq!(std::fs::read(&out).unwrap(), std::fs::read(&out2).unwrap());

        // The next incarnation preloads the slimmed cache, recomputes only
        // the evicted trials, and still rewrites the identical stream.
        let resumed = run_shard(&budgeted, 0, 1, &cache2, &out2, |_| {}).unwrap();
        assert_eq!(resumed.records, full_run.records);
        assert!(
            resumed.preloaded > 0,
            "some records must survive the budget"
        );
        assert!(
            (resumed.preloaded as u64) < full_run.computed,
            "some records must have been evicted"
        );
        assert_eq!(
            resumed.computed,
            full_run.computed - resumed.preloaded as u64,
            "exactly the evicted trials recompute"
        );
        assert_eq!(std::fs::read(&out).unwrap(), std::fs::read(&out2).unwrap());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn enospc_mid_run_degrades_to_compute_only_with_a_complete_stream() {
        use crate::engine::FsFaults;
        // Size the fault off an unfaulted run: inject ENOSPC once half the
        // full cache file has been appended.
        let spec = spec();
        let scratch = temp_dir("degrade-scratch");
        run_shard(
            &spec,
            0,
            1,
            &shard_cache_path(&scratch, 0),
            &shard_output_path(&scratch, 0),
            |_| {},
        )
        .unwrap();
        let full = std::fs::metadata(shard_cache_path(&scratch, 0))
            .unwrap()
            .len();

        let dir = temp_dir("degrade");
        let cache = shard_cache_path(&dir, 0);
        let out = shard_output_path(&dir, 0);
        let mut persistent = PersistentCache::open(&cache, &spec.config()).unwrap();
        persistent.set_write_fault(FsFaults::new().enospc_at(full / 2));
        let mut events = Vec::new();
        let run = run_shard_on(
            &spec,
            0,
            1,
            persistent,
            JsonlSink::new(BufWriter::new(File::create(&out).unwrap())),
            |e| events.push(e),
        )
        .unwrap();
        assert!(run.degraded, "the shard must trip the degraded flag");
        assert!(run.computed > 0, "records before the fault persisted");
        assert!(
            run.computed < run.records as u64,
            "records after the fault must not claim persistence"
        );
        // The transition is announced synchronously on a beat, and the
        // final event carries the flag too.
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ShardEvent::Beat { degraded: true, .. })),
            "degradation must surface on a heartbeat"
        );
        assert!(matches!(
            events.last(),
            Some(ShardEvent::Finished { degraded: true, .. })
        ));
        // Compute-only still means *complete*: the record stream is
        // byte-identical to a healthy single-process run.
        assert_eq!(std::fs::read(&out).unwrap(), single_process_bytes(&spec));

        // Space returns: a plain incarnation preloads exactly what was
        // persisted and recomputes only the unpersisted suffix.
        let resumed = run_shard(&spec, 0, 1, &cache, &out, |_| {}).unwrap();
        assert!(!resumed.degraded);
        assert_eq!(resumed.preloaded as u64, run.computed);
        assert_eq!(resumed.computed, run.records as u64 - run.computed);
        assert_eq!(std::fs::read(&out).unwrap(), single_process_bytes(&spec));
        std::fs::remove_dir_all(&scratch).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spec_salvage_policy_lets_a_shard_survive_a_corrupt_cache_line() {
        use crate::engine::quarantine_path;
        let spec = spec();
        let dir = temp_dir("salvage");
        let cache = shard_cache_path(&dir, 0);
        let out = shard_output_path(&dir, 0);
        let first = run_shard(&spec, 0, 1, &cache, &out, |_| {}).unwrap();
        let baseline = std::fs::read(&out).unwrap();

        // Flip one byte in the middle of the second record line.
        let mut bytes = std::fs::read(&cache).unwrap();
        let second_line = bytes
            .iter()
            .position(|&b| b == b'\n')
            .map(|header_end| header_end + 1)
            .unwrap();
        bytes[second_line + 10] ^= 0x01;
        std::fs::write(&cache, &bytes).unwrap();

        // Default (strict) spec: the shard refuses to start.
        let err = run_shard(&spec, 0, 1, &cache, &out, |_| {}).unwrap_err();
        assert!(matches!(err, CampaignError::Io(_)), "{err}");

        // `[cache] salvage = true`: one record quarantined, one recomputed,
        // stream identical.
        let mut salvaging = spec.clone();
        salvaging.cache_salvage = true;
        let run = run_shard(&salvaging, 0, 1, &cache, &out, |_| {}).unwrap();
        assert_eq!(run.preloaded, first.records - 1);
        assert_eq!(run.computed, 1, "exactly the quarantined trial recomputes");
        assert!(quarantine_path(&cache).exists());
        assert_eq!(std::fs::read(&out).unwrap(), baseline);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merged_filename_and_paths_are_stable() {
        let dir = Path::new("/campaign/out");
        assert_eq!(
            shard_output_path(dir, 3),
            Path::new("/campaign/out/shard-0003.jsonl")
        );
        assert_eq!(
            shard_cache_path(dir, 12),
            Path::new("/campaign/out/shard-0012.cache.jsonl")
        );
        assert_eq!(MERGED_FILENAME, "merged.jsonl");
    }

    #[test]
    fn shard_errors_are_typed_and_displayed() {
        let spec = spec();
        let dir = temp_dir("errors");
        // An unknown module id fails as a spec error before any I/O.
        let mut bad = spec.clone();
        bad.modules = vec!["Z9".into()];
        let err = run_shard(
            &bad,
            0,
            1,
            &shard_cache_path(&dir, 0),
            &shard_output_path(&dir, 0),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, CampaignError::Spec(_)));
        assert!(err.to_string().contains("Z9"), "{err}");

        // An unwritable output path fails as I/O.
        let err = run_shard(
            &spec,
            0,
            1,
            &shard_cache_path(&dir, 0),
            &dir.join("missing-subdir").join("out.jsonl"),
            |_| {},
        )
        .unwrap_err();
        assert!(matches!(err, CampaignError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_plans_agree_across_derivations() {
        // Two independent derivations of the same spec produce the same
        // shards — the property that lets processes agree by index alone.
        let a = spec().plan().unwrap();
        let b = spec().plan().unwrap();
        assert_eq!(a, b);
        for i in 0..3 {
            assert_eq!(a.shard(i, 3), b.shard(i, 3));
        }
        let lens: usize = (0..3).map(|i| a.shard(i, 3).len()).sum();
        assert_eq!(lens, Plan::merge(vec![]).len() + a.len());
    }
}
