//! High-level characterization studies: the experiment drivers behind every
//! figure in the paper's §4 and §5.
//!
//! Each driver expresses its study as a declarative [`Plan`] grid and runs it
//! through the shared [`Engine`] — a bounded worker pool with an in-process
//! trial cache — then shapes the engine's [`TrialRecord`] stream into the
//! flat record tables the bench targets aggregate. The public signatures are
//! unchanged from the original hand-written nested-loop drivers, so every
//! figure/table bench keeps compiling; only the execution path moved.

use crate::config::ExperimentConfig;
use crate::engine::{Engine, Jitter, Measurement, Plan, TrialOutcome, TrialRecord};
use crate::patterns::PatternKind;
use rowpress_dram::{
    Bitflip, CellAddr, DataPattern, DramResult, Manufacturer, ModuleSpec, RowId, Time,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

pub use crate::engine::TEST_BANK;

/// The single execution path of every study driver: a plan on the
/// configuration's shared [`Engine`] — process-wide trial cache, cost-aware
/// dispatch, bounded pool. Swapping how studies execute (persistent caches,
/// different schedules, sharding) means changing exactly this function.
fn run_study_plan(
    cfg: &ExperimentConfig,
    plan: &Plan,
) -> rowpress_dram::DramResult<Vec<TrialRecord>> {
    Engine::shared(cfg).run_collect(plan)
}

/// Identity of the module a record came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModuleKey {
    /// Module id ("S0", "H4", ...).
    pub module_id: String,
    /// Die revision label ("8Gb B-Die").
    pub die_label: String,
    /// Manufacturer.
    pub manufacturer: Manufacturer,
}

impl ModuleKey {
    fn of(spec: &ModuleSpec) -> Self {
        ModuleKey {
            module_id: spec.id.clone(),
            die_label: spec.die.label(),
            manufacturer: spec.die.manufacturer,
        }
    }
}

// ---------------------------------------------------------------------------
// ACmin sweeps (Figs. 1, 6, 7, 8, 12, 13, 14, 17, 18)
// ---------------------------------------------------------------------------

/// One ACmin measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcMinRecord {
    /// Module the measurement came from.
    pub module: ModuleKey,
    /// Access-pattern family used.
    pub kind: PatternKind,
    /// Chip temperature during the measurement.
    pub temperature_c: f64,
    /// Aggressor-row-on time.
    pub t_aggon: Time,
    /// The tested row (aggressor site).
    pub site_row: RowId,
    /// Minimum activation count that induced a bitflip, or `None` if none
    /// could be induced within the 60 ms budget.
    pub ac_min: Option<u64>,
    /// Largest activation count that fits in the budget.
    pub ac_max: u64,
    /// Cells that flipped at ACmin.
    pub flip_cells: Vec<CellAddr>,
    /// How many of those flips were 1 → 0.
    pub one_to_zero: usize,
}

impl AcMinRecord {
    /// Number of bitflips observed at ACmin.
    pub fn flip_count(&self) -> usize {
        self.flip_cells.len()
    }
}

fn acmin_record(record: TrialRecord) -> AcMinRecord {
    let TrialRecord { trial, outcome, .. } = record;
    let Measurement::AcMin { t_aggon } = trial.measurement else {
        unreachable!("ACmin plans only contain ACmin measurements");
    };
    let TrialOutcome::AcMin {
        ac_min,
        ac_max,
        flips,
    } = outcome
    else {
        unreachable!("ACmin trials produce ACmin outcomes");
    };
    AcMinRecord {
        module: ModuleKey::of(&trial.spec),
        kind: trial.kind,
        temperature_c: trial.temperature_c,
        t_aggon,
        site_row: trial.row,
        ac_min,
        ac_max,
        flip_cells: flips.iter().map(|f| f.addr).collect(),
        one_to_zero: flips.iter().filter(|f| f.is_one_to_zero()).count(),
    }
}

/// Runs the ACmin search for every (module, temperature, tAggON, tested row)
/// combination. This is the workhorse behind Figs. 1 and 6–18.
pub fn acmin_sweep(
    cfg: &ExperimentConfig,
    modules: &[ModuleSpec],
    kind: PatternKind,
    temperatures: &[f64],
    t_aggons: &[Time],
) -> Vec<AcMinRecord> {
    let plan = Plan::grid(cfg)
        .modules(modules)
        .temperatures(temperatures)
        .kind(kind)
        .measurements(t_aggons.iter().map(|&t| Measurement::AcMin { t_aggon: t }))
        .build();
    let records = run_study_plan(cfg, &plan).expect("valid site");
    records.into_iter().map(acmin_record).collect()
}

/// Per-die aggregation of ACmin values at one (tAggON, temperature) point.
pub fn acmin_by_die(
    records: &[AcMinRecord],
) -> BTreeMap<(String, Manufacturer, u64), crate::stats::Aggregate> {
    let mut groups: BTreeMap<(String, Manufacturer, u64), Vec<f64>> = BTreeMap::new();
    for r in records {
        if let Some(ac) = r.ac_min {
            groups
                .entry((
                    r.module.die_label.clone(),
                    r.module.manufacturer,
                    r.t_aggon.as_ps(),
                ))
                .or_default()
                .push(ac as f64);
        }
    }
    groups
        .into_iter()
        .filter_map(|(k, v)| crate::stats::Aggregate::from_values(&v).map(|a| (k, a)))
        .collect()
}

/// Fraction of tested rows with at least one bitflip, per (die, tAggON) —
/// the quantity plotted in Fig. 8 and Fig. 14.
pub fn fraction_rows_with_flips(records: &[AcMinRecord]) -> BTreeMap<(String, u64), f64> {
    let mut totals: BTreeMap<(String, u64), (usize, usize)> = BTreeMap::new();
    for r in records {
        let entry = totals
            .entry((r.module.die_label.clone(), r.t_aggon.as_ps()))
            .or_insert((0, 0));
        entry.1 += 1;
        if r.ac_min.is_some() {
            entry.0 += 1;
        }
    }
    totals
        .into_iter()
        .map(|(k, (flipped, total))| (k, flipped as f64 / total.max(1) as f64))
        .collect()
}

/// Fraction of 1 → 0 bitflips per (die, tAggON) — Fig. 12.
pub fn fraction_one_to_zero(records: &[AcMinRecord]) -> BTreeMap<(String, u64), f64> {
    let mut totals: BTreeMap<(String, u64), (usize, usize)> = BTreeMap::new();
    for r in records {
        let entry = totals
            .entry((r.module.die_label.clone(), r.t_aggon.as_ps()))
            .or_insert((0, 0));
        entry.0 += r.one_to_zero;
        entry.1 += r.flip_count();
    }
    totals
        .into_iter()
        .filter(|(_, (_, total))| *total > 0)
        .map(|(k, (ones, total))| (k, ones as f64 / total as f64))
        .collect()
}

// ---------------------------------------------------------------------------
// tAggONmin sweeps (Figs. 9 and 15)
// ---------------------------------------------------------------------------

/// One tAggONmin measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TAggOnMinRecord {
    /// Module the measurement came from.
    pub module: ModuleKey,
    /// Chip temperature during the measurement.
    pub temperature_c: f64,
    /// Fixed activation count.
    pub ac: u64,
    /// The tested row.
    pub site_row: RowId,
    /// Minimum aggressor-row-on time that induced a bitflip, if any.
    pub t_aggon_min: Option<Time>,
}

/// Runs the tAggONmin search for every (module, temperature, AC, tested row).
pub fn taggonmin_sweep(
    cfg: &ExperimentConfig,
    modules: &[ModuleSpec],
    activation_counts: &[u64],
    temperatures: &[f64],
) -> Vec<TAggOnMinRecord> {
    let plan = Plan::grid(cfg)
        .modules(modules)
        .temperatures(temperatures)
        .kind(PatternKind::SingleSided)
        .measurements(
            activation_counts
                .iter()
                .map(|&ac| Measurement::TAggOnMin { ac }),
        )
        .build();
    let records = run_study_plan(cfg, &plan).expect("valid site");
    records
        .into_iter()
        .map(|TrialRecord { trial, outcome, .. }| {
            let Measurement::TAggOnMin { ac } = trial.measurement else {
                unreachable!("tAggONmin plans only contain tAggONmin measurements");
            };
            let TrialOutcome::TAggOnMin { t_aggon_min } = outcome else {
                unreachable!("tAggONmin trials produce tAggONmin outcomes");
            };
            TAggOnMinRecord {
                module: ModuleKey::of(&trial.spec),
                temperature_c: trial.temperature_c,
                ac,
                site_row: trial.row,
                t_aggon_min,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// ACmax / BER sweeps (Fig. 11, Fig. 22, Fig. 25/26, Table 6)
// ---------------------------------------------------------------------------

/// Bitflips observed when activating the aggressor(s) as many times as the
/// budget allows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcMaxRecord {
    /// Module the measurement came from.
    pub module: ModuleKey,
    /// Access-pattern family used.
    pub kind: PatternKind,
    /// Chip temperature during the measurement.
    pub temperature_c: f64,
    /// Aggressor-row-on time.
    pub t_aggon: Time,
    /// The tested row.
    pub site_row: RowId,
    /// Activation count used (the budget maximum).
    pub ac: u64,
    /// All victim bitflips.
    pub flips: Vec<Bitflip>,
    /// Maximum per-victim-row bit error rate.
    pub max_ber: f64,
}

/// Runs the at-ACmax measurement across modules, temperatures and tAggON
/// values.
pub fn acmax_sweep(
    cfg: &ExperimentConfig,
    modules: &[ModuleSpec],
    kind: PatternKind,
    temperatures: &[f64],
    t_aggons: &[Time],
) -> Vec<AcMaxRecord> {
    let plan = Plan::grid(cfg)
        .modules(modules)
        .temperatures(temperatures)
        .kind(kind)
        .measurements(t_aggons.iter().map(|&t| Measurement::AcMax { t_aggon: t }))
        .build();
    let records = run_study_plan(cfg, &plan).expect("valid site");
    records
        .into_iter()
        .map(|TrialRecord { trial, outcome, .. }| {
            let Measurement::AcMax { t_aggon } = trial.measurement else {
                unreachable!("ACmax plans only contain ACmax measurements");
            };
            let TrialOutcome::AcMax { ac, flips } = outcome else {
                unreachable!("ACmax trials produce ACmax outcomes");
            };
            let max_ber = max_ber_per_row(&flips, cfg.geometry.bits_per_row);
            AcMaxRecord {
                module: ModuleKey::of(&trial.spec),
                kind: trial.kind,
                temperature_c: trial.temperature_c,
                t_aggon,
                site_row: trial.row,
                ac,
                flips,
                max_ber,
            }
        })
        .collect()
}

/// The highest per-row bit error rate in a flip set.
pub fn max_ber_per_row(flips: &[Bitflip], bits_per_row: u32) -> f64 {
    let mut per_row: BTreeMap<u32, usize> = BTreeMap::new();
    for f in flips {
        *per_row.entry(f.addr.row.0).or_default() += 1;
    }
    per_row
        .values()
        .map(|&c| c as f64 / f64::from(bits_per_row))
        .fold(0.0, f64::max)
}

/// Groups bitflips into 64-bit data words and returns the number of flips in
/// each erroneous word (the unit of the ECC analysis, Fig. 25/26).
pub fn bitflips_per_word(flips: &[Bitflip], word_bits: u32) -> Vec<usize> {
    let mut per_word: BTreeMap<(u32, u32, u32), usize> = BTreeMap::new();
    for f in flips {
        let key = (
            f.addr.bank.0 as u32,
            f.addr.row.0,
            f.addr.column.0 / word_bits,
        );
        *per_word.entry(key).or_default() += 1;
    }
    per_word.into_values().collect()
}

// ---------------------------------------------------------------------------
// RowPress-ONOFF (Fig. 22, Appendix C.1)
// ---------------------------------------------------------------------------

/// One BER measurement of the RowPress-ONOFF pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnOffRecord {
    /// Module the measurement came from.
    pub module: ModuleKey,
    /// Access-pattern family used.
    pub kind: PatternKind,
    /// Chip temperature during the measurement.
    pub temperature_c: f64,
    /// Slack added on top of tRC (ΔtA2A).
    pub delta_a2a: Time,
    /// Fraction of the slack assigned to the on time.
    pub on_fraction: f64,
    /// Number of activations issued (the budget maximum).
    pub ac: u64,
    /// Maximum per-victim-row bit error rate.
    pub ber: f64,
}

/// Runs the RowPress-ONOFF study of §5.4: fix tA2A = tRC + Δ and sweep how
/// much of Δ goes to the on time.
pub fn onoff_sweep(
    cfg: &ExperimentConfig,
    modules: &[ModuleSpec],
    kinds: &[PatternKind],
    deltas: &[Time],
    on_fractions: &[f64],
    temperatures: &[f64],
) -> Vec<OnOffRecord> {
    let measurements: Vec<Measurement> = deltas
        .iter()
        .flat_map(|&delta| {
            on_fractions.iter().map(move |&frac| Measurement::OnOff {
                delta_a2a: delta,
                on_fraction: frac,
            })
        })
        .collect();
    let plan = Plan::grid(cfg)
        .modules(modules)
        .temperatures(temperatures)
        .kinds(kinds)
        .measurements(measurements)
        .build();
    let records = run_study_plan(cfg, &plan).expect("valid site");
    records
        .into_iter()
        .map(|TrialRecord { trial, outcome, .. }| {
            let Measurement::OnOff {
                delta_a2a,
                on_fraction,
            } = trial.measurement
            else {
                unreachable!("ONOFF plans only contain ONOFF measurements");
            };
            let TrialOutcome::OnOff { ac, flips } = outcome else {
                unreachable!("ONOFF trials produce ONOFF outcomes");
            };
            OnOffRecord {
                module: ModuleKey::of(&trial.spec),
                kind: trial.kind,
                temperature_c: trial.temperature_c,
                delta_a2a,
                on_fraction,
                ac,
                ber: max_ber_per_row(&flips, cfg.geometry.bits_per_row),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Retention failures and overlap analysis (§4.3, Fig. 10/11)
// ---------------------------------------------------------------------------

/// Cells that fail a data-retention test: rows initialized with the study's
/// data pattern and left unrefreshed for `duration` at `temperature_c`
/// (the paper uses 4 s at 80 °C).
pub fn retention_failures(
    cfg: &ExperimentConfig,
    spec: &ModuleSpec,
    temperature_c: f64,
    duration: Time,
) -> DramResult<HashSet<CellAddr>> {
    let plan = Plan::grid(cfg)
        .module(spec)
        .temperatures(&[temperature_c])
        .measurement(Measurement::Retention { duration })
        .build();
    let records = run_study_plan(cfg, &plan)?;
    Ok(records
        .into_iter()
        .flat_map(|record| {
            let TrialOutcome::Retention { flips } = record.outcome else {
                unreachable!("retention trials produce retention outcomes");
            };
            flips
        })
        .map(|f| f.addr)
        .collect())
}

/// Overlap between two cell populations: `|a ∩ b| / |a|`; zero when `a` is
/// empty.
pub fn overlap_ratio(a: &HashSet<CellAddr>, b: &HashSet<CellAddr>) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let inter = a.iter().filter(|c| b.contains(c)).count();
    inter as f64 / a.len() as f64
}

/// Overlap of RowPress-vulnerable cells (at a given tAggON) with
/// RowHammer-vulnerable cells (tAggON = tRAS) and with retention-failure
/// cells, per die — the analysis of Fig. 10/11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapRecord {
    /// Module the measurement came from.
    pub module: ModuleKey,
    /// Aggressor-row-on time of the RowPress cell population.
    pub t_aggon: Time,
    /// Fraction of RowPress cells that are also RowHammer cells.
    pub with_hammer: f64,
    /// Fraction of RowPress cells that are also retention-failure cells.
    pub with_retention: f64,
    /// Size of the RowPress cell population.
    pub press_cells: usize,
}

/// Computes per-(module, tAggON) overlap ratios from engine-produced ACmin
/// records ([`acmin_sweep`]) and retention populations
/// ([`retention_failures`]). The records at the smallest tAggON (tRAS) serve
/// as the RowHammer reference population; this function itself is pure
/// aggregation — both of its cell populations come out of [`Engine`] runs.
pub fn overlap_analysis(
    records: &[AcMinRecord],
    retention: &BTreeMap<String, HashSet<CellAddr>>,
) -> Vec<OverlapRecord> {
    // RowHammer reference: flips at the smallest tAggON per module.
    let t_ras_ps = records.iter().map(|r| r.t_aggon.as_ps()).min().unwrap_or(0);
    let mut hammer_cells: BTreeMap<String, HashSet<CellAddr>> = BTreeMap::new();
    for r in records.iter().filter(|r| r.t_aggon.as_ps() == t_ras_ps) {
        hammer_cells
            .entry(r.module.module_id.clone())
            .or_default()
            .extend(r.flip_cells.iter().copied());
    }
    // Press populations per (module, tAggON).
    let mut press: BTreeMap<(String, u64), HashSet<CellAddr>> = BTreeMap::new();
    let mut keys: BTreeMap<(String, u64), ModuleKey> = BTreeMap::new();
    for r in records.iter().filter(|r| r.t_aggon.as_ps() > t_ras_ps) {
        let key = (r.module.module_id.clone(), r.t_aggon.as_ps());
        press
            .entry(key.clone())
            .or_default()
            .extend(r.flip_cells.iter().copied());
        keys.entry(key).or_insert_with(|| r.module.clone());
    }
    let empty = HashSet::new();
    press
        .into_iter()
        .map(|((module_id, t_ps), cells)| {
            let hammer = hammer_cells.get(&module_id).unwrap_or(&empty);
            let ret = retention.get(&module_id).unwrap_or(&empty);
            OverlapRecord {
                module: keys[&(module_id.clone(), t_ps)].clone(),
                t_aggon: Time::from_ps(t_ps),
                with_hammer: overlap_ratio(&cells, hammer),
                with_retention: overlap_ratio(&cells, ret),
                press_cells: cells.len(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Data-pattern sensitivity (§5.3, Fig. 19/20)
// ---------------------------------------------------------------------------

/// Mean ACmin of one data pattern at one tAggON, normalized to the
/// checkerboard pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPatternRecord {
    /// Module the measurement came from.
    pub module: ModuleKey,
    /// Access-pattern family used.
    pub kind: PatternKind,
    /// Chip temperature during the measurement.
    pub temperature_c: f64,
    /// Data pattern evaluated.
    pub pattern: DataPattern,
    /// Aggressor-row-on time.
    pub t_aggon: Time,
    /// Mean ACmin across tested rows; `None` when no bitflips could be induced.
    pub mean_ac_min: Option<f64>,
    /// Mean ACmin normalized to the checkerboard pattern at the same tAggON.
    pub normalized_to_cb: Option<f64>,
}

/// Runs the data-pattern sensitivity study (§5.3) for one module.
pub fn data_pattern_sweep(
    cfg: &ExperimentConfig,
    spec: &ModuleSpec,
    kind: PatternKind,
    patterns: &[DataPattern],
    t_aggons: &[Time],
    temperature_c: f64,
) -> Vec<DataPatternRecord> {
    let plan = Plan::grid(cfg)
        .module(spec)
        .temperatures(&[temperature_c])
        .kind(kind)
        .data_patterns(patterns)
        .measurements(t_aggons.iter().map(|&t| Measurement::AcMin { t_aggon: t }))
        .build();
    let trial_records = run_study_plan(cfg, &plan).expect("valid site");

    // Mean ACmin across tested rows per (pattern, tAggON).
    let mut values: BTreeMap<(DataPattern, u64), Vec<f64>> = BTreeMap::new();
    for record in trial_records {
        let Measurement::AcMin { t_aggon } = record.trial.measurement else {
            unreachable!("ACmin plans only contain ACmin measurements");
        };
        let TrialOutcome::AcMin { ac_min, .. } = record.outcome else {
            unreachable!("ACmin trials produce ACmin outcomes");
        };
        let entry = values
            .entry((record.trial.data_pattern, t_aggon.as_ps()))
            .or_default();
        if let Some(ac) = ac_min {
            entry.push(ac as f64);
        }
    }
    let means: BTreeMap<(DataPattern, u64), Option<f64>> = values
        .into_iter()
        .map(|(k, v)| (k, crate::stats::mean(&v)))
        .collect();

    let mut records = Vec::new();
    for &pattern in patterns {
        for &t_aggon in t_aggons {
            let mean_ac_min = means.get(&(pattern, t_aggon.as_ps())).copied().flatten();
            let cb = means
                .get(&(DataPattern::Checkerboard, t_aggon.as_ps()))
                .copied()
                .flatten();
            let normalized_to_cb = match (mean_ac_min, cb) {
                (Some(m), Some(c)) if c > 0.0 => Some(m / c),
                _ => None,
            };
            records.push(DataPatternRecord {
                module: ModuleKey::of(spec),
                kind,
                temperature_c,
                pattern,
                t_aggon,
                mean_ac_min,
                normalized_to_cb,
            });
        }
    }
    records
}

// ---------------------------------------------------------------------------
// Repeatability (Appendix E)
// ---------------------------------------------------------------------------

/// Histogram of how often each bitflip recurs across repeated iterations of
/// the same experiment (Appendix E, Fig. 42–45).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepeatabilityRecord {
    /// Module the measurement came from.
    pub module: ModuleKey,
    /// Aggressor-row-on time.
    pub t_aggon: Time,
    /// Number of iterations run.
    pub iterations: u32,
    /// `occurrences[k-1]` = number of distinct bitflips observed in exactly
    /// `k` of the iterations.
    pub occurrences: Vec<usize>,
}

impl RepeatabilityRecord {
    /// Fraction of bitflips that occurred in every iteration.
    pub fn fully_repeatable_fraction(&self) -> f64 {
        let total: usize = self.occurrences.iter().sum();
        if total == 0 {
            return 0.0;
        }
        *self.occurrences.last().unwrap_or(&0) as f64 / total as f64
    }
}

/// Repeats the at-ACmax measurement `iterations` times with per-iteration
/// threshold jitter and reports how often each bitflip recurs. The jitter
/// models run-to-run variation of borderline cells; `jitter_sigma = 0` makes
/// every flip perfectly repeatable (and lets the engine's trial cache collapse
/// the iterations into one computation).
pub fn repeatability_study(
    cfg: &ExperimentConfig,
    spec: &ModuleSpec,
    kind: PatternKind,
    t_aggon: Time,
    temperature_c: f64,
    iterations: u32,
    jitter_sigma: f64,
) -> RepeatabilityRecord {
    let plan = Plan::grid(cfg)
        .module(spec)
        .temperatures(&[temperature_c])
        .kind(kind)
        .jitters((0..iterations).map(|i| Jitter::seeded(jitter_sigma, u64::from(i) + 1)))
        .measurement(Measurement::AcMax { t_aggon })
        .build();
    let records = run_study_plan(cfg, &plan).expect("valid site");
    let mut counts: BTreeMap<CellAddr, usize> = BTreeMap::new();
    for record in records {
        let TrialOutcome::AcMax { flips, .. } = record.outcome else {
            unreachable!("ACmax trials produce ACmax outcomes");
        };
        for f in flips {
            *counts.entry(f.addr).or_default() += 1;
        }
    }
    let mut occurrences = vec![0usize; iterations as usize];
    for (_, c) in counts {
        let idx = c.min(iterations as usize);
        if idx > 0 {
            occurrences[idx - 1] += 1;
        }
    }
    RepeatabilityRecord {
        module: ModuleKey::of(spec),
        t_aggon,
        iterations,
        occurrences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpress_dram::module_inventory;

    fn spec(id: &str) -> ModuleSpec {
        module_inventory().into_iter().find(|m| m.id == id).unwrap()
    }

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test_scale()
    }

    #[test]
    fn acmin_sweep_produces_one_record_per_point() {
        let cfg = cfg();
        let taggons = [Time::from_ns(36.0), Time::from_ms(30.0)];
        let records = acmin_sweep(
            &cfg,
            &[spec("S3")],
            PatternKind::SingleSided,
            &[50.0],
            &taggons,
        );
        assert_eq!(records.len(), cfg.rows_per_module as usize * taggons.len());
        // The D-die flips at both points; ACmin at 30 ms is far smaller.
        let by_die = acmin_by_die(&records);
        let hammer = by_die[&(
            "8Gb D-Die".to_string(),
            Manufacturer::S,
            Time::from_ns(36.0).as_ps(),
        )];
        let press = by_die[&(
            "8Gb D-Die".to_string(),
            Manufacturer::S,
            Time::from_ms(30.0).as_ps(),
        )];
        assert!(press.mean < hammer.mean / 100.0);
    }

    #[test]
    fn fraction_rows_and_direction_aggregations() {
        let cfg = cfg();
        let taggons = [Time::from_ns(36.0), Time::from_ms(30.0)];
        let records = acmin_sweep(
            &cfg,
            &[spec("S3")],
            PatternKind::SingleSided,
            &[50.0],
            &taggons,
        );
        let fractions = fraction_rows_with_flips(&records);
        let press_frac = fractions[&("8Gb D-Die".to_string(), Time::from_ms(30.0).as_ps())];
        assert!(
            press_frac > 0.5,
            "most D-die rows flip at 30 ms, got {press_frac}"
        );
        let directions = fraction_one_to_zero(&records);
        // RowHammer flips are dominantly 0->1, RowPress flips dominantly 1->0
        // for a die with few anti-cells (Obsv. 8).
        let hammer_dir = directions[&("8Gb D-Die".to_string(), Time::from_ns(36.0).as_ps())];
        let press_dir = directions[&("8Gb D-Die".to_string(), Time::from_ms(30.0).as_ps())];
        assert!(hammer_dir < 0.5, "hammer 1->0 fraction = {hammer_dir}");
        assert!(press_dir > 0.5, "press 1->0 fraction = {press_dir}");
    }

    #[test]
    fn taggonmin_sweep_shows_inverse_relationship() {
        let cfg = cfg();
        let records = taggonmin_sweep(&cfg, &[spec("S0")], &[1, 1000], &[50.0]);
        let at = |ac: u64| -> Vec<f64> {
            records
                .iter()
                .filter(|r| r.ac == ac)
                .filter_map(|r| r.t_aggon_min.map(|t| t.as_us()))
                .collect()
        };
        let t1 = crate::stats::mean(&at(1)).expect("AC=1 flips on S0");
        let t1000 = crate::stats::mean(&at(1000)).expect("AC=1000 flips on S0");
        assert!(t1 / t1000 > 100.0, "t1 = {t1}, t1000 = {t1000}");
    }

    #[test]
    fn acmax_sweep_reports_ber() {
        let cfg = cfg();
        let records = acmax_sweep(
            &cfg,
            &[spec("S3")],
            PatternKind::SingleSided,
            &[80.0],
            &[Time::from_us(7.8)],
        );
        assert_eq!(records.len(), cfg.rows_per_module as usize);
        assert!(records.iter().any(|r| r.max_ber > 0.0));
        for r in &records {
            assert_eq!(
                r.max_ber,
                max_ber_per_row(&r.flips, cfg.geometry.bits_per_row)
            );
            assert!(r.ac > 1000);
        }
    }

    #[test]
    fn bitflips_per_word_groups_by_64_bits() {
        let cfg = cfg();
        let records = acmax_sweep(
            &cfg,
            &[spec("S3")],
            PatternKind::SingleSided,
            &[80.0],
            &[Time::from_us(7.8)],
        );
        let all_flips: Vec<Bitflip> = records.iter().flat_map(|r| r.flips.clone()).collect();
        let words = bitflips_per_word(&all_flips, 64);
        let total: usize = words.iter().sum();
        assert_eq!(total, all_flips.len());
        assert!(words.iter().all(|&c| c >= 1));
    }

    #[test]
    fn onoff_sweep_single_sided_shapes() {
        let cfg = cfg();
        let records = onoff_sweep(
            &cfg,
            &[spec("S3")],
            &[PatternKind::SingleSided],
            &[Time::from_ns(240.0), Time::from_ns(6000.0)],
            &[0.0, 1.0],
            &[50.0],
        );
        assert_eq!(records.len(), cfg.rows_per_module as usize * 4);
        let mean_ber = |delta_ns: f64, frac: f64| -> f64 {
            let v: Vec<f64> = records
                .iter()
                .filter(|r| {
                    (r.delta_a2a.as_ns() - delta_ns).abs() < 1.0
                        && (r.on_fraction - frac).abs() < 1e-9
                })
                .map(|r| r.ber)
                .collect();
            crate::stats::mean(&v).unwrap_or(0.0)
        };
        // Small slack: hammer dominates, and shifting the slack to the on time
        // removes the off-time boost, so BER does not increase (Obsv. 16).
        assert!(mean_ber(240.0, 1.0) <= mean_ber(240.0, 0.0) + 1e-12);
        // Large slack: press dominates, so BER grows with the on fraction.
        assert!(mean_ber(6000.0, 1.0) >= mean_ber(6000.0, 0.0));
    }

    #[test]
    fn retention_and_overlap_analysis() {
        let cfg = cfg();
        let s3 = spec("S3");
        let retention_cells = retention_failures(&cfg, &s3, 80.0, Time::from_secs(4.0)).unwrap();
        let mut retention = BTreeMap::new();
        retention.insert("S3".to_string(), retention_cells);

        let taggons = [Time::from_ns(36.0), Time::from_ms(30.0)];
        let records = acmin_sweep(&cfg, &[s3], PatternKind::SingleSided, &[50.0], &taggons);
        let overlaps = overlap_analysis(&records, &retention);
        assert!(!overlaps.is_empty());
        for o in &overlaps {
            assert!(o.t_aggon > Time::from_ns(36.0));
            assert!(
                o.with_hammer <= 0.05,
                "RowPress/RowHammer overlap must be tiny, got {}",
                o.with_hammer
            );
            assert!(
                o.with_retention <= 0.05,
                "RowPress/retention overlap must be tiny, got {}",
                o.with_retention
            );
            assert!(o.press_cells > 0);
        }
    }

    #[test]
    fn overlap_ratio_basics() {
        let a: HashSet<CellAddr> = HashSet::new();
        let b: HashSet<CellAddr> = HashSet::new();
        assert_eq!(overlap_ratio(&a, &b), 0.0);
    }

    #[test]
    fn data_pattern_study_prefers_checkerboard_for_press() {
        let cfg = cfg();
        let records = data_pattern_sweep(
            &cfg,
            &spec("S0"),
            PatternKind::SingleSided,
            &[DataPattern::Checkerboard, DataPattern::RowStripe],
            &[Time::from_ns(36.0), Time::from_ms(6.0)],
            50.0,
        );
        assert_eq!(records.len(), 4);
        // Checkerboard normalizes to 1.0 against itself.
        for r in records
            .iter()
            .filter(|r| r.pattern == DataPattern::Checkerboard)
        {
            if let Some(n) = r.normalized_to_cb {
                assert!((n - 1.0).abs() < 1e-9);
            }
        }
        // RowStripe is the better hammer pattern (normalized < 1 at tRAS) but a
        // much worse press pattern (normalized > 1 or no bitflips at 6 ms).
        let rs_hammer = records
            .iter()
            .find(|r| r.pattern == DataPattern::RowStripe && r.t_aggon == Time::from_ns(36.0))
            .unwrap();
        if let Some(n) = rs_hammer.normalized_to_cb {
            assert!(
                n <= 1.05,
                "RowStripe should be competitive for RowHammer, got {n}"
            );
        }
        let rs_press = records
            .iter()
            .find(|r| r.pattern == DataPattern::RowStripe && r.t_aggon == Time::from_ms(6.0))
            .unwrap();
        // `None` means no bitflips at all: the paper's "No Bitflip" cells.
        if let Some(n) = rs_press.normalized_to_cb {
            assert!(
                n > 1.0,
                "RowStripe must be worse than CB for RowPress, got {n}"
            );
        }
    }

    #[test]
    fn repeatability_is_total_without_jitter_and_partial_with() {
        let cfg = cfg();
        let deterministic = repeatability_study(
            &cfg,
            &spec("S3"),
            PatternKind::SingleSided,
            Time::from_us(70.2),
            80.0,
            5,
            0.0,
        );
        assert_eq!(deterministic.iterations, 5);
        assert_eq!(deterministic.occurrences.len(), 5);
        let total: usize = deterministic.occurrences.iter().sum();
        assert!(total > 0, "the D-die flips at 70.2 us / 80 C");
        assert!((deterministic.fully_repeatable_fraction() - 1.0).abs() < 1e-9);

        let jittered = repeatability_study(
            &cfg,
            &spec("S3"),
            PatternKind::SingleSided,
            Time::from_us(70.2),
            80.0,
            5,
            0.35,
        );
        assert!(jittered.fully_repeatable_fraction() <= 1.0);
        let partial: usize = jittered.occurrences[..4].iter().sum();
        assert!(
            partial > 0,
            "with jitter some borderline flips must not repeat every time"
        );
    }
}
