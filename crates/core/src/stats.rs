//! Statistics helpers used to summarize characterization results the way the
//! paper's figures do: box-and-whiskers summaries, means, and log-log slope
//! fits.

use serde::{Deserialize, Serialize};

/// A five-number summary (minimum, first quartile, median, third quartile,
/// maximum) plus the arithmetic mean and count — everything the paper's
/// box-and-whiskers plots (e.g. Fig. 1) report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxSummary {
    /// Smallest value.
    pub min: f64,
    /// First quartile (median of the lower half).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (median of the upper half).
    pub q3: f64,
    /// Largest value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of values summarized.
    pub count: usize,
}

impl BoxSummary {
    /// Summarizes a set of values. Returns `None` for an empty set.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        let median = median_of(&sorted);
        // The paper defines Q1/Q3 as the medians of the first/second halves.
        let (lower, upper) = if n.is_multiple_of(2) {
            (&sorted[..n / 2], &sorted[n / 2..])
        } else {
            (&sorted[..n / 2], &sorted[n / 2 + 1..])
        };
        let q1 = if lower.is_empty() {
            sorted[0]
        } else {
            median_of(lower)
        };
        let q3 = if upper.is_empty() {
            sorted[n - 1]
        } else {
            median_of(upper)
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        Some(BoxSummary {
            min: sorted[0],
            q1,
            median,
            q3,
            max: sorted[n - 1],
            mean,
            count: n,
        })
    }

    /// The interquartile range (box height of the paper's plots).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean; `None` for an empty slice or non-positive values.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        None
    } else {
        Some((values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp())
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the log-log slope the
/// paper fits to the ACmin and tAggONmin trend lines (Obsv. 3, Obsv. 5).
/// Returns `None` with fewer than two valid points or non-positive data.
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// A compact (mean, min, max, count) aggregate used by the per-die series of
/// the sweep figures.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Number of values.
    pub count: usize,
}

impl Aggregate {
    /// Aggregates a set of values; `None` when empty.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Some(Aggregate {
            mean: sum / values.len() as f64,
            min,
            max,
            count: values.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_summary_of_known_set() {
        let s = BoxSummary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.median, 4.5);
        assert_eq!(s.q1, 2.5);
        assert_eq!(s.q3, 6.5);
        assert_eq!(s.iqr(), 4.0);
        assert_eq!(s.count, 8);
        assert!((s.mean - 4.5).abs() < 1e-12);
    }

    #[test]
    fn box_summary_odd_count_excludes_median_from_halves() {
        let s = BoxSummary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 1.5);
        assert_eq!(s.q3, 4.5);
    }

    #[test]
    fn box_summary_edge_cases() {
        assert!(BoxSummary::from_values(&[]).is_none());
        assert!(BoxSummary::from_values(&[f64::NAN]).is_none());
        let s = BoxSummary::from_values(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(mean(&[]), None);
        assert!((geometric_mean(&[1.0, 100.0]).unwrap() - 10.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[1.0, -1.0]), None);
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    fn loglog_slope_of_inverse_law_is_minus_one() {
        // y = c / x has slope -1 in log-log scale — exactly the ACmin vs
        // tAggON relationship the paper reports beyond tREFI.
        let points: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 1000.0 / i as f64)).collect();
        let slope = loglog_slope(&points).unwrap();
        assert!((slope + 1.0).abs() < 1e-9, "slope = {slope}");
        // A power law y = x^2 has slope 2.
        let points: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&points).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_slope_rejects_degenerate_inputs() {
        assert!(loglog_slope(&[]).is_none());
        assert!(loglog_slope(&[(1.0, 2.0)]).is_none());
        assert!(loglog_slope(&[(0.0, 2.0), (-1.0, 3.0)]).is_none());
        assert!(loglog_slope(&[(2.0, 5.0), (2.0, 7.0)]).is_none());
    }

    #[test]
    fn aggregate_matches_hand_computation() {
        let a = Aggregate::from_values(&[1.0, 3.0, 8.0]).unwrap();
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 8.0);
        assert_eq!(a.count, 3);
        assert!((a.mean - 4.0).abs() < 1e-12);
        assert!(Aggregate::from_values(&[]).is_none());
    }
}
