//! # rowpress-core
//!
//! The RowPress characterization methodology (the paper's primary
//! contribution, §4 and §5) implemented against the behavioural DRAM device
//! model of [`rowpress_dram`]:
//!
//! * [`PatternSite`], [`PatternKind`], [`run_pattern`] — the single-sided,
//!   double-sided and ONOFF read-disturb access patterns.
//! * [`find_ac_min`], [`find_t_aggon_min`], [`flips_at_ac_max`] — the
//!   bisection searches behind every ACmin / tAggONmin figure.
//! * [`engine`] — the unified campaign engine, one submodule per layer:
//!   typed [`Trial`]s and shardable [`Plan`] grids (`engine::plan`),
//!   cost-aware dispatch (`engine::schedule`), in-process and persistent
//!   cross-process trial caches (`engine::cache`), streaming [`Sink`]s with
//!   a threaded writer adapter and a merge-sorting JSONL reader
//!   (`engine::sink`), and the bounded-pool [`Engine`] (`engine::worker`).
//! * [`acmin_sweep`], [`taggonmin_sweep`], [`acmax_sweep`], [`onoff_sweep`],
//!   [`data_pattern_sweep`], [`retention_failures`], [`overlap_analysis`],
//!   [`repeatability_study`] — the study drivers that generate the paper's
//!   figures, all expressed as plans on the engine.
//! * [`stats`] — box summaries, log-log slope fits and aggregation helpers.
//!
//! # Example: find ACmin for a RowPress pattern
//!
//! ```
//! use rowpress_core::{find_ac_min, ExperimentConfig, PatternKind, PatternSite};
//! use rowpress_dram::{module_inventory, BankId, DataPattern, DramModule, Geometry, RowId, Time};
//!
//! let spec = module_inventory().remove(0);
//! let cfg = ExperimentConfig::test_scale();
//! let mut module = DramModule::new(&spec, cfg.geometry);
//! let site = PatternSite::for_kind(PatternKind::SingleSided, BankId(1), RowId(20), cfg.geometry.rows_per_bank);
//!
//! // Keeping the row open for 30 ms needs only a handful of activations.
//! let outcome = find_ac_min(&mut module, &site, Time::from_ms(30.0), DataPattern::Checkerboard, &cfg)?
//!     .expect("the Samsung 8Gb B-die is RowPress-vulnerable");
//! assert!(outcome.ac_min <= 3);
//! # Ok::<(), rowpress_dram::DramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
mod config;
pub mod engine;
mod patterns;
mod search;
pub mod stats;
mod studies;

pub use config::ExperimentConfig;
pub use engine::{
    lookup_module, CostModel, Engine, EngineError, Jitter, JsonlReader, JsonlSink, Measurement,
    MemorySink, PersistentCache, Plan, PlanBuilder, SchedulePolicy, Sink, ThreadedSink, Trial,
    TrialCache, TrialOutcome, TrialRecord,
};
pub use patterns::{
    apply_pattern, initialize_site, run_pattern, run_pattern_any_flip, run_pattern_into,
    PatternInstance, PatternKind, PatternSite,
};
pub use search::{
    find_ac_min, find_ac_min_with, find_t_aggon_min, flips_at_ac_max, flips_at_ac_max_with,
    AcMinOutcome, TrialScratch,
};
pub use studies::{
    acmax_sweep, acmin_by_die, acmin_sweep, bitflips_per_word, data_pattern_sweep,
    fraction_one_to_zero, fraction_rows_with_flips, max_ber_per_row, onoff_sweep, overlap_analysis,
    overlap_ratio, repeatability_study, retention_failures, taggonmin_sweep, AcMaxRecord,
    AcMinRecord, DataPatternRecord, ModuleKey, OnOffRecord, OverlapRecord, RepeatabilityRecord,
    TAggOnMinRecord, TEST_BANK,
};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExperimentConfig>();
        assert_send_sync::<AcMinRecord>();
        assert_send_sync::<PatternSite>();
    }
}
