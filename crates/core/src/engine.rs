//! The unified campaign engine: typed trials, declarative plans, a bounded
//! worker pool, streaming sinks and an in-process result cache.
//!
//! Every figure of the paper is a slice of one big grid of
//! (module × temperature × site × pattern × tAggON) experiments. Instead of
//! each study driver re-implementing that grid as bespoke nested loops fanned
//! out one-OS-thread-per-module, the engine factors the grid into four
//! orthogonal pieces:
//!
//! * [`Trial`] — one point of the grid: which module, at which temperature,
//!   which aggressor site, which data pattern, and which [`Measurement`] to
//!   take there.
//! * [`Plan`] — an ordered list of trials, typically built declaratively with
//!   [`Plan::grid`]'s [`PlanBuilder`].
//! * [`Engine`] — executes a plan on a bounded pool of at most
//!   [`crate::campaign::worker_count`] workers (shared-queue scheduling, so an
//!   expensive trial never idles the rest of the pool) and memoizes outcomes
//!   in a [`Trial`]-keyed cache. Overlapping figures — e.g. the shared 50 °C
//!   ACmin sweep behind Figs. 6–8 — therefore compute each trial once per
//!   process.
//! * [`Sink`] — receives the resulting [`TrialRecord`] stream: collect in
//!   memory ([`MemorySink`]) or stream to JSON Lines ([`JsonlSink`]).
//!
//! Results are deterministic: records always arrive in plan order and each
//! trial runs on a freshly constructed module, so the record stream is
//! byte-for-byte identical regardless of the worker count.
//!
//! # Example
//!
//! ```
//! use rowpress_core::engine::{Engine, Measurement, Plan};
//! use rowpress_core::ExperimentConfig;
//! use rowpress_dram::{module_inventory, Time};
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&module_inventory()[0])
//!     .measurement(Measurement::AcMin { t_aggon: Time::from_ms(30.0) })
//!     .build();
//! let records = Engine::new(&cfg).run_collect(&plan).unwrap();
//! assert_eq!(records.len(), cfg.tested_sites().len());
//! ```

use crate::config::ExperimentConfig;
use crate::patterns::{run_pattern, PatternInstance, PatternKind, PatternSite};
use crate::search::{find_ac_min, find_t_aggon_min, flips_at_ac_max};
use rowpress_dram::{
    BankId, Bitflip, DataPattern, DramError, DramModule, DramResult, FlipMechanism, ModuleSpec,
    RowId, RowRole, Time,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The bank the paper tests (bank 1 of every module).
pub const TEST_BANK: BankId = BankId(1);

// ---------------------------------------------------------------------------
// Trial
// ---------------------------------------------------------------------------

/// Per-trial threshold jitter, modeling run-to-run variation of borderline
/// cells (paper Appendix E). `sigma = 0` (the default) makes the device fully
/// deterministic.
///
/// Equality (like that of [`Measurement`] and [`Trial`]) compares the float
/// field *bitwise*, matching the `Hash` implementation exactly so the types
/// uphold the `Eq`/`Hash` contract for any input — including `NaN` (equal to
/// itself here) and `-0.0` (distinct from `0.0`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Jitter {
    /// Lognormal sigma of the per-cell threshold factor.
    pub sigma: f64,
    /// Salt deriving the per-cell deviates; vary it per iteration.
    pub salt: u64,
}

impl Jitter {
    /// No jitter: the deterministic device.
    pub fn none() -> Self {
        Jitter {
            sigma: 0.0,
            salt: 0,
        }
    }

    /// Jitter with the given sigma and salt. A zero sigma normalizes the salt
    /// to 0 (the device ignores the salt then), which lets the trial cache
    /// recognize iterations of a deterministic experiment as identical.
    pub fn seeded(sigma: f64, salt: u64) -> Self {
        if sigma == 0.0 {
            Jitter::none()
        } else {
            Jitter { sigma, salt }
        }
    }
}

impl Default for Jitter {
    fn default() -> Self {
        Jitter::none()
    }
}

impl PartialEq for Jitter {
    fn eq(&self, other: &Self) -> bool {
        self.sigma.to_bits() == other.sigma.to_bits() && self.salt == other.salt
    }
}

impl Eq for Jitter {}

impl Hash for Jitter {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sigma.to_bits().hash(state);
        self.salt.hash(state);
    }
}

/// The measurement taken at one trial point — the paper study it belongs to.
///
/// Equality compares float fields bitwise (see [`Jitter`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Measurement {
    /// Bisection search for the minimum activation count that flips a bit at
    /// a fixed aggressor-on time (§4.1, Figs. 1 and 6–18).
    AcMin {
        /// Aggressor-row-on time.
        t_aggon: Time,
    },
    /// All bitflips at the maximum activation count that fits the 60 ms
    /// budget (Fig. 11, Fig. 22, Tables 6/9).
    AcMax {
        /// Aggressor-row-on time.
        t_aggon: Time,
    },
    /// Bisection search for the minimum aggressor-on time that flips a bit at
    /// a fixed activation count (§4.2, Figs. 9 and 15).
    TAggOnMin {
        /// Fixed total activation count.
        ac: u64,
    },
    /// The RowPress-ONOFF pattern: tA2A fixed to tRC + Δ with a fraction of
    /// the slack assigned to the on time (§5.4, Fig. 22).
    OnOff {
        /// Slack added on top of tRC (ΔtA2A).
        delta_a2a: Time,
        /// Fraction of the slack assigned to the on time.
        on_fraction: f64,
    },
    /// Data-retention test: victims initialized and left unrefreshed (§4.3,
    /// the retention population of Fig. 10/11).
    Retention {
        /// Unrefreshed idle time (4 s at 80 °C in the paper).
        duration: Time,
    },
}

impl PartialEq for Measurement {
    fn eq(&self, other: &Self) -> bool {
        use Measurement::*;
        match (self, other) {
            (AcMin { t_aggon: a }, AcMin { t_aggon: b })
            | (AcMax { t_aggon: a }, AcMax { t_aggon: b }) => a == b,
            (TAggOnMin { ac: a }, TAggOnMin { ac: b }) => a == b,
            (
                OnOff {
                    delta_a2a: a,
                    on_fraction: fa,
                },
                OnOff {
                    delta_a2a: b,
                    on_fraction: fb,
                },
            ) => a == b && fa.to_bits() == fb.to_bits(),
            (Retention { duration: a }, Retention { duration: b }) => a == b,
            _ => false,
        }
    }
}

impl Eq for Measurement {}

impl Hash for Measurement {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Measurement::AcMin { t_aggon } | Measurement::AcMax { t_aggon } => t_aggon.hash(state),
            Measurement::TAggOnMin { ac } => ac.hash(state),
            Measurement::OnOff {
                delta_a2a,
                on_fraction,
            } => {
                delta_a2a.hash(state);
                on_fraction.to_bits().hash(state);
            }
            Measurement::Retention { duration } => duration.hash(state),
        }
    }
}

/// One point of the characterization grid: everything needed to reproduce a
/// single measurement, and the key of the engine's result cache.
///
/// Equality compares the temperature bitwise (see [`Jitter`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// Module under test.
    pub spec: ModuleSpec,
    /// Chip temperature in °C.
    pub temperature_c: f64,
    /// Access-pattern family laid out around the tested row.
    pub kind: PatternKind,
    /// The tested (aggressor-site) row.
    pub row: RowId,
    /// Data pattern filling aggressor and victim rows.
    pub data_pattern: DataPattern,
    /// Per-trial threshold jitter (Appendix E); defaults to none.
    pub jitter: Jitter,
    /// The measurement to take.
    pub measurement: Measurement,
}

impl PartialEq for Trial {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.temperature_c.to_bits() == other.temperature_c.to_bits()
            && self.kind == other.kind
            && self.row == other.row
            && self.data_pattern == other.data_pattern
            && self.jitter == other.jitter
            && self.measurement == other.measurement
    }
}

impl Eq for Trial {}

impl Hash for Trial {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.spec.hash(state);
        self.temperature_c.to_bits().hash(state);
        self.kind.hash(state);
        self.row.hash(state);
        self.data_pattern.hash(state);
        self.jitter.hash(state);
        self.measurement.hash(state);
    }
}

/// The outcome of one trial, mirroring the [`Measurement`] variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialOutcome {
    /// Outcome of [`Measurement::AcMin`].
    AcMin {
        /// Minimum activation count inducing a bitflip; `None` when even the
        /// budget maximum induces none.
        ac_min: Option<u64>,
        /// Largest activation count that fits the budget, computed on the
        /// same tRAS-clamped code path in both the flip and no-flip cases.
        ac_max: u64,
        /// Bitflips observed at ACmin (empty when `ac_min` is `None`).
        flips: Vec<Bitflip>,
    },
    /// Outcome of [`Measurement::AcMax`].
    AcMax {
        /// The activation count used (the budget maximum).
        ac: u64,
        /// All victim bitflips.
        flips: Vec<Bitflip>,
    },
    /// Outcome of [`Measurement::TAggOnMin`].
    TAggOnMin {
        /// Minimum aggressor-on time inducing a bitflip, if any.
        t_aggon_min: Option<Time>,
    },
    /// Outcome of [`Measurement::OnOff`].
    OnOff {
        /// Number of activations issued (the budget maximum for the cycle).
        ac: u64,
        /// All victim bitflips.
        flips: Vec<Bitflip>,
    },
    /// Outcome of [`Measurement::Retention`].
    Retention {
        /// Retention-failure bitflips in the site's victim rows.
        flips: Vec<Bitflip>,
    },
}

/// A trial together with its outcome: the unit streamed to [`Sink`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialRecord {
    /// The executed trial.
    pub trial: Trial,
    /// Its outcome.
    pub outcome: TrialOutcome,
}

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// An ordered list of trials. Execution results always stream in plan order.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    trials: Vec<Trial>,
}

impl Plan {
    /// Starts a declarative grid builder over the configuration's defaults.
    pub fn grid(cfg: &ExperimentConfig) -> PlanBuilder {
        PlanBuilder {
            cfg: *cfg,
            modules: Vec::new(),
            temperatures: vec![cfg.temperature_c],
            kinds: vec![PatternKind::SingleSided],
            data_patterns: vec![cfg.data_pattern],
            jitters: vec![Jitter::none()],
            rows: None,
            measurements: Vec::new(),
        }
    }

    /// Wraps an explicit trial list (for irregular, non-grid plans).
    pub fn from_trials(trials: Vec<Trial>) -> Self {
        Plan { trials }
    }

    /// The trials in execution order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True if the plan contains no trials.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }
}

/// Builds a [`Plan`] as the cartesian product of its axes, expressing each
/// paper study declaratively.
///
/// Axis defaults come from the [`ExperimentConfig`]: one temperature
/// (`cfg.temperature_c`), the single-sided pattern family, one data pattern
/// (`cfg.data_pattern`), no jitter and the configured tested rows. The
/// nesting order — modules, temperatures, kinds, data patterns, jitters,
/// rows, measurements (innermost) — matches the loop order of the original
/// hand-written drivers, so record streams keep their historical order.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    cfg: ExperimentConfig,
    modules: Vec<ModuleSpec>,
    temperatures: Vec<f64>,
    kinds: Vec<PatternKind>,
    data_patterns: Vec<DataPattern>,
    jitters: Vec<Jitter>,
    rows: Option<Vec<RowId>>,
    measurements: Vec<Measurement>,
}

impl PlanBuilder {
    /// Sets the modules axis.
    pub fn modules(mut self, modules: &[ModuleSpec]) -> Self {
        self.modules = modules.to_vec();
        self
    }

    /// Sets the modules axis to a single module.
    pub fn module(mut self, spec: &ModuleSpec) -> Self {
        self.modules = vec![spec.clone()];
        self
    }

    /// Sets the temperatures axis.
    pub fn temperatures(mut self, temperatures: &[f64]) -> Self {
        self.temperatures = temperatures.to_vec();
        self
    }

    /// Sets the pattern-family axis to a single kind.
    pub fn kind(mut self, kind: PatternKind) -> Self {
        self.kinds = vec![kind];
        self
    }

    /// Sets the pattern-family axis.
    pub fn kinds(mut self, kinds: &[PatternKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Sets the data-pattern axis.
    pub fn data_patterns(mut self, patterns: &[DataPattern]) -> Self {
        self.data_patterns = patterns.to_vec();
        self
    }

    /// Sets the jitter axis (one entry per repetition of the grid).
    pub fn jitters(mut self, jitters: impl IntoIterator<Item = Jitter>) -> Self {
        self.jitters = jitters.into_iter().collect();
        self
    }

    /// Overrides the tested rows (defaults to `cfg.tested_sites()`).
    pub fn rows(mut self, rows: Vec<RowId>) -> Self {
        self.rows = Some(rows);
        self
    }

    /// Sets the measurement axis (innermost).
    pub fn measurements(mut self, measurements: impl IntoIterator<Item = Measurement>) -> Self {
        self.measurements = measurements.into_iter().collect();
        self
    }

    /// Sets the measurement axis to a single measurement.
    pub fn measurement(mut self, measurement: Measurement) -> Self {
        self.measurements = vec![measurement];
        self
    }

    /// Expands the grid into a [`Plan`].
    pub fn build(self) -> Plan {
        let rows = self.rows.unwrap_or_else(|| self.cfg.tested_sites());
        let mut trials = Vec::with_capacity(
            self.modules.len()
                * self.temperatures.len()
                * self.kinds.len()
                * self.data_patterns.len()
                * self.jitters.len()
                * rows.len()
                * self.measurements.len(),
        );
        for spec in &self.modules {
            for &temperature_c in &self.temperatures {
                for &kind in &self.kinds {
                    for &data_pattern in &self.data_patterns {
                        for &jitter in &self.jitters {
                            for &row in &rows {
                                for &measurement in &self.measurements {
                                    trials.push(Trial {
                                        spec: spec.clone(),
                                        temperature_c,
                                        kind,
                                        row,
                                        data_pattern,
                                        jitter,
                                        measurement,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Plan { trials }
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives the record stream of an engine run, in plan order.
pub trait Sink {
    /// Accepts one record (by value — collecting sinks store it without
    /// another copy).
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the underlying writer fails.
    fn accept(&mut self, record: TrialRecord) -> std::io::Result<()>;

    /// Called once after the last record (flush point for buffered sinks).
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the underlying writer fails.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Collects records in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<TrialRecord>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// Consumes the sink, returning the collected records.
    pub fn into_records(self) -> Vec<TrialRecord> {
        self.records
    }
}

impl Sink for MemorySink {
    fn accept(&mut self, record: TrialRecord) -> std::io::Result<()> {
        self.records.push(record);
        Ok(())
    }
}

/// Streams records as JSON Lines (one serde-serialized record per line) to
/// any [`Write`] target. Each line deserializes back into a [`TrialRecord`]
/// with `serde_json::from_str`.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn accept(&mut self, record: TrialRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(&record).map_err(std::io::Error::other)?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// An engine run failed: either a trial hit a device-model error or a sink
/// hit an I/O error.
#[derive(Debug)]
pub enum EngineError {
    /// A trial failed in the device model (e.g. a row out of range).
    Dram(DramError),
    /// A sink failed to write a record.
    Sink(std::io::Error),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Dram(e) => write!(f, "trial failed: {e}"),
            EngineError::Sink(e) => write!(f, "sink failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Dram(e) => Some(e),
            EngineError::Sink(e) => Some(e),
        }
    }
}

impl From<DramError> for EngineError {
    fn from(e: DramError) -> Self {
        EngineError::Dram(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Sink(e)
    }
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

/// The memoized result of one trial. Errors are cached too: the device model
/// is deterministic, so a trial that failed once (e.g. an out-of-range row)
/// fails identically every time.
type CachedOutcome = DramResult<Arc<TrialOutcome>>;

/// A shareable, thread-safe [`Trial`]-keyed outcome cache with hit/miss
/// accounting. Cloning shares the underlying storage.
///
/// Each trial maps to a [`OnceLock`] cell, so concurrent requests for the
/// *same* trial (e.g. the identical iterations of a jitter-free
/// repeatability plan) block on one computation instead of racing to
/// recompute it per worker.
#[derive(Debug, Clone, Default)]
pub struct TrialCache {
    cells: Arc<Mutex<HashMap<Trial, Arc<OnceLock<CachedOutcome>>>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl TrialCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached outcome for `trial`, computing it with `compute`
    /// on first request. Concurrent callers for the same trial wait for the
    /// single in-flight computation.
    fn get_or_compute(
        &self,
        trial: &Trial,
        compute: impl FnOnce() -> DramResult<TrialOutcome>,
    ) -> CachedOutcome {
        let cell = {
            let mut cells = self.cells.lock().expect("cache lock");
            match cells.get(trial) {
                // Hot replay path: no key clone (a Trial clone heap-allocates
                // the module id and date code) when the cell already exists.
                Some(cell) => Arc::clone(cell),
                None => Arc::clone(cells.entry(trial.clone()).or_default()),
            }
        };
        let mut computed = false;
        let outcome = cell.get_or_init(|| {
            computed = true;
            compute().map(Arc::new)
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        outcome.clone()
    }

    /// Number of lookups answered from the cache (including lookups that
    /// waited for another worker's in-flight computation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that computed the trial.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct trials with a completed outcome in the cache.
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .expect("cache lock")
            .values()
            .filter(|c| c.get().is_some())
            .count()
    }

    /// True if no trials are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached outcome (hit/miss counters are kept). For a cache
    /// obtained via [`Engine::shared`] this releases the process-wide memory
    /// held for the configuration — call it between large studies when the
    /// memoized flip vectors are no longer worth their footprint.
    pub fn clear(&self) {
        self.cells.lock().expect("cache lock").clear();
    }
}

/// A hashable fingerprint of the `ExperimentConfig` fields that influence
/// trial outcomes, partitioning the process-wide cache registry. The config's
/// `data_pattern`, `temperature_c` and `rows_per_module` are deliberately
/// *omitted*: trials carry their own pattern, temperature and row, and
/// [`execute_trial`] never reads those config fields — so configs differing
/// only in grid defaults still share byte-identical trials.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ConfigKey {
    banks: u16,
    rows_per_bank: u32,
    bits_per_row: u32,
    bits_per_cache_block: u32,
    budget_ps: u64,
    repeats: u32,
    accuracy_bits: u64,
}

impl ConfigKey {
    fn of(cfg: &ExperimentConfig) -> Self {
        ConfigKey {
            banks: cfg.geometry.banks,
            rows_per_bank: cfg.geometry.rows_per_bank,
            bits_per_row: cfg.geometry.bits_per_row,
            bits_per_cache_block: cfg.geometry.bits_per_cache_block,
            budget_ps: cfg.budget.as_ps(),
            repeats: cfg.repeats,
            accuracy_bits: cfg.accuracy_pct.to_bits(),
        }
    }
}

fn shared_cache(cfg: &ExperimentConfig) -> TrialCache {
    static REGISTRY: OnceLock<Mutex<HashMap<ConfigKey, TrialCache>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    registry
        .lock()
        .expect("cache registry lock")
        .entry(ConfigKey::of(cfg))
        .or_default()
        .clone()
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Executes [`Plan`]s on a bounded worker pool with trial-level caching.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: ExperimentConfig,
    workers: usize,
    cache: TrialCache,
}

impl Engine {
    /// An engine with a private cache and the default bounded pool
    /// (≤ [`crate::campaign::worker_count`] workers).
    pub fn new(cfg: &ExperimentConfig) -> Self {
        Engine {
            cfg: *cfg,
            workers: crate::campaign::worker_count(),
            cache: TrialCache::new(),
        }
    }

    /// An engine sharing the process-wide cache for this configuration. The
    /// study drivers use this, so overlapping figures (the shared 50 °C ACmin
    /// sweep behind Figs. 6–8, say) compute each trial once per process.
    pub fn shared(cfg: &ExperimentConfig) -> Self {
        Engine {
            cfg: *cfg,
            workers: crate::campaign::worker_count(),
            cache: shared_cache(cfg),
        }
    }

    /// Overrides the worker count (values are clamped to at least 1). The
    /// determinism tests use this to prove worker-count independence.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The configuration the engine executes against.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The worker-pool bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine's cache (shared handle; clone-cheap).
    pub fn cache(&self) -> &TrialCache {
        &self.cache
    }

    /// Executes the plan and streams records to `sink` in plan order.
    ///
    /// Records flow to the sink as their outcomes resolve — the run does not
    /// wait for the whole plan before the first record lands. On the first
    /// trial or sink error the remaining trials are aborted (workers finish
    /// only their in-flight trial), and [`Sink::finish`] is called whether
    /// the run succeeded or not, so buffered sinks always flush what they
    /// accepted.
    ///
    /// # Errors
    ///
    /// Returns the first trial or sink error, in plan order.
    pub fn run(&self, plan: &Plan, sink: &mut dyn Sink) -> Result<(), EngineError> {
        let result = self.stream(plan, sink);
        let finished = sink.finish().map_err(EngineError::Sink);
        result.and(finished)
    }

    fn stream(&self, plan: &Plan, sink: &mut dyn Sink) -> Result<(), EngineError> {
        let trials = plan.trials();
        let n = trials.len();
        let workers = self.workers.min(n);
        let record = |trial: &Trial, outcome: Arc<TrialOutcome>| TrialRecord {
            trial: trial.clone(),
            outcome: (*outcome).clone(),
        };

        if workers <= 1 {
            for trial in trials {
                let outcome = self.outcome_for(trial)?;
                sink.accept(record(trial, outcome))?;
            }
            return Ok(());
        }

        // Workers fill per-trial slots off a shared queue; this thread drains
        // the slots in plan order, feeding the sink as each outcome lands.
        // Panics inside a trial are caught in the worker and re-raised here
        // so the drain can never wait on a slot that will not be filled.
        type Slot = Option<std::thread::Result<CachedOutcome>>;
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let slots: Mutex<Vec<Slot>> = Mutex::new((0..n).map(|_| None).collect());
        let ready = Condvar::new();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.outcome_for(&trials[index])
                    }));
                    let mut filled = slots.lock().expect("slot lock");
                    filled[index] = Some(outcome);
                    ready.notify_all();
                });
            }

            for (index, trial) in trials.iter().enumerate() {
                let outcome = {
                    let mut filled = slots.lock().expect("slot lock");
                    loop {
                        if let Some(outcome) = filled[index].take() {
                            break outcome;
                        }
                        filled = ready.wait(filled).expect("slot lock");
                    }
                };
                let step = match outcome {
                    Ok(Ok(outcome)) => sink
                        .accept(record(trial, outcome))
                        .map_err(EngineError::Sink),
                    Ok(Err(e)) => Err(EngineError::Dram(e)),
                    Err(panic) => {
                        abort.store(true, Ordering::Relaxed);
                        std::panic::resume_unwind(panic);
                    }
                };
                if let Err(e) = step {
                    abort.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
            Ok(())
        })
    }

    /// Executes the plan and collects the records in plan order.
    ///
    /// # Errors
    ///
    /// Returns the first trial error, in plan order.
    pub fn run_collect(&self, plan: &Plan) -> DramResult<Vec<TrialRecord>> {
        let mut sink = MemorySink::new();
        match self.run(plan, &mut sink) {
            Ok(()) => Ok(sink.into_records()),
            Err(EngineError::Dram(e)) => Err(e),
            Err(EngineError::Sink(_)) => unreachable!("MemorySink::accept is infallible"),
        }
    }

    fn outcome_for(&self, trial: &Trial) -> CachedOutcome {
        self.cache
            .get_or_compute(trial, || execute_trial(&self.cfg, trial))
    }
}

/// Runs one trial on a freshly constructed module. A fresh module per trial
/// is what makes outcomes independent of scheduling: no state leaks between
/// trials, so any interleaving produces the same records.
fn execute_trial(cfg: &ExperimentConfig, trial: &Trial) -> DramResult<TrialOutcome> {
    let mut module = DramModule::new(&trial.spec, cfg.geometry);
    module.set_temperature(trial.temperature_c);
    if trial.jitter.sigma != 0.0 {
        module.set_flip_jitter(trial.jitter.sigma, trial.jitter.salt);
    }
    let site = PatternSite::for_kind(trial.kind, TEST_BANK, trial.row, cfg.geometry.rows_per_bank);

    match trial.measurement {
        Measurement::AcMin { t_aggon } => {
            match find_ac_min(&mut module, &site, t_aggon, trial.data_pattern, cfg)? {
                Some(outcome) => Ok(TrialOutcome::AcMin {
                    ac_min: Some(outcome.ac_min),
                    ac_max: outcome.ac_max,
                    flips: outcome.flips,
                }),
                // `max_activations_within` clamps tAggON to tRAS internally,
                // so this reports the same ACmax the search bracket used —
                // the no-flip branch no longer diverges for sub-tRAS on-times.
                None => Ok(TrialOutcome::AcMin {
                    ac_min: None,
                    ac_max: module.timing().max_activations_within(t_aggon, cfg.budget),
                    flips: Vec::new(),
                }),
            }
        }
        Measurement::AcMax { t_aggon } => {
            let (ac, flips) =
                flips_at_ac_max(&mut module, &site, t_aggon, trial.data_pattern, cfg)?;
            Ok(TrialOutcome::AcMax { ac, flips })
        }
        Measurement::TAggOnMin { ac } => {
            let t_aggon_min = find_t_aggon_min(&mut module, &site, ac, trial.data_pattern, cfg)?;
            Ok(TrialOutcome::TAggOnMin { t_aggon_min })
        }
        Measurement::OnOff {
            delta_a2a,
            on_fraction,
        } => {
            let timing = *module.timing();
            let t_on = timing.t_ras + delta_a2a * on_fraction;
            let t_off = timing.t_rp + delta_a2a * (1.0 - on_fraction);
            let cycle = t_on + t_off;
            let ac = cfg.budget.as_ps() / cycle.as_ps();
            let instance = PatternInstance {
                t_aggon: t_on,
                t_aggoff: t_off,
                total_acts: ac,
            };
            let flips = run_pattern(&mut module, &site, instance, trial.data_pattern)?;
            Ok(TrialOutcome::OnOff { ac, flips })
        }
        Measurement::Retention { duration } => {
            for &victim in &site.victims {
                module.init_row_pattern(site.bank, victim, trial.data_pattern, RowRole::Victim)?;
            }
            module.idle(duration);
            let mut flips = Vec::new();
            for &victim in &site.victims {
                flips.extend(
                    module
                        .check_row(site.bank, victim)?
                        .into_iter()
                        .filter(|f| f.mechanism == FlipMechanism::Retention),
                );
            }
            Ok(TrialOutcome::Retention { flips })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpress_dram::module_inventory;

    fn spec(id: &str) -> ModuleSpec {
        module_inventory().into_iter().find(|m| m.id == id).unwrap()
    }

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test_scale()
    }

    fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
        Plan::grid(cfg)
            .modules(&[spec("S3"), spec("S0")])
            .temperatures(&[50.0, 80.0])
            .measurements(
                [Time::from_ns(36.0), Time::from_ms(30.0)]
                    .into_iter()
                    .map(|t| Measurement::AcMin { t_aggon: t }),
            )
            .build()
    }

    #[test]
    fn grid_builder_expands_the_cartesian_product() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        // 2 modules x 2 temperatures x 3 rows x 2 measurements.
        assert_eq!(plan.len(), 2 * 2 * cfg.tested_sites().len() * 2);
        assert!(!plan.is_empty());
        // Innermost axis varies fastest: the first two trials differ only in
        // the measurement.
        let (a, b) = (&plan.trials()[0], &plan.trials()[1]);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.row, b.row);
        assert_ne!(a.measurement, b.measurement);
        // Outermost axis varies slowest.
        assert_eq!(plan.trials()[0].spec.id, "S3");
        assert_eq!(plan.trials().last().unwrap().spec.id, "S0");
    }

    #[test]
    fn records_are_identical_for_any_worker_count() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let baseline = Engine::new(&cfg)
            .with_workers(1)
            .run_collect(&plan)
            .unwrap();
        assert_eq!(baseline.len(), plan.len());
        for workers in [2, 4, 16] {
            let records = Engine::new(&cfg)
                .with_workers(workers)
                .run_collect(&plan)
                .unwrap();
            assert_eq!(
                records, baseline,
                "worker count {workers} changed the record stream"
            );
        }
        // Byte-identical through the JSONL sink, too.
        let jsonl = |workers: usize| -> Vec<u8> {
            let mut sink = JsonlSink::new(Vec::new());
            Engine::new(&cfg)
                .with_workers(workers)
                .run(&plan, &mut sink)
                .unwrap();
            sink.into_inner()
        };
        assert_eq!(jsonl(1), jsonl(4));
    }

    #[test]
    fn jsonl_sink_round_trips_through_serde() {
        let cfg = cfg();
        let plan = Plan::grid(&cfg)
            .module(&spec("S3"))
            .measurements([
                Measurement::AcMin {
                    t_aggon: Time::from_ms(30.0),
                },
                Measurement::AcMax {
                    t_aggon: Time::from_us(70.2),
                },
                Measurement::TAggOnMin { ac: 10 },
                Measurement::OnOff {
                    delta_a2a: Time::from_ns(6000.0),
                    on_fraction: 0.5,
                },
                Measurement::Retention {
                    duration: Time::from_secs(4.0),
                },
            ])
            .build();
        let engine = Engine::new(&cfg);
        let records = engine.run_collect(&plan).unwrap();

        let mut sink = JsonlSink::new(Vec::new());
        engine.run(&plan, &mut sink).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), records.len());
        for (line, expected) in lines.iter().zip(&records) {
            let parsed: TrialRecord = serde_json::from_str(line).expect("valid JSONL line");
            assert_eq!(&parsed, expected);
        }
    }

    #[test]
    fn cache_answers_repeated_plans_without_recomputing() {
        let cfg = cfg();
        let plan = Plan::grid(&cfg)
            .module(&spec("S3"))
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build();
        let engine = Engine::new(&cfg);
        let first = engine.run_collect(&plan).unwrap();
        assert_eq!(engine.cache().hits(), 0);
        assert_eq!(engine.cache().misses(), plan.len() as u64);
        let second = engine.run_collect(&plan).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.cache().hits(), plan.len() as u64);
        assert_eq!(engine.cache().misses(), plan.len() as u64);
        assert_eq!(engine.cache().len(), plan.len());
    }

    #[test]
    fn shared_engines_reuse_overlapping_trials_across_instances() {
        // A distinct configuration so other tests' shared caches don't
        // interfere with the accounting.
        let cfg = ExperimentConfig::test_scale().with_rows_per_module(2);
        let plan = Plan::grid(&cfg)
            .module(&spec("S0"))
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build();
        let first = Engine::shared(&cfg);
        let warmup = first.run_collect(&plan).unwrap();
        // A *new* shared engine for the same config sees the cached trials.
        let second = Engine::shared(&cfg);
        let hits_before = second.cache().hits();
        let replay = second.run_collect(&plan).unwrap();
        assert_eq!(warmup, replay);
        assert!(second.cache().hits() >= hits_before + plan.len() as u64);
    }

    #[test]
    fn jitter_normalization_and_trial_hashing() {
        assert_eq!(Jitter::seeded(0.0, 99), Jitter::none());
        assert_ne!(Jitter::seeded(0.2, 99), Jitter::none());
        let cfg = cfg();
        let t = Plan::grid(&cfg)
            .module(&spec("S3"))
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build()
            .trials()[0]
            .clone();
        let mut map = HashMap::new();
        map.insert(t.clone(), 1u32);
        assert_eq!(map.get(&t), Some(&1));
        let mut other = t.clone();
        other.temperature_c = 80.0;
        assert!(!map.contains_key(&other));
    }

    #[test]
    fn trial_errors_surface_in_plan_order() {
        let cfg = cfg();
        let mut good = Plan::grid(&cfg)
            .module(&spec("S3"))
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build()
            .trials()
            .to_vec();
        // An out-of-range row makes the site invalid.
        good[1].row = RowId(cfg.geometry.rows_per_bank + 100);
        let plan = Plan::from_trials(good);
        let err = Engine::new(&cfg).run_collect(&plan).unwrap_err();
        assert!(matches!(err, DramError::InvalidRow { .. }));
        let display = format!("{}", EngineError::from(err));
        assert!(display.contains("trial failed"));
    }

    #[test]
    fn cache_clear_and_bitwise_float_equality() {
        let cfg = cfg();
        let plan = Plan::grid(&cfg)
            .module(&spec("S0"))
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build();
        let engine = Engine::new(&cfg);
        engine.run_collect(&plan).unwrap();
        assert!(!engine.cache().is_empty());
        let misses = engine.cache().misses();
        engine.cache().clear();
        assert!(engine.cache().is_empty());
        assert_eq!(engine.cache().misses(), misses, "clear keeps the counters");

        // Bitwise float equality: -0.0 and NaN are safe as cache keys.
        let a = plan.trials()[0].clone();
        let mut b = a.clone();
        b.temperature_c = -0.0;
        let mut zero = a.clone();
        zero.temperature_c = 0.0;
        assert_ne!(zero, b, "-0.0 must not alias 0.0 under bitwise equality");
        let mut nan = a.clone();
        nan.temperature_c = f64::NAN;
        assert_eq!(nan, nan.clone(), "NaN trials must equal themselves");
        assert_eq!(Jitter::seeded(f64::NAN, 1), Jitter::seeded(f64::NAN, 1));
    }

    #[test]
    fn finish_flushes_even_when_a_trial_fails() {
        struct CountingSink {
            accepted: usize,
            finished: bool,
        }
        impl Sink for CountingSink {
            fn accept(&mut self, _record: TrialRecord) -> std::io::Result<()> {
                self.accepted += 1;
                Ok(())
            }
            fn finish(&mut self) -> std::io::Result<()> {
                self.finished = true;
                Ok(())
            }
        }
        let cfg = cfg();
        let mut trials = Plan::grid(&cfg)
            .module(&spec("S3"))
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build()
            .trials()
            .to_vec();
        trials[1].row = RowId(cfg.geometry.rows_per_bank + 100);
        let plan = Plan::from_trials(trials);
        let mut sink = CountingSink {
            accepted: 0,
            finished: false,
        };
        let err = Engine::new(&cfg).run(&plan, &mut sink).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Dram(DramError::InvalidRow { .. })
        ));
        // The record before the failing trial streamed, and finish() still ran.
        assert_eq!(sink.accepted, 1);
        assert!(sink.finished, "finish() must run on the error path");
    }

    #[test]
    fn identical_concurrent_trials_compute_once() {
        let cfg = cfg();
        let base = Plan::grid(&cfg)
            .module(&spec("S0"))
            .rows(vec![RowId(20)])
            .measurement(Measurement::AcMax {
                t_aggon: Time::from_us(70.2),
            })
            .build()
            .trials()
            .to_vec();
        // Eight copies of the same trial, executed by a multi-worker pool:
        // the in-flight dedup must compute it exactly once.
        let plan = Plan::from_trials(vec![base[0].clone(); 8]);
        let engine = Engine::new(&cfg).with_workers(4);
        let records = engine.run_collect(&plan).unwrap();
        assert_eq!(records.len(), 8);
        assert!(records.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(engine.cache().misses(), 1);
        assert_eq!(engine.cache().hits(), 7);
    }

    #[test]
    fn engine_defaults_are_bounded() {
        let engine = Engine::new(&cfg());
        assert!(engine.workers() >= 1);
        assert!(engine.workers() <= crate::campaign::worker_count());
        assert_eq!(Engine::new(&cfg()).with_workers(0).workers(), 1);
        assert!(engine.cache().is_empty());
        assert_eq!(engine.config(), &cfg());
    }
}
