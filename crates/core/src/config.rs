//! Experiment configuration shared by all characterization studies.

use rowpress_dram::{DataPattern, Geometry, Time};
use serde::{Deserialize, Serialize};

/// Configuration of a characterization run (paper §4.1).
///
/// The defaults mirror the paper's methodology: a 60 ms execution budget
/// (strictly inside the 64 ms refresh window), 1 % ACmin search accuracy,
/// five repetitions of each search, the checkerboard data pattern and a 50 °C
/// chip temperature. The `rows_per_module` and `geometry` fields control the
/// experiment footprint; the paper tests 3072 rows of 65536 bits each, while
/// [`ExperimentConfig::quick`] uses a reduced footprint so the full figure
/// suite runs in minutes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Bank-local geometry of the simulated module.
    pub geometry: Geometry,
    /// Number of rows tested per module (aggressor-row sites).
    pub rows_per_module: u32,
    /// Execution-time budget per measurement (60 ms in the paper).
    pub budget: Time,
    /// Number of repetitions of each ACmin search; the minimum is reported.
    pub repeats: u32,
    /// Termination accuracy of the bisection search, in percent (1 % in the
    /// paper).
    pub accuracy_pct: f64,
    /// Data pattern used unless a study overrides it.
    pub data_pattern: DataPattern,
    /// Chip temperature in °C unless a study overrides it.
    pub temperature_c: f64,
}

impl ExperimentConfig {
    /// The paper-scale configuration: 3072 tested rows of 65536-bit rows.
    /// Running every study at this scale takes a long time; use it when
    /// fidelity matters more than turnaround.
    pub fn paper_scale() -> Self {
        ExperimentConfig {
            geometry: Geometry::ddr4_8gb(),
            rows_per_module: 3072,
            budget: Time::from_ms(60.0),
            repeats: 5,
            accuracy_pct: 1.0,
            data_pattern: DataPattern::Checkerboard,
            temperature_c: 50.0,
        }
    }

    /// A reduced-footprint configuration used by the benches: the scaled-down
    /// geometry with a handful of tested rows per module. The row-level
    /// statistics (ACmin scale, temperature and pattern trends) are preserved;
    /// only the resolution of rare-cell statistics shrinks.
    pub fn quick() -> Self {
        ExperimentConfig {
            geometry: Geometry::scaled_down(),
            rows_per_module: 6,
            budget: Time::from_ms(60.0),
            repeats: 1,
            accuracy_pct: 1.0,
            data_pattern: DataPattern::Checkerboard,
            temperature_c: 50.0,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn test_scale() -> Self {
        ExperimentConfig {
            geometry: Geometry::tiny(),
            rows_per_module: 3,
            budget: Time::from_ms(60.0),
            repeats: 1,
            accuracy_pct: 1.0,
            data_pattern: DataPattern::Checkerboard,
            temperature_c: 50.0,
        }
    }

    /// Returns a copy with a different temperature.
    pub fn at_temperature(mut self, celsius: f64) -> Self {
        self.temperature_c = celsius;
        self
    }

    /// Returns a copy with a different data pattern.
    pub fn with_data_pattern(mut self, pattern: DataPattern) -> Self {
        self.data_pattern = pattern;
        self
    }

    /// Returns a copy with a different number of tested rows per module.
    pub fn with_rows_per_module(mut self, rows: u32) -> Self {
        self.rows_per_module = rows;
        self
    }

    /// The aggressor-row sites tested in each module: evenly spaced rows that
    /// leave room for the double-sided pattern's victim halo (±3 rows plus the
    /// far aggressor).
    pub fn tested_sites(&self) -> Vec<rowpress_dram::RowId> {
        let margin = 8u32;
        let usable = self.geometry.rows_per_bank.saturating_sub(2 * margin);
        let n = self.rows_per_module.max(1).min(usable.max(1));
        let step = (usable / n).max(1);
        (0..n)
            .map(|i| rowpress_dram::RowId(margin + i * step))
            .collect()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        if self.rows_per_module == 0 {
            return Err("rows_per_module must be positive".into());
        }
        if self.repeats == 0 {
            return Err("repeats must be positive".into());
        }
        if self.accuracy_pct.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("accuracy_pct must be positive".into());
        }
        if self.budget.is_zero() {
            return Err("budget must be positive".into());
        }
        Ok(())
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_methodology() {
        let c = ExperimentConfig::paper_scale();
        assert_eq!(c.rows_per_module, 3072);
        assert_eq!(c.repeats, 5);
        assert_eq!(c.accuracy_pct, 1.0);
        assert_eq!(c.budget, Time::from_ms(60.0));
        assert_eq!(c.data_pattern, DataPattern::Checkerboard);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn quick_config_is_valid_and_small() {
        let c = ExperimentConfig::quick();
        assert!(c.validate().is_ok());
        assert!(c.rows_per_module < 64);
        assert_eq!(ExperimentConfig::default(), c);
    }

    #[test]
    fn tested_sites_are_within_bounds_and_spaced() {
        let c = ExperimentConfig::quick();
        let sites = c.tested_sites();
        assert_eq!(sites.len(), c.rows_per_module as usize);
        for w in sites.windows(2) {
            assert!(w[1].0 > w[0].0 + 6, "sites must not share victim halos");
        }
        assert!(sites
            .iter()
            .all(|r| r.0 >= 8 && r.0 < c.geometry.rows_per_bank - 8));
    }

    #[test]
    fn builder_style_modifiers() {
        let c = ExperimentConfig::quick()
            .at_temperature(80.0)
            .with_data_pattern(DataPattern::RowStripe)
            .with_rows_per_module(4);
        assert_eq!(c.temperature_c, 80.0);
        assert_eq!(c.data_pattern, DataPattern::RowStripe);
        assert_eq!(c.rows_per_module, 4);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = ExperimentConfig::quick();
        c.rows_per_module = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::quick();
        c.repeats = 0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::quick();
        c.accuracy_pct = 0.0;
        assert!(c.validate().is_err());
        let mut c = ExperimentConfig::quick();
        c.budget = Time::ZERO;
        assert!(c.validate().is_err());
    }
}
