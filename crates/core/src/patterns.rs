//! Read-disturb access patterns (paper §4.1, §5.2, §5.4).
//!
//! A [`PatternSite`] pins down which rows play the aggressor and victim roles
//! around one tested row; [`run_pattern`] applies a pattern instance (on time,
//! off time, activation count) to a [`DramModule`] and collects the victim
//! bitflips.

use rowpress_dram::{BankId, Bitflip, DataPattern, DramModule, DramResult, RowId, RowRole, Time};
use serde::{Deserialize, Serialize};

/// The access-pattern family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternKind {
    /// One aggressor row (paper Fig. 5). Identical to single-sided RowHammer
    /// when the on time equals tRAS.
    SingleSided,
    /// Two aggressor rows sandwiching a victim (paper Fig. 16).
    DoubleSided,
}

impl PatternKind {
    /// Both families, in the order used by the paper's figures.
    pub fn all() -> [PatternKind; 2] {
        [PatternKind::SingleSided, PatternKind::DoubleSided]
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            PatternKind::SingleSided => "Single-Sided",
            PatternKind::DoubleSided => "Double-Sided",
        }
    }
}

/// The aggressor and victim rows of one tested site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSite {
    /// The pattern family this site was laid out for.
    pub kind: PatternKind,
    /// Bank containing all rows of the site.
    pub bank: BankId,
    /// Aggressor rows (one or two).
    pub aggressors: Vec<RowId>,
    /// Victim rows checked for bitflips.
    pub victims: Vec<RowId>,
}

impl PatternSite {
    /// Lays out a single-sided site around `aggressor`: the aggressor plus the
    /// three adjacent rows on each side as victims (paper §4.1).
    pub fn single_sided(bank: BankId, aggressor: RowId, rows_in_bank: u32) -> Self {
        let mut victims = Vec::new();
        // Distance-1 victims first so early-exit probes touch them first.
        for dist in 1..=3i64 {
            for side in [-1i64, 1] {
                if let Some(v) = aggressor.offset(side * dist, rows_in_bank) {
                    victims.push(v);
                }
            }
        }
        PatternSite {
            kind: PatternKind::SingleSided,
            bank,
            aggressors: vec![aggressor],
            victims,
        }
    }

    /// Lays out a double-sided site with aggressors at `base` and `base + 2`:
    /// the row between them plus three rows beyond each aggressor are victims
    /// (paper §5.2).
    pub fn double_sided(bank: BankId, base: RowId, rows_in_bank: u32) -> Self {
        let low = base;
        let high = RowId(base.0 + 2);
        let mut victims = Vec::new();
        if let Some(mid) = base.offset(1, rows_in_bank) {
            victims.push(mid);
        }
        for dist in 1..=3i64 {
            if let Some(v) = low.offset(-dist, rows_in_bank) {
                victims.push(v);
            }
            if let Some(v) = high.offset(dist, rows_in_bank) {
                victims.push(v);
            }
        }
        PatternSite {
            kind: PatternKind::DoubleSided,
            bank,
            aggressors: vec![low, high],
            victims,
        }
    }

    /// Lays out a site of the requested kind around a tested row.
    pub fn for_kind(kind: PatternKind, bank: BankId, row: RowId, rows_in_bank: u32) -> Self {
        match kind {
            PatternKind::SingleSided => Self::single_sided(bank, row, rows_in_bank),
            PatternKind::DoubleSided => Self::double_sided(bank, row, rows_in_bank),
        }
    }

    /// Every row of the site (aggressors + victims).
    pub fn all_rows(&self) -> Vec<RowId> {
        let mut rows = self.aggressors.clone();
        rows.extend(self.victims.iter().copied());
        rows
    }
}

/// One concrete pattern instance: how long rows stay open and closed, and how
/// many total aggressor activations are issued.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternInstance {
    /// Aggressor row on time per activation.
    pub t_aggon: Time,
    /// Aggressor row off time between its consecutive activations. For the
    /// standard RowPress/RowHammer patterns this is tRP; the RowPress-ONOFF
    /// pattern sweeps it explicitly.
    pub t_aggoff: Time,
    /// Total aggressor activations, summed over all aggressor rows (the
    /// paper's AC metric).
    pub total_acts: u64,
}

impl PatternInstance {
    /// The standard pattern instance: on for `t_aggon`, closed for tRP.
    pub fn standard(t_aggon: Time, total_acts: u64, t_rp: Time) -> Self {
        PatternInstance {
            t_aggon,
            t_aggoff: t_rp,
            total_acts,
        }
    }

    /// Total bus time the pattern occupies.
    pub fn duration(&self) -> Time {
        (self.t_aggon + self.t_aggoff) * self.total_acts
    }
}

/// Initializes the site's rows with `pattern` (aggressor byte on aggressor
/// rows, victim byte everywhere else).
///
/// # Errors
///
/// Returns an error if a row address is out of range.
pub fn initialize_site(
    module: &mut DramModule,
    site: &PatternSite,
    pattern: DataPattern,
) -> DramResult<()> {
    for &row in &site.aggressors {
        module.init_row_pattern(site.bank, row, pattern, RowRole::Aggressor)?;
    }
    for &row in &site.victims {
        module.init_row_pattern(site.bank, row, pattern, RowRole::Victim)?;
    }
    Ok(())
}

/// Applies one pattern instance to an already-initialized site.
///
/// For the single-sided pattern the aggressor's off time between consecutive
/// activations is `instance.t_aggoff`. For the double-sided pattern the two
/// aggressors alternate, so each aggressor is closed for the other's on time
/// plus two precharge latencies between its own activations — the detail that
/// makes double-sided RowPress *less* effective than single-sided at large
/// tAggON (paper Obsv. 13).
///
/// # Errors
///
/// Returns an error if a row address is out of range.
pub fn apply_pattern(
    module: &mut DramModule,
    site: &PatternSite,
    instance: PatternInstance,
) -> DramResult<()> {
    match site.kind {
        PatternKind::SingleSided => {
            let aggressor = site.aggressors[0];
            module.activate_many(
                site.bank,
                aggressor,
                instance.t_aggon,
                instance.t_aggoff,
                instance.total_acts,
            )?;
        }
        PatternKind::DoubleSided => {
            let per_aggressor_off = instance.t_aggon + instance.t_aggoff * 2;
            let low_acts = instance.total_acts / 2 + instance.total_acts % 2;
            let high_acts = instance.total_acts / 2;
            module.activate_many(
                site.bank,
                site.aggressors[0],
                instance.t_aggon,
                per_aggressor_off,
                low_acts,
            )?;
            module.activate_many(
                site.bank,
                site.aggressors[1],
                instance.t_aggon,
                per_aggressor_off,
                high_acts,
            )?;
        }
    }
    Ok(())
}

/// Initializes the site, applies the pattern instance and returns all victim
/// bitflips.
///
/// # Errors
///
/// Returns an error if a row address is out of range.
pub fn run_pattern(
    module: &mut DramModule,
    site: &PatternSite,
    instance: PatternInstance,
    pattern: DataPattern,
) -> DramResult<Vec<Bitflip>> {
    let mut flips = Vec::new();
    run_pattern_into(module, site, instance, pattern, &mut flips)?;
    Ok(flips)
}

/// [`run_pattern`] into a caller-provided buffer (cleared first), so a search
/// loop reuses one flip accumulator across probes instead of allocating one
/// per measurement.
///
/// # Errors
///
/// Returns an error if a row address is out of range.
pub fn run_pattern_into(
    module: &mut DramModule,
    site: &PatternSite,
    instance: PatternInstance,
    pattern: DataPattern,
    out: &mut Vec<Bitflip>,
) -> DramResult<()> {
    out.clear();
    initialize_site(module, site, pattern)?;
    apply_pattern(module, site, instance)?;
    for &victim in &site.victims {
        module.check_row_append(site.bank, victim, out)?;
    }
    Ok(())
}

/// Like [`run_pattern`] but only answers whether *any* victim flipped
/// (early-exits; used by the bisection searches).
///
/// # Errors
///
/// Returns an error if a row address is out of range.
pub fn run_pattern_any_flip(
    module: &mut DramModule,
    site: &PatternSite,
    instance: PatternInstance,
    pattern: DataPattern,
) -> DramResult<bool> {
    initialize_site(module, site, pattern)?;
    apply_pattern(module, site, instance)?;
    for &victim in &site.victims {
        if module.has_bitflip(site.bank, victim)? {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpress_dram::{module_inventory, Geometry, TimingParams};

    fn module(id: &str) -> DramModule {
        let spec = module_inventory().into_iter().find(|m| m.id == id).unwrap();
        DramModule::new(&spec, Geometry::tiny())
    }

    #[test]
    fn single_sided_site_has_six_victims() {
        let site = PatternSite::single_sided(BankId(1), RowId(10), 64);
        assert_eq!(site.aggressors, vec![RowId(10)]);
        assert_eq!(site.victims.len(), 6);
        assert!(site.victims.contains(&RowId(9)));
        assert!(site.victims.contains(&RowId(13)));
        assert!(!site.victims.contains(&RowId(10)));
        assert_eq!(site.all_rows().len(), 7);
        // Distance-1 victims come first (probe ordering).
        assert_eq!(site.victims[0], RowId(9));
        assert_eq!(site.victims[1], RowId(11));
    }

    #[test]
    fn single_sided_site_near_edge_truncates_victims() {
        let site = PatternSite::single_sided(BankId(0), RowId(0), 64);
        assert_eq!(site.victims.len(), 3);
        assert!(site.victims.iter().all(|v| v.0 >= 1 && v.0 <= 3));
    }

    #[test]
    fn double_sided_site_layout_matches_paper() {
        // Aggressors R0 and R2; victims R1, R-1..R-3, R3..R5.
        let site = PatternSite::double_sided(BankId(1), RowId(20), 64);
        assert_eq!(site.aggressors, vec![RowId(20), RowId(22)]);
        assert_eq!(site.victims.len(), 7);
        assert!(site.victims.contains(&RowId(21)));
        assert!(site.victims.contains(&RowId(17)));
        assert!(site.victims.contains(&RowId(25)));
        assert_eq!(site.victims[0], RowId(21));
        assert_eq!(
            PatternSite::for_kind(PatternKind::DoubleSided, BankId(1), RowId(20), 64),
            site
        );
    }

    #[test]
    fn pattern_instance_duration() {
        let t = TimingParams::ddr4();
        let inst = PatternInstance::standard(Time::from_us(7.8), 100, t.t_rp);
        assert_eq!(inst.duration(), (Time::from_us(7.8) + t.t_rp) * 100);
    }

    #[test]
    fn run_pattern_flips_on_vulnerable_die() {
        let mut m = module("S3"); // 8Gb D-die, most vulnerable
        let site = PatternSite::single_sided(BankId(1), RowId(20), 64);
        let t = TimingParams::ddr4();
        let inst = PatternInstance::standard(Time::from_ms(10.0), 6, t.t_rp);
        let flips = run_pattern(&mut m, &site, inst, DataPattern::Checkerboard).unwrap();
        assert!(!flips.is_empty());
        assert!(run_pattern_any_flip(&mut m, &site, inst, DataPattern::Checkerboard).unwrap());
        // Zero activations never flip anything.
        let inst0 = PatternInstance::standard(Time::from_ms(10.0), 0, t.t_rp);
        assert!(!run_pattern_any_flip(&mut m, &site, inst0, DataPattern::Checkerboard).unwrap());
    }

    #[test]
    fn double_sided_hammer_beats_single_sided_at_min_taggon() {
        let t = TimingParams::ddr4();
        let total_acts = 120_000u64;
        let inst = PatternInstance::standard(t.t_ras, total_acts, t.t_rp);
        let mut m1 = module("S3");
        let single = PatternSite::single_sided(BankId(1), RowId(20), 64);
        let single_flips = run_pattern(&mut m1, &single, inst, DataPattern::Checkerboard)
            .unwrap()
            .len();
        let mut m2 = module("S3");
        let double = PatternSite::double_sided(BankId(1), RowId(19), 64);
        let double_flips = run_pattern(&mut m2, &double, inst, DataPattern::Checkerboard)
            .unwrap()
            .len();
        assert!(
            double_flips >= single_flips,
            "double-sided RowHammer should flip at least as many cells (single {single_flips}, double {double_flips})"
        );
    }

    #[test]
    fn single_sided_press_beats_double_sided_at_large_taggon() {
        // Obsv. 13: at large tAggON the single-sided pattern needs fewer total
        // activations, i.e. produces at least as many flips for the same AC.
        let t = TimingParams::ddr4();
        let inst = PatternInstance::standard(Time::from_us(70.2), 700, t.t_rp);
        let mut m1 = module("S0");
        let single = PatternSite::single_sided(BankId(1), RowId(20), 64);
        let single_flips = run_pattern(&mut m1, &single, inst, DataPattern::Checkerboard)
            .unwrap()
            .len();
        let mut m2 = module("S0");
        let double = PatternSite::double_sided(BankId(1), RowId(19), 64);
        let double_flips = run_pattern(&mut m2, &double, inst, DataPattern::Checkerboard)
            .unwrap()
            .len();
        assert!(
            single_flips >= double_flips,
            "single-sided RowPress should be at least as effective at 70.2us (single {single_flips}, double {double_flips})"
        );
    }

    #[test]
    fn pattern_kind_labels() {
        assert_eq!(PatternKind::SingleSided.label(), "Single-Sided");
        assert_eq!(PatternKind::DoubleSided.label(), "Double-Sided");
        assert_eq!(PatternKind::all().len(), 2);
    }
}
