//! Parallel execution of characterization campaigns across modules.
//!
//! Testing one module is independent of testing any other, so the study
//! drivers fan the per-module work out over threads (the paper's artifact does
//! the same with a Slurm cluster).

use rowpress_dram::ModuleSpec;

/// Applies `f` to every module, running the per-module work on separate
/// threads, and returns the results in the input order.
///
/// The closure only needs to be `Sync` (it is shared by reference across
/// threads); results are collected positionally so the output order is
/// deterministic regardless of scheduling.
pub fn par_map_modules<T, F>(modules: &[ModuleSpec], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ModuleSpec) -> T + Sync,
{
    if modules.len() <= 1 {
        return modules.iter().map(&f).collect();
    }
    let mut results: Vec<Option<T>> = Vec::with_capacity(modules.len());
    results.resize_with(modules.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (idx, spec) in modules.iter().enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || (idx, f(spec))));
        }
        for handle in handles {
            let (idx, value) = handle.join().expect("module campaign thread panicked");
            results[idx] = Some(value);
        }
    });

    results.into_iter().map(|r| r.expect("every module produced a result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rowpress_dram::module_inventory;

    #[test]
    fn results_preserve_module_order() {
        let modules = module_inventory();
        let ids = par_map_modules(&modules, |m| m.id.clone());
        let expected: Vec<String> = modules.iter().map(|m| m.id.clone()).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn single_module_runs_inline() {
        let modules = &module_inventory()[..1];
        let out = par_map_modules(modules, |m| m.chips);
        assert_eq!(out, vec![modules[0].chips]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map_modules(&[], |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_work_actually_computes() {
        let modules = module_inventory();
        let sums = par_map_modules(&modules, |m| m.id.bytes().map(u64::from).sum::<u64>());
        assert_eq!(sums.len(), modules.len());
        assert!(sums.iter().all(|&s| s > 0));
    }
}
