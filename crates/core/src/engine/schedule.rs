//! Cost-aware dispatch ordering for the shared worker queue.
//!
//! The paper's grids mix trials whose device time differs by five orders of
//! magnitude: a 30 ms tAggON ACmin search keeps the aggressor open for the
//! whole 60 ms budget per probe, while a tRAS-scale RowHammer probe recycles
//! in 51 ns. When such a grid drains a shared queue in plan order, the long
//! poles are claimed last and the pool idles while the final workers finish
//! them. [`CostModel`] estimates each trial's device cost and
//! [`SchedulePolicy::CostAware`] (the [`Engine`](super::Engine) default)
//! dispatches the queue longest-pole-first.
//!
//! Scheduling never changes results: outcomes land in per-trial slots and
//! sinks always consume them in plan order, so the record stream is
//! byte-identical under any policy (proved in the worker tests).
//!
//! # Example: the long poles dispatch first
//!
//! ```
//! use rowpress_core::engine::{CostModel, Measurement, Plan, SchedulePolicy};
//! use rowpress_core::{lookup_module, ExperimentConfig};
//! use rowpress_dram::Time;
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&lookup_module("S3")?)
//!     .measurements(
//!         [Time::from_ns(36.0), Time::from_ms(30.0)]
//!             .into_iter()
//!             .map(|t| Measurement::AcMin { t_aggon: t }),
//!     )
//!     .build();
//! let model = CostModel::default();
//! // A 30 ms RowPress trial occupies the device far longer than a
//! // tRAS-scale hammer trial, so it is claimed first under the default
//! // cost-aware policy.
//! assert_eq!(SchedulePolicy::default(), SchedulePolicy::CostAware);
//! let order = model.dispatch_order(&cfg, plan.trials());
//! assert_eq!(
//!     plan.trials()[order[0]].measurement,
//!     Measurement::AcMin { t_aggon: Time::from_ms(30.0) },
//! );
//! # Ok::<(), rowpress_core::EngineError>(())
//! ```

use super::plan::{Measurement, Trial, TEST_BANK};
use crate::config::ExperimentConfig;
use crate::patterns::PatternSite;
use rowpress_dram::TimingParams;
use std::cmp::Reverse;

/// Number of [`Measurement`] kinds — the axis of the learned correction
/// factors.
const KINDS: usize = 5;

/// The factor slot a measurement's corrections live in.
fn kind_index(measurement: &Measurement) -> usize {
    match measurement {
        Measurement::AcMin { .. } => 0,
        Measurement::AcMax { .. } => 1,
        Measurement::TAggOnMin { .. } => 2,
        Measurement::OnOff { .. } => 3,
        Measurement::Retention { .. } => 4,
    }
}

/// How the engine hands queued trials to its workers. The record stream is
/// identical under every policy; only pool utilization differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Dispatch trials in plan order: records start streaming to the sink
    /// almost immediately and completed outcomes never pile up behind an
    /// unfinished early-plan trial.
    PlanOrder,
    /// Dispatch trials longest-pole-first by [`CostModel`] estimate, so the
    /// expensive tail of a mixed grid never stalls the pool. Since sinks
    /// drain in plan order, cheap early-plan trials now resolve *last*: the
    /// first record may reach the sink only late in the run, with completed
    /// outcomes buffered in the meantime — trade first-record latency and
    /// peak memory for wall-clock throughput.
    #[default]
    CostAware,
}

/// Estimates how long a trial occupies the device, in picoseconds of modeled
/// board time — the quantity that schedules the paper's real DRAM-Bender
/// fan-out.
///
/// For the activation-count measurements the estimate is the on-time share
/// of the budget: a bisection's probes halve the activation count each step,
/// so total device time converges to about twice the budget-bound first
/// probe (a geometric series), of which the aggressor row is open for
/// `tAggON / (tAggON + tRP)` of every activation cycle. That share — and so
/// the estimate — grows monotonically with tAggON: the 30 ms press trials
/// are the long poles, tRAS-scale hammer trials the short ones. Retention
/// trials cost their idle duration. Everything scales with the touched site
/// rows and the configured repeats.
///
/// On top of the analytic estimate the model carries one learned correction
/// factor per measurement kind, fitted from recorded per-trial wall times by
/// [`CostModel::fit`]; a kind with no recorded history keeps factor 1.0 (the
/// pure analytic estimate), so fitting degrades gracefully to the
/// device-occupancy guess.
///
/// Only the *relative order* of estimates matters: the scheduler sorts by
/// them and ties fall back to plan order, so an imperfect model can reorder
/// dispatch but never change results.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    timing: TimingParams,
    /// Per-kind multiplicative corrections (indexed by [`kind_index`]),
    /// normalized so the fitted model stays on the analytic scale: 1.0
    /// everywhere on an unfitted model.
    factors: [f64; KINDS],
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            timing: TimingParams::ddr4(),
            factors: [1.0; KINDS],
        }
    }
}

impl CostModel {
    /// A model over explicit timing parameters (the default uses DDR4), with
    /// no learned corrections.
    pub fn new(timing: TimingParams) -> Self {
        CostModel {
            timing,
            factors: [1.0; KINDS],
        }
    }

    /// Fits per-measurement-kind correction factors from observed
    /// `(trial, wall_us)` compute times — e.g. a [`PersistentCache`](super::PersistentCache)'s
    /// [`timed_samples`](super::PersistentCache::timed_samples) — and returns
    /// the corrected model.
    ///
    /// Each observed kind's factor is its wall-time-to-analytic-estimate
    /// ratio normalized by the global ratio across all samples, so fitted
    /// kinds are reranked against each other by what the hardware actually
    /// took while unseen kinds (factor 1.0) stay comparable on the analytic
    /// scale. With no usable samples the analytic model comes back
    /// unchanged.
    pub fn fit<'a>(
        &self,
        cfg: &ExperimentConfig,
        samples: impl IntoIterator<Item = (&'a Trial, u64)>,
    ) -> CostModel {
        let analytic = CostModel::new(self.timing);
        let mut wall = [0.0f64; KINDS];
        let mut modeled = [0.0f64; KINDS];
        for (trial, wall_us) in samples {
            let estimate = analytic.estimate(cfg, trial);
            if estimate == 0 {
                continue;
            }
            let kind = kind_index(&trial.measurement);
            wall[kind] += wall_us as f64;
            modeled[kind] += estimate as f64;
        }
        let total_wall: f64 = wall.iter().sum();
        let total_modeled: f64 = modeled.iter().sum();
        if total_wall <= 0.0 || total_modeled <= 0.0 {
            return analytic;
        }
        let global = total_wall / total_modeled;
        let mut factors = [1.0f64; KINDS];
        for kind in 0..KINDS {
            if modeled[kind] > 0.0 {
                factors[kind] = (wall[kind] / modeled[kind]) / global;
            }
        }
        CostModel {
            timing: self.timing,
            factors,
        }
    }

    /// The learned correction applied to `measurement`'s analytic estimate
    /// (1.0 on an unfitted model or an unseen kind).
    pub fn factor(&self, measurement: &Measurement) -> f64 {
        self.factors[kind_index(measurement)]
    }

    /// Whether any correction factor was fitted from history.
    pub fn is_learned(&self) -> bool {
        self.factors != [1.0; KINDS]
    }

    /// Estimated device occupancy of `trial` under `cfg`, in picoseconds of
    /// modeled board time. Deterministic and cheap: no device model is
    /// constructed.
    pub fn estimate(&self, cfg: &ExperimentConfig, trial: &Trial) -> u128 {
        let site =
            PatternSite::for_kind(trial.kind, TEST_BANK, trial.row, cfg.geometry.rows_per_bank);
        let rows = (site.aggressors.len() + site.victims.len()) as u128;
        let budget_ps = u128::from(cfg.budget.as_ps());
        let repeats = u128::from(cfg.repeats.max(1));
        // Aggressor-on share of one activation cycle, in parts per million.
        let on_share_ppm = |t_on: rowpress_dram::Time, t_off: rowpress_dram::Time| -> u128 {
            let on = u128::from(t_on.as_ps());
            let cycle = on + u128::from(t_off.as_ps());
            (on * 1_000_000).checked_div(cycle).unwrap_or(0)
        };
        // Per-repeat cost of one site row; repeats and rows multiply at the
        // end so every kind scales with both.
        let cost = match trial.measurement {
            Measurement::AcMin { t_aggon } => {
                // Bisection device time ~ 2x the budget-bound first probe,
                // per repeat; the row is open for the on-share of each cycle.
                let t_on = t_aggon.max(self.timing.t_ras);
                2 * budget_ps * on_share_ppm(t_on, self.timing.t_rp) / 1_000_000
            }
            Measurement::AcMax { t_aggon } => {
                let t_on = t_aggon.max(self.timing.t_ras);
                budget_ps * on_share_ppm(t_on, self.timing.t_rp) / 1_000_000
            }
            // Bisection over on-times: the first probe holds the row open for
            // up to budget/ac per activation, so a search costs about two
            // full budgets per repeat.
            Measurement::TAggOnMin { .. } => 2 * budget_ps,
            Measurement::OnOff {
                delta_a2a,
                on_fraction,
            } => {
                let frac = on_fraction.clamp(0.0, 1.0);
                let t_on = self.timing.t_ras + delta_a2a * frac;
                let t_off = self.timing.t_rp + delta_a2a * (1.0 - frac);
                budget_ps * on_share_ppm(t_on, t_off) / 1_000_000
            }
            Measurement::Retention { duration } => u128::from(duration.as_ps()),
        };
        let analytic = cost * rows * repeats;
        let factor = self.factors[kind_index(&trial.measurement)];
        // The exact-integer path keeps default-model ties bit-stable; only a
        // fitted factor routes through floating point.
        if factor == 1.0 {
            analytic
        } else {
            (analytic as f64 * factor) as u128
        }
    }

    /// The order in which a worker pool should claim the trials of a plan:
    /// indices into `trials` sorted by descending estimate, ties broken by
    /// plan position (the sort is stable).
    pub fn dispatch_order(&self, cfg: &ExperimentConfig, trials: &[Trial]) -> Vec<usize> {
        let costs: Vec<u128> = trials.iter().map(|t| self.estimate(cfg, t)).collect();
        let mut order: Vec<usize> = (0..trials.len()).collect();
        order.sort_by_key(|&i| Reverse(costs[i]));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{lookup_module, Plan};
    use rowpress_dram::Time;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test_scale()
    }

    fn acmin_trial(t_aggon: Time) -> Trial {
        let cfg = cfg();
        Plan::grid(&cfg)
            .module(&lookup_module("S3").unwrap())
            .measurement(Measurement::AcMin { t_aggon })
            .build()
            .trials()[0]
            .clone()
    }

    #[test]
    fn long_taggon_trials_cost_more() {
        let cfg = cfg();
        let model = CostModel::default();
        let hammer = model.estimate(&cfg, &acmin_trial(Time::from_ns(36.0)));
        let press = model.estimate(&cfg, &acmin_trial(Time::from_ms(30.0)));
        assert!(
            press > hammer,
            "30 ms tAggON must out-cost tRAS: {press} vs {hammer}"
        );
    }

    #[test]
    fn retention_cost_scales_with_duration() {
        let cfg = cfg();
        let model = CostModel::default();
        let mut short = acmin_trial(Time::from_ns(36.0));
        short.measurement = Measurement::Retention {
            duration: Time::from_ms(1.0),
        };
        let mut long = short.clone();
        long.measurement = Measurement::Retention {
            duration: Time::from_secs(4.0),
        };
        assert!(model.estimate(&cfg, &long) > model.estimate(&cfg, &short));
    }

    #[test]
    fn dispatch_order_is_a_longest_first_permutation() {
        let cfg = cfg();
        let plan = Plan::grid(&cfg)
            .module(&lookup_module("S3").unwrap())
            .measurements(
                [Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)]
                    .into_iter()
                    .map(|t| Measurement::AcMin { t_aggon: t }),
            )
            .build();
        let model = CostModel::default();
        let order = model.dispatch_order(&cfg, plan.trials());
        // A permutation of 0..n.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..plan.len()).collect::<Vec<_>>());
        // Costs are non-increasing along the dispatch order, and equal costs
        // keep plan order (stable sort).
        let costs: Vec<u128> = plan
            .trials()
            .iter()
            .map(|t| model.estimate(&cfg, t))
            .collect();
        for pair in order.windows(2) {
            assert!(costs[pair[0]] >= costs[pair[1]]);
            if costs[pair[0]] == costs[pair[1]] {
                assert!(pair[0] < pair[1], "ties must fall back to plan order");
            }
        }
        // The 30 ms press trials dispatch before the tRAS hammer trials.
        let press = Measurement::AcMin {
            t_aggon: Time::from_ms(30.0),
        };
        let first = &plan.trials()[order[0]];
        assert_eq!(first.measurement, press);
    }

    #[test]
    fn schedule_policy_defaults_to_cost_aware() {
        assert_eq!(SchedulePolicy::default(), SchedulePolicy::CostAware);
    }

    #[test]
    fn every_measurement_kind_scales_with_repeats() {
        // The struct docs promise "everything scales with … the configured
        // repeats"; AcMax/OnOff/Retention used to ignore it.
        let mut once = cfg();
        once.repeats = 1;
        let mut four = once;
        four.repeats = 4;
        let model = CostModel::default();
        let kinds = [
            Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            },
            Measurement::AcMax {
                t_aggon: Time::from_ms(30.0),
            },
            Measurement::TAggOnMin { ac: 10 },
            Measurement::OnOff {
                delta_a2a: Time::from_ns(100.0),
                on_fraction: 0.5,
            },
            Measurement::Retention {
                duration: Time::from_ms(1.0),
            },
        ];
        for kind in kinds {
            let mut trial = acmin_trial(Time::from_ns(36.0));
            trial.measurement = kind;
            let base = model.estimate(&once, &trial);
            assert!(base > 0, "{kind:?} must have a nonzero estimate");
            assert_eq!(
                model.estimate(&four, &trial),
                4 * base,
                "{kind:?} must scale with repeats"
            );
        }
    }

    #[test]
    fn fit_reranks_kinds_by_observed_wall_time() {
        let cfg = cfg();
        let press = acmin_trial(Time::from_ms(30.0));
        let mut retention = press.clone();
        retention.measurement = Measurement::Retention {
            duration: Time::from_secs(60.0),
        };
        let analytic = CostModel::default();
        // Premise: the analytic model calls the 60 s retention trial the
        // long pole…
        assert!(analytic.estimate(&cfg, &retention) > analytic.estimate(&cfg, &press));
        // …but the recorded wall times say retention is nearly free (the
        // device model simulates the idle wait instead of sleeping it).
        let samples = [(&press, 10_000u64), (&retention, 15u64)];
        let fitted = analytic.fit(&cfg, samples.iter().map(|&(t, w)| (t, w)));
        assert!(fitted.is_learned());
        assert!(
            fitted.estimate(&cfg, &press) > fitted.estimate(&cfg, &retention),
            "fitted model must rank by observed wall time"
        );
        // An unseen kind keeps the pure analytic estimate.
        let mut unseen = press.clone();
        unseen.measurement = Measurement::TAggOnMin { ac: 10 };
        assert_eq!(fitted.factor(&unseen.measurement), 1.0);
        // Fitting from nothing is the analytic model.
        let empty = analytic.fit(&cfg, std::iter::empty());
        assert!(!empty.is_learned());
        assert_eq!(
            empty.estimate(&cfg, &press),
            analytic.estimate(&cfg, &press)
        );
    }

    /// Deterministic list scheduling: claim trials in dispatch order, each
    /// onto the earliest-free worker, and report the pool's finish time.
    fn makespan(order: &[usize], true_cost_us: &[u64], workers: usize) -> u64 {
        let mut free = vec![0u64; workers];
        for &index in order {
            let worker = (0..workers).min_by_key(|&w| free[w]).unwrap();
            free[worker] += true_cost_us[index];
        }
        free.into_iter().max().unwrap_or(0)
    }

    #[test]
    fn learned_dispatch_makespan_never_exceeds_analytic_on_a_mixed_grid() {
        // A mixed grid where the analytic model misranks the long pole: many
        // retention trials with huge modeled durations that are nearly free
        // on the wall clock, plus one genuinely expensive press search.
        let cfg = cfg().with_rows_per_module(1);
        let retention_durations = [4.0, 5.0, 6.0, 7.0, 8.0];
        let plan = Plan::grid(&cfg)
            .module(&lookup_module("S3").unwrap())
            .measurements(
                std::iter::once(Measurement::AcMin {
                    t_aggon: Time::from_ms(30.0),
                })
                .chain(retention_durations.iter().map(|&secs| {
                    Measurement::Retention {
                        duration: Time::from_secs(secs),
                    }
                })),
            )
            .build();
        let true_cost_us: Vec<u64> = plan
            .trials()
            .iter()
            .map(|t| match t.measurement {
                Measurement::AcMin { .. } => 1_000,
                Measurement::Retention { .. } => 10,
                _ => unreachable!("mixed grid holds only press and retention"),
            })
            .collect();
        let analytic = CostModel::default();
        let fitted = analytic.fit(
            &cfg,
            plan.trials()
                .iter()
                .zip(&true_cost_us)
                .map(|(t, &w)| (t, w)),
        );
        for workers in [2, 4] {
            let analytic_makespan = makespan(
                &analytic.dispatch_order(&cfg, plan.trials()),
                &true_cost_us,
                workers,
            );
            let learned_makespan = makespan(
                &fitted.dispatch_order(&cfg, plan.trials()),
                &true_cost_us,
                workers,
            );
            assert!(
                learned_makespan <= analytic_makespan,
                "{workers} workers: learned {learned_makespan}us vs analytic {analytic_makespan}us"
            );
        }
    }
}
