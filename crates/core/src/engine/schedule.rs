//! Cost-aware dispatch ordering for the shared worker queue.
//!
//! The paper's grids mix trials whose device time differs by five orders of
//! magnitude: a 30 ms tAggON ACmin search keeps the aggressor open for the
//! whole 60 ms budget per probe, while a tRAS-scale RowHammer probe recycles
//! in 51 ns. When such a grid drains a shared queue in plan order, the long
//! poles are claimed last and the pool idles while the final workers finish
//! them. [`CostModel`] estimates each trial's device cost and
//! [`SchedulePolicy::CostAware`] (the [`Engine`](super::Engine) default)
//! dispatches the queue longest-pole-first.
//!
//! Scheduling never changes results: outcomes land in per-trial slots and
//! sinks always consume them in plan order, so the record stream is
//! byte-identical under any policy (proved in the worker tests).
//!
//! # Example: the long poles dispatch first
//!
//! ```
//! use rowpress_core::engine::{CostModel, Measurement, Plan, SchedulePolicy};
//! use rowpress_core::{lookup_module, ExperimentConfig};
//! use rowpress_dram::Time;
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&lookup_module("S3")?)
//!     .measurements(
//!         [Time::from_ns(36.0), Time::from_ms(30.0)]
//!             .into_iter()
//!             .map(|t| Measurement::AcMin { t_aggon: t }),
//!     )
//!     .build();
//! let model = CostModel::default();
//! // A 30 ms RowPress trial occupies the device far longer than a
//! // tRAS-scale hammer trial, so it is claimed first under the default
//! // cost-aware policy.
//! assert_eq!(SchedulePolicy::default(), SchedulePolicy::CostAware);
//! let order = model.dispatch_order(&cfg, plan.trials());
//! assert_eq!(
//!     plan.trials()[order[0]].measurement,
//!     Measurement::AcMin { t_aggon: Time::from_ms(30.0) },
//! );
//! # Ok::<(), rowpress_core::EngineError>(())
//! ```

use super::plan::{Measurement, Trial, TEST_BANK};
use crate::config::ExperimentConfig;
use crate::patterns::PatternSite;
use rowpress_dram::TimingParams;
use std::cmp::Reverse;

/// How the engine hands queued trials to its workers. The record stream is
/// identical under every policy; only pool utilization differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Dispatch trials in plan order: records start streaming to the sink
    /// almost immediately and completed outcomes never pile up behind an
    /// unfinished early-plan trial.
    PlanOrder,
    /// Dispatch trials longest-pole-first by [`CostModel`] estimate, so the
    /// expensive tail of a mixed grid never stalls the pool. Since sinks
    /// drain in plan order, cheap early-plan trials now resolve *last*: the
    /// first record may reach the sink only late in the run, with completed
    /// outcomes buffered in the meantime — trade first-record latency and
    /// peak memory for wall-clock throughput.
    #[default]
    CostAware,
}

/// Estimates how long a trial occupies the device, in picoseconds of modeled
/// board time — the quantity that schedules the paper's real DRAM-Bender
/// fan-out.
///
/// For the activation-count measurements the estimate is the on-time share
/// of the budget: a bisection's probes halve the activation count each step,
/// so total device time converges to about twice the budget-bound first
/// probe (a geometric series), of which the aggressor row is open for
/// `tAggON / (tAggON + tRP)` of every activation cycle. That share — and so
/// the estimate — grows monotonically with tAggON: the 30 ms press trials
/// are the long poles, tRAS-scale hammer trials the short ones. Retention
/// trials cost their idle duration. Everything scales with the touched site
/// rows and the configured repeats.
///
/// Only the *relative order* of estimates matters: the scheduler sorts by
/// them and ties fall back to plan order, so an imperfect model can reorder
/// dispatch but never change results.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    timing: TimingParams,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            timing: TimingParams::ddr4(),
        }
    }
}

impl CostModel {
    /// A model over explicit timing parameters (the default uses DDR4).
    pub fn new(timing: TimingParams) -> Self {
        CostModel { timing }
    }

    /// Estimated device occupancy of `trial` under `cfg`, in picoseconds of
    /// modeled board time. Deterministic and cheap: no device model is
    /// constructed.
    pub fn estimate(&self, cfg: &ExperimentConfig, trial: &Trial) -> u128 {
        let site =
            PatternSite::for_kind(trial.kind, TEST_BANK, trial.row, cfg.geometry.rows_per_bank);
        let rows = (site.aggressors.len() + site.victims.len()) as u128;
        let budget_ps = u128::from(cfg.budget.as_ps());
        let repeats = u128::from(cfg.repeats.max(1));
        // Aggressor-on share of one activation cycle, in parts per million.
        let on_share_ppm = |t_on: rowpress_dram::Time, t_off: rowpress_dram::Time| -> u128 {
            let on = u128::from(t_on.as_ps());
            let cycle = on + u128::from(t_off.as_ps());
            (on * 1_000_000).checked_div(cycle).unwrap_or(0)
        };
        let cost = match trial.measurement {
            Measurement::AcMin { t_aggon } => {
                // Bisection device time ~ 2x the budget-bound first probe,
                // per repeat; the row is open for the on-share of each cycle.
                let t_on = t_aggon.max(self.timing.t_ras);
                repeats * 2 * budget_ps * on_share_ppm(t_on, self.timing.t_rp) / 1_000_000
            }
            Measurement::AcMax { t_aggon } => {
                let t_on = t_aggon.max(self.timing.t_ras);
                budget_ps * on_share_ppm(t_on, self.timing.t_rp) / 1_000_000
            }
            // Bisection over on-times: the first probe holds the row open for
            // up to budget/ac per activation, so a search costs about two
            // full budgets per repeat.
            Measurement::TAggOnMin { .. } => repeats * 2 * budget_ps,
            Measurement::OnOff {
                delta_a2a,
                on_fraction,
            } => {
                let frac = on_fraction.clamp(0.0, 1.0);
                let t_on = self.timing.t_ras + delta_a2a * frac;
                let t_off = self.timing.t_rp + delta_a2a * (1.0 - frac);
                budget_ps * on_share_ppm(t_on, t_off) / 1_000_000
            }
            Measurement::Retention { duration } => u128::from(duration.as_ps()),
        };
        cost * rows
    }

    /// The order in which a worker pool should claim the trials of a plan:
    /// indices into `trials` sorted by descending estimate, ties broken by
    /// plan position (the sort is stable).
    pub fn dispatch_order(&self, cfg: &ExperimentConfig, trials: &[Trial]) -> Vec<usize> {
        let costs: Vec<u128> = trials.iter().map(|t| self.estimate(cfg, t)).collect();
        let mut order: Vec<usize> = (0..trials.len()).collect();
        order.sort_by_key(|&i| Reverse(costs[i]));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{lookup_module, Plan};
    use rowpress_dram::Time;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test_scale()
    }

    fn acmin_trial(t_aggon: Time) -> Trial {
        let cfg = cfg();
        Plan::grid(&cfg)
            .module(&lookup_module("S3").unwrap())
            .measurement(Measurement::AcMin { t_aggon })
            .build()
            .trials()[0]
            .clone()
    }

    #[test]
    fn long_taggon_trials_cost_more() {
        let cfg = cfg();
        let model = CostModel::default();
        let hammer = model.estimate(&cfg, &acmin_trial(Time::from_ns(36.0)));
        let press = model.estimate(&cfg, &acmin_trial(Time::from_ms(30.0)));
        assert!(
            press > hammer,
            "30 ms tAggON must out-cost tRAS: {press} vs {hammer}"
        );
    }

    #[test]
    fn retention_cost_scales_with_duration() {
        let cfg = cfg();
        let model = CostModel::default();
        let mut short = acmin_trial(Time::from_ns(36.0));
        short.measurement = Measurement::Retention {
            duration: Time::from_ms(1.0),
        };
        let mut long = short.clone();
        long.measurement = Measurement::Retention {
            duration: Time::from_secs(4.0),
        };
        assert!(model.estimate(&cfg, &long) > model.estimate(&cfg, &short));
    }

    #[test]
    fn dispatch_order_is_a_longest_first_permutation() {
        let cfg = cfg();
        let plan = Plan::grid(&cfg)
            .module(&lookup_module("S3").unwrap())
            .measurements(
                [Time::from_ns(36.0), Time::from_us(7.8), Time::from_ms(30.0)]
                    .into_iter()
                    .map(|t| Measurement::AcMin { t_aggon: t }),
            )
            .build();
        let model = CostModel::default();
        let order = model.dispatch_order(&cfg, plan.trials());
        // A permutation of 0..n.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..plan.len()).collect::<Vec<_>>());
        // Costs are non-increasing along the dispatch order, and equal costs
        // keep plan order (stable sort).
        let costs: Vec<u128> = plan
            .trials()
            .iter()
            .map(|t| model.estimate(&cfg, t))
            .collect();
        for pair in order.windows(2) {
            assert!(costs[pair[0]] >= costs[pair[1]]);
            if costs[pair[0]] == costs[pair[1]] {
                assert!(pair[0] < pair[1], "ties must fall back to plan order");
            }
        }
        // The 30 ms press trials dispatch before the tRAS hammer trials.
        let press = Measurement::AcMin {
            t_aggon: Time::from_ms(30.0),
        };
        let first = &plan.trials()[order[0]];
        assert_eq!(first.measurement, press);
    }

    #[test]
    fn schedule_policy_defaults_to_cost_aware() {
        assert_eq!(SchedulePolicy::default(), SchedulePolicy::CostAware);
    }
}
