//! Record sinks and readers: where the engine's plan-ordered
//! [`TrialRecord`] stream goes, and how partial JSONL streams come back.
//!
//! * [`MemorySink`] collects records in memory.
//! * [`JsonlSink`] streams records as JSON Lines to any [`Write`] target.
//! * [`ThreadedSink`] decouples any `Send` sink from the engine through a
//!   bounded channel and a background writer thread, so slow I/O never
//!   stalls the worker pool.
//! * [`JsonlReader`] parses a JSONL stream back into records and
//!   merge-sorts shard streams into plan order
//!   ([`JsonlReader::merge_shards`]).
//!
//! # Example: a threaded JSONL sink round-trips the stream
//!
//! [`ThreadedSink`] moves the inner sink to a background writer thread; the
//! engine's pool never blocks on I/O, yet the stream that reaches the inner
//! sink is byte-identical — and [`JsonlReader`] parses it back:
//!
//! ```
//! use rowpress_core::engine::{Engine, JsonlReader, JsonlSink, Measurement, Plan, ThreadedSink};
//! use rowpress_core::{lookup_module, ExperimentConfig};
//! use rowpress_dram::Time;
//! use std::io::BufReader;
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&lookup_module("S3").unwrap())
//!     .measurement(Measurement::AcMin { t_aggon: Time::from_ms(30.0) })
//!     .build();
//! let engine = Engine::new(&cfg);
//! let mut sink = ThreadedSink::new(JsonlSink::new(Vec::new()));
//! engine.run(&plan, &mut sink).unwrap();
//! let bytes = sink.into_inner().into_inner();
//! let records = JsonlReader::new(BufReader::new(&bytes[..])).read_all().unwrap();
//! assert_eq!(records, engine.run_collect(&plan)?);
//! # Ok::<(), rowpress_dram::DramError>(())
//! ```

use super::integrity::Crc32;
use super::plan::{Plan, TrialRecord};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Receives the record stream of an engine run, in plan order.
pub trait Sink {
    /// Accepts one record (by value — collecting sinks store it without
    /// another copy).
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the underlying writer fails.
    fn accept(&mut self, record: TrialRecord) -> std::io::Result<()>;

    /// Called once after the last record (flush point for buffered sinks).
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the underlying writer fails.
    fn finish(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Collects records in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Vec<TrialRecord>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records collected so far.
    pub fn records(&self) -> &[TrialRecord] {
        &self.records
    }

    /// Consumes the sink, returning the collected records.
    pub fn into_records(self) -> Vec<TrialRecord> {
        self.records
    }
}

impl Sink for MemorySink {
    fn accept(&mut self, record: TrialRecord) -> std::io::Result<()> {
        self.records.push(record);
        Ok(())
    }
}

/// Streams records as JSON Lines (one serde-serialized record per line) to
/// any [`Write`] target. Each line deserializes back into a [`TrialRecord`]
/// with `serde_json::from_str` — or stream-parse whole files with
/// [`JsonlReader`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn accept(&mut self, record: TrialRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(&record).map_err(std::io::Error::other)?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

/// Streams records as *framed* JSON lines — `<prefix> <record-json>\n` — to
/// a writer shared behind an `Arc<Mutex<_>>`, one atomic write per record.
///
/// This is the network-sink half of a remote campaign transport: a shard
/// process multiplexes its record stream and its heartbeat/progress frames
/// over one connection by sharing the writer, and the line-atomic writes
/// guarantee frames never tear each other even when records come from a
/// background [`ThreadedSink`] thread while heartbeats come from the event
/// callback. Each record is flushed immediately (a buffered record is no
/// heartbeat), so the collector on the other end sees progress in real
/// time. The prefix is caller-chosen — core stays agnostic of any
/// particular wire protocol.
///
/// ```
/// use rowpress_core::engine::{FramedSink, Sink};
/// use std::sync::{Arc, Mutex};
///
/// let wire = Arc::new(Mutex::new(Vec::new()));
/// let sink = FramedSink::new(Arc::clone(&wire), "##frame record");
/// drop(sink);
/// assert!(wire.lock().unwrap().is_empty());
/// ```
#[derive(Debug)]
pub struct FramedSink<W: Write> {
    writer: Arc<Mutex<W>>,
    prefix: String,
}

impl<W: Write> FramedSink<W> {
    /// Wraps a shared writer; every record line starts with `prefix` and a
    /// space.
    pub fn new(writer: Arc<Mutex<W>>, prefix: impl Into<String>) -> Self {
        FramedSink {
            writer,
            prefix: prefix.into(),
        }
    }

    /// Another handle to the shared writer (for multiplexing other frames
    /// onto the same connection).
    pub fn writer(&self) -> Arc<Mutex<W>> {
        Arc::clone(&self.writer)
    }
}

impl<W: Write> Sink for FramedSink<W> {
    fn accept(&mut self, record: TrialRecord) -> io::Result<()> {
        let json = serde_json::to_string(&record).map_err(io::Error::other)?;
        let mut line = String::with_capacity(self.prefix.len() + json.len() + 2);
        line.push_str(&self.prefix);
        line.push(' ');
        line.push_str(&json);
        line.push('\n');
        let mut writer = self.writer.lock().expect("framed sink writer lock");
        writer.write_all(line.as_bytes())?;
        writer.flush()
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.lock().expect("framed sink writer lock").flush()
    }
}

/// A [`Write`] adapter that passes bytes through *unchanged* while recording
/// the CRC-32 of every newline-terminated line (the newline itself is
/// excluded, matching the cache's per-line checksums) — the producer of the
/// merged output's `.crc` sidecar.
///
/// The wrapped stream is byte-identical to the unwrapped one: the merged
/// JSONL is a golden, byte-pinned artifact, so its integrity data rides in
/// a sidecar file instead of inline suffixes.
///
/// ```
/// use rowpress_core::engine::{crc32, CrcLineWriter};
/// use std::io::Write;
///
/// let mut writer = CrcLineWriter::new(Vec::new());
/// writer.write_all(b"alpha\nbravo\n").unwrap();
/// assert_eq!(writer.crcs(), [crc32(b"alpha"), crc32(b"bravo")]);
/// assert_eq!(writer.into_inner(), b"alpha\nbravo\n");
/// ```
#[derive(Debug)]
pub struct CrcLineWriter<W: Write> {
    inner: W,
    line: Crc32,
    crcs: Vec<u32>,
}

impl<W: Write> CrcLineWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        CrcLineWriter {
            inner,
            line: Crc32::new(),
            crcs: Vec::new(),
        }
    }

    /// The CRC of each completed line so far, in stream order.
    pub fn crcs(&self) -> &[u32] {
        &self.crcs
    }

    /// The sidecar text: one 8-digit lowercase-hex CRC per completed line,
    /// in stream order.
    pub fn sidecar(&self) -> String {
        self.crcs.iter().map(|crc| format!("{crc:08x}\n")).collect()
    }

    /// Consumes the adapter, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for CrcLineWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        for &byte in &buf[..written] {
            if byte == b'\n' {
                self.crcs.push(self.line.finish());
                self.line = Crc32::new();
            } else {
                self.line.update(&[byte]);
            }
        }
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

enum ThreadedMsg {
    // Boxed so the queued message stays pointer-sized next to `Finish`.
    Record(Box<TrialRecord>),
    Finish,
}

/// Hands records to an inner sink on a background writer thread over a
/// bounded channel, so a slow writer never stalls the engine's worker pool —
/// the pool keeps computing while the writer drains the queue. When the
/// queue is full, `accept` blocks (bounded memory; back-pressure instead of
/// unbounded buffering).
///
/// Record order is preserved: the engine feeds records in plan order and the
/// channel is FIFO, so the inner sink sees the byte-identical stream it
/// would have seen inline.
///
/// Inner-sink errors surface on [`ThreadedSink::finish`] (which waits until
/// the queue is fully drained and the inner sink flushed) — or on a later
/// `accept` once the writer thread has stopped. After an error the writer
/// drops further records.
#[derive(Debug)]
pub struct ThreadedSink<S: Sink + Send + 'static> {
    sender: Option<SyncSender<ThreadedMsg>>,
    acks: Receiver<io::Result<()>>,
    writer: Option<JoinHandle<S>>,
}

impl<S: Sink + Send + 'static> ThreadedSink<S> {
    /// Default bound of the record queue.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Spawns the writer thread with the default queue capacity.
    pub fn new(inner: S) -> Self {
        Self::with_capacity(inner, Self::DEFAULT_CAPACITY)
    }

    /// Spawns the writer thread with an explicit queue capacity (clamped to
    /// at least 1).
    pub fn with_capacity(mut inner: S, capacity: usize) -> Self {
        let (sender, receiver) = std::sync::mpsc::sync_channel(capacity.max(1));
        let (ack_tx, acks) = std::sync::mpsc::sync_channel(1);
        let writer = std::thread::spawn(move || {
            let mut failed: Option<io::ErrorKind> = None;
            while let Ok(msg) = receiver.recv() {
                match msg {
                    ThreadedMsg::Record(record) => {
                        if failed.is_none() {
                            if let Err(e) = inner.accept(*record) {
                                failed = Some(e.kind());
                                let _ = ack_tx.send(Err(e));
                            }
                        }
                    }
                    ThreadedMsg::Finish => {
                        let result = match failed {
                            // The error was already queued by the failing
                            // accept; acknowledge the finish itself.
                            Some(kind) => Err(io::Error::from(kind)),
                            None => inner.finish(),
                        };
                        let _ = ack_tx.send(result);
                    }
                }
            }
            inner
        });
        ThreadedSink {
            sender: Some(sender),
            acks,
            writer: Some(writer),
        }
    }

    fn disconnected() -> io::Error {
        io::Error::new(
            io::ErrorKind::BrokenPipe,
            "threaded sink writer thread stopped",
        )
    }

    /// Stops the writer thread and returns the inner sink. Pending records
    /// are drained first. Call [`Sink::finish`] beforehand to observe flush
    /// errors ([`super::Engine::run`] always does).
    pub fn into_inner(mut self) -> S {
        drop(self.sender.take());
        self.writer
            .take()
            .expect("writer thread present until into_inner")
            .join()
            .expect("threaded sink writer must not panic")
    }
}

impl<S: Sink + Send + 'static> Sink for ThreadedSink<S> {
    /// Queues the record, blocking when the channel is full.
    fn accept(&mut self, record: TrialRecord) -> std::io::Result<()> {
        // A prior inner-sink error parks its report in the ack queue; surface
        // it here instead of silently queueing more records.
        if let Ok(result) = self.acks.try_recv() {
            return result;
        }
        let sender = self.sender.as_ref().ok_or_else(Self::disconnected)?;
        sender
            .send(ThreadedMsg::Record(Box::new(record)))
            .map_err(|_| Self::disconnected())
    }

    /// Waits until every queued record reached the inner sink, then flushes
    /// it, returning the first error the writer hit (if any).
    fn finish(&mut self) -> std::io::Result<()> {
        let sender = self.sender.as_ref().ok_or_else(Self::disconnected)?;
        sender
            .send(ThreadedMsg::Finish)
            .map_err(|_| Self::disconnected())?;
        match self.acks.recv() {
            Ok(result) => result,
            Err(_) => Err(Self::disconnected()),
        }
    }
}

impl<S: Sink + Send + 'static> Drop for ThreadedSink<S> {
    fn drop(&mut self) {
        drop(self.sender.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Parses a JSON Lines stream of [`TrialRecord`]s — the output of
/// [`JsonlSink`] — skipping blank lines. Iterate it record by record, or
/// reassemble a sharded campaign with [`JsonlReader::merge_shards`].
/// (A [`PersistentCache`](super::PersistentCache) file is *not* a plain
/// record stream: it starts with a config-fingerprint header line; open it
/// through `PersistentCache` instead.)
#[derive(Debug)]
pub struct JsonlReader<R> {
    lines: std::io::Lines<R>,
}

impl JsonlReader<BufReader<File>> {
    /// Opens a JSONL file for reading.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be opened.
    pub fn from_path(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> JsonlReader<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        JsonlReader {
            lines: reader.lines(),
        }
    }

    /// Reads the remaining records into a vector.
    ///
    /// # Errors
    ///
    /// Returns the first read or parse error.
    pub fn read_all(self) -> io::Result<Vec<TrialRecord>> {
        self.collect()
    }

    /// Reads one record stream per shard and merge-sorts them back into plan
    /// order via [`Plan::merge`]: `readers` must hold the outputs of
    /// `plan.shard(0, n) .. plan.shard(n - 1, n)` in shard-index order.
    ///
    /// # Errors
    ///
    /// Returns the first read or parse error of any shard.
    pub fn merge_shards(readers: impl IntoIterator<Item = Self>) -> io::Result<Vec<TrialRecord>> {
        let shards = readers
            .into_iter()
            .map(Self::read_all)
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Plan::merge(shards))
    }
}

impl<R: BufRead> Iterator for JsonlReader<R> {
    type Item = io::Result<TrialRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.lines.next()? {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => {
                    return Some(serde_json::from_str(&line).map_err(io::Error::other));
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lookup_module, Engine, Measurement, Plan, TrialOutcome};
    use super::*;
    use crate::config::ExperimentConfig;
    use rowpress_dram::Time;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test_scale()
    }

    fn all_variant_plan(cfg: &ExperimentConfig) -> Plan {
        Plan::grid(cfg)
            .module(&lookup_module("S3").unwrap())
            .measurements([
                Measurement::AcMin {
                    t_aggon: Time::from_ms(30.0),
                },
                Measurement::AcMax {
                    t_aggon: Time::from_us(70.2),
                },
                Measurement::TAggOnMin { ac: 10 },
                Measurement::OnOff {
                    delta_a2a: Time::from_ns(6000.0),
                    on_fraction: 0.5,
                },
                Measurement::Retention {
                    duration: Time::from_secs(4.0),
                },
            ])
            .build()
    }

    #[test]
    fn jsonl_round_trips_every_measurement_variant() {
        let cfg = cfg();
        let plan = all_variant_plan(&cfg);
        let engine = Engine::new(&cfg);
        let records = engine.run_collect(&plan).unwrap();

        let mut sink = JsonlSink::new(Vec::new());
        engine.run(&plan, &mut sink).unwrap();
        let bytes = sink.into_inner();
        let lines = String::from_utf8(bytes.clone()).unwrap();
        assert_eq!(lines.lines().count(), records.len());

        // Every Measurement variant must appear, and every line must parse
        // back to the exact record through the JsonlReader.
        let parsed = JsonlReader::new(BufReader::new(&bytes[..]))
            .read_all()
            .unwrap();
        assert_eq!(parsed, records);
        for variant in ["AcMin", "AcMax", "TAggOnMin", "OnOff", "Retention"] {
            assert!(
                lines.contains(variant),
                "JSONL stream must name the {variant} variant"
            );
        }
    }

    #[test]
    fn jsonl_round_trips_every_outcome_variant_including_edge_cases() {
        let cfg = cfg();
        let trial = all_variant_plan(&cfg).trials()[0].clone();
        // Hand-built outcomes cover the optional-field edge cases a real run
        // might not hit (no-flip AcMin, flip-less TAggOnMin).
        let outcomes = [
            TrialOutcome::AcMin {
                ac_min: None,
                ac_max: 1_173_708,
                flips: Vec::new(),
            },
            TrialOutcome::AcMin {
                ac_min: Some(2),
                ac_max: 2,
                flips: Vec::new(),
            },
            TrialOutcome::AcMax {
                ac: 854,
                flips: Vec::new(),
            },
            TrialOutcome::TAggOnMin { t_aggon_min: None },
            TrialOutcome::TAggOnMin {
                t_aggon_min: Some(Time::from_us(70.2)),
            },
            TrialOutcome::OnOff {
                ac: 9_539,
                flips: Vec::new(),
            },
            TrialOutcome::Retention { flips: Vec::new() },
        ];
        for outcome in outcomes {
            let record = TrialRecord {
                trial: trial.clone(),
                outcome,
                wall_us: None,
            };
            let line = serde_json::to_string(&record).unwrap();
            let parsed: TrialRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(parsed, record);
        }
    }

    #[test]
    fn jsonl_reader_skips_blank_lines_and_reports_parse_errors() {
        let text = "\n  \n";
        let none = JsonlReader::new(BufReader::new(text.as_bytes()))
            .read_all()
            .unwrap();
        assert!(none.is_empty());
        let bad = "not json\n";
        assert!(JsonlReader::new(BufReader::new(bad.as_bytes()))
            .read_all()
            .is_err());
    }

    #[test]
    fn crc_line_writer_is_transparent_and_tracks_per_line_crcs() {
        use super::super::integrity::crc32;
        let cfg = cfg();
        let plan = all_variant_plan(&cfg);
        let engine = Engine::new(&cfg);
        let baseline = {
            let mut sink = JsonlSink::new(Vec::new());
            engine.run(&plan, &mut sink).unwrap();
            sink.into_inner()
        };
        let mut sink = JsonlSink::new(CrcLineWriter::new(Vec::new()));
        engine.run(&plan, &mut sink).unwrap();
        let writer = sink.into_inner();
        let crcs = writer.crcs().to_vec();
        let sidecar = writer.sidecar();
        let bytes = writer.into_inner();
        assert_eq!(bytes, baseline, "the wrapper must not change the stream");
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(crcs.len(), text.lines().count(), "one CRC per record line");
        for ((line, &crc), sidecar_line) in text.lines().zip(&crcs).zip(sidecar.lines()) {
            assert_eq!(crc32(line.as_bytes()), crc);
            assert_eq!(sidecar_line, format!("{crc:08x}"));
        }
    }

    #[test]
    fn threaded_sink_preserves_the_stream_and_returns_the_inner_sink() {
        let cfg = cfg();
        let plan = all_variant_plan(&cfg);
        let engine = Engine::new(&cfg);
        let baseline = {
            let mut sink = JsonlSink::new(Vec::new());
            engine.run(&plan, &mut sink).unwrap();
            sink.into_inner()
        };
        // A capacity of 1 forces back-pressure on every record.
        for capacity in [1, 4, 1024] {
            let mut sink = ThreadedSink::with_capacity(JsonlSink::new(Vec::new()), capacity);
            engine.run(&plan, &mut sink).unwrap();
            let bytes = sink.into_inner().into_inner();
            assert_eq!(
                bytes, baseline,
                "threaded sink (capacity {capacity}) must be byte-identical"
            );
        }
    }

    #[test]
    fn threaded_sink_surfaces_writer_errors_on_finish() {
        struct FailingSink;
        impl Sink for FailingSink {
            fn accept(&mut self, _record: TrialRecord) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
        }
        let cfg = cfg();
        let plan = all_variant_plan(&cfg);
        let mut sink = ThreadedSink::new(FailingSink);
        let err = Engine::new(&cfg).run(&plan, &mut sink).unwrap_err();
        assert!(
            matches!(err, super::super::EngineError::Sink(_)),
            "writer failure must surface as a sink error, got {err}"
        );
    }

    #[test]
    fn threaded_sink_supports_multiple_runs() {
        let cfg = cfg();
        let plan = all_variant_plan(&cfg);
        let engine = Engine::new(&cfg);
        let mut sink = ThreadedSink::new(MemorySink::new());
        engine.run(&plan, &mut sink).unwrap();
        engine.run(&plan, &mut sink).unwrap();
        let records = sink.into_inner().into_records();
        assert_eq!(records.len(), 2 * plan.len());
    }
}
