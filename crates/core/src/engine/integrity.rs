//! Per-line integrity primitives for the JSONL artifacts a campaign writes.
//!
//! A multi-day characterization campaign stores its only irreplaceable
//! state in append-only JSONL files: the shards' persistent caches and the
//! merged record stream. PR 5/6 made those files survive *clean* kills
//! (torn-tail repair, atomic compaction); this module is the substrate for
//! surviving *dirty* failures — a flipped bit on disk, a partial sector, a
//! corrupted interior line — by making every line carry a checksum of its
//! own payload.
//!
//! The framing is a plain-text suffix, `<payload>#crc32=xxxxxxxx`, chosen
//! so that:
//!
//! * legacy lines (no suffix) still parse — readers call
//!   [`split_checksum`] and get [`LineChecksum::Absent`], never an error;
//! * a checksummed line is still one line of valid-looking text — `grep`,
//!   `wc -l` and the torn-tail logic keep working unchanged;
//! * a JSON payload can never be mistaken for a suffixed one: serialized
//!   records end in `}`, while the suffix ends in 8 hex digits after a
//!   literal `#crc32=` tag.
//!
//! The checksum is CRC-32 (IEEE 802.3, the reflected 0xEDB88320
//! polynomial) — the point is detecting storage-level corruption, not
//! adversaries, and CRC-32 catches every single-bit flip and all burst
//! errors up to 32 bits, which is exactly the failure model of a torn or
//! bit-rotted sector.

/// The text tag that introduces a line checksum suffix.
pub const CRC_TAG: &str = "#crc32=";

/// CRC-32 lookup table (reflected 0xEDB88320), built at compile time.
static CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Streaming CRC-32 state, for input that arrives in pieces (the per-line
/// tracker inside [`CrcLineWriter`](super::CrcLineWriter)). Feed bytes with
/// [`Crc32::update`]; [`Crc32::finish`] reads the digest without consuming
/// the state.
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Crc32 {
    /// Fresh state (the CRC of zero bytes finishes to 0).
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0 >> 8) ^ CRC32_TABLE[((self.0 ^ u32::from(byte)) & 0xFF) as usize];
        }
    }

    /// The digest of everything updated so far.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// What [`split_checksum`] found at the end of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineChecksum {
    /// No checksum suffix — a legacy line; the payload is the whole line.
    Absent,
    /// A suffix whose checksum matches the payload.
    Valid,
    /// A suffix whose checksum does **not** match the payload: the line was
    /// corrupted after it was written (or torn mid-suffix).
    Mismatch,
}

/// Appends the checksum suffix to `payload`, producing one protected line
/// (without the trailing newline).
pub fn append_checksum(payload: &str) -> String {
    format!("{payload}{CRC_TAG}{:08x}", crc32(payload.as_bytes()))
}

/// Splits a line into its payload and checksum verdict. Lines without the
/// `#crc32=xxxxxxxx` suffix are legacy ([`LineChecksum::Absent`]) and
/// returned whole; the suffix shape is strict (exactly 8 lowercase hex
/// digits), so a payload that happens to contain the tag mid-line is never
/// mis-split.
pub fn split_checksum(line: &str) -> (&str, LineChecksum) {
    let Some(split) = line.len().checked_sub(CRC_TAG.len() + 8) else {
        return (line, LineChecksum::Absent);
    };
    if !line.is_char_boundary(split) || !line[split..].starts_with(CRC_TAG) {
        return (line, LineChecksum::Absent);
    }
    let hex = &line[split + CRC_TAG.len()..];
    if !hex
        .bytes()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return (line, LineChecksum::Absent);
    }
    let payload = &line[..split];
    let Ok(expected) = u32::from_str_radix(hex, 16) else {
        return (line, LineChecksum::Absent);
    };
    if crc32(payload.as_bytes()) == expected {
        (payload, LineChecksum::Valid)
    } else {
        (payload, LineChecksum::Mismatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checksums_round_trip_and_detect_single_bit_flips() {
        let payload = r#"{"trial":{"module":"S3"},"outcome":"x"}"#;
        let line = append_checksum(payload);
        assert!(line.starts_with(payload) && line.contains(CRC_TAG));
        assert_eq!(split_checksum(&line), (payload, LineChecksum::Valid));

        // Flip every single bit of the payload in turn: all must be caught.
        let bytes = line.as_bytes();
        for position in 0..payload.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.to_vec();
                corrupt[position] ^= 1 << bit;
                let Ok(text) = String::from_utf8(corrupt) else {
                    continue; // non-UTF-8 corruption is caught upstream
                };
                let (_, status) = split_checksum(&text);
                assert_eq!(status, LineChecksum::Mismatch, "bit {bit} @ {position}");
            }
        }
    }

    #[test]
    fn legacy_lines_and_decoy_suffixes_are_absent_not_errors() {
        assert_eq!(
            split_checksum(r#"{"plain":"json"}"#),
            (r#"{"plain":"json"}"#, LineChecksum::Absent)
        );
        assert_eq!(split_checksum(""), ("", LineChecksum::Absent));
        // A tag with the wrong digit count or uppercase hex is not a suffix.
        assert_eq!(split_checksum("x#crc32=abc").1, LineChecksum::Absent);
        assert_eq!(split_checksum("x#crc32=ABCDEF01").1, LineChecksum::Absent);
        // The tag appearing mid-payload (inside a JSON string) does not
        // confuse the splitter: only a trailing suffix counts.
        let tricky = r##"{"note":"#crc32=deadbeef"}"##;
        assert_eq!(split_checksum(tricky), (tricky, LineChecksum::Absent));
    }

    #[test]
    fn a_torn_suffix_degrades_to_a_legacy_line() {
        let line = append_checksum("{\"a\":1}");
        // Cut mid-suffix: no longer matches the strict shape, so the line
        // reads as a (corrupt, unparseable-as-JSON) legacy line — the JSON
        // parse then rejects it, which is the correct verdict for a tear.
        let torn = &line[..line.len() - 3];
        assert_eq!(split_checksum(torn).1, LineChecksum::Absent);
    }
}
