//! Unit tests of `engine::plan` (split out to keep the submodule readable).

use super::*;
use crate::engine::lookup_module;
use std::collections::HashMap;

fn spec(id: &str) -> ModuleSpec {
    lookup_module(id).expect("module in inventory")
}

fn cfg() -> ExperimentConfig {
    ExperimentConfig::test_scale()
}

fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
    Plan::grid(cfg)
        .modules(&[spec("S3"), spec("S0")])
        .temperatures(&[50.0, 80.0])
        .measurements(
            [Time::from_ns(36.0), Time::from_ms(30.0)]
                .into_iter()
                .map(|t| Measurement::AcMin { t_aggon: t }),
        )
        .build()
}

#[test]
fn grid_builder_expands_the_cartesian_product() {
    let cfg = cfg();
    let plan = acmin_plan(&cfg);
    // 2 modules x 2 temperatures x 3 rows x 2 measurements.
    assert_eq!(plan.len(), 2 * 2 * cfg.tested_sites().len() * 2);
    assert!(!plan.is_empty());
    // Innermost axis varies fastest: the first two trials differ only in
    // the measurement.
    let (a, b) = (&plan.trials()[0], &plan.trials()[1]);
    assert_eq!(a.spec, b.spec);
    assert_eq!(a.row, b.row);
    assert_ne!(a.measurement, b.measurement);
    // Outermost axis varies slowest.
    assert_eq!(plan.trials()[0].spec.id, "S3");
    assert_eq!(plan.trials().last().unwrap().spec.id, "S0");
}

#[test]
fn build_dedupes_every_axis_except_jitters() {
    let cfg = cfg();
    let baseline = acmin_plan(&cfg);
    let inflated = Plan::grid(&cfg)
        .modules(&[spec("S3"), spec("S3"), spec("S0"), spec("S3")])
        .temperatures(&[50.0, 80.0, 50.0])
        .kinds(&[PatternKind::SingleSided, PatternKind::SingleSided])
        .data_patterns(&[cfg.data_pattern, cfg.data_pattern])
        .rows({
            let mut rows = cfg.tested_sites();
            rows.extend(cfg.tested_sites());
            rows
        })
        .measurements(
            [
                Time::from_ns(36.0),
                Time::from_ms(30.0),
                Time::from_ns(36.0),
            ]
            .into_iter()
            .map(|t| Measurement::AcMin { t_aggon: t }),
        )
        .build();
    assert_eq!(inflated, baseline, "duplicates must not inflate the grid");

    // The jitter axis is the repetition axis: identical entries survive.
    let repeated = Plan::grid(&cfg)
        .module(&spec("S3"))
        .jitters((0..4).map(|i| Jitter::seeded(0.0, i)))
        .measurement(Measurement::AcMax {
            t_aggon: Time::from_us(70.2),
        })
        .build();
    assert_eq!(repeated.len(), 4 * cfg.tested_sites().len());
}

#[test]
fn shard_strides_and_merge_restores_plan_order() {
    let cfg = cfg();
    let plan = acmin_plan(&cfg);
    for shards in [1, 2, 3, 5, plan.len(), plan.len() + 3] {
        let parts: Vec<Plan> = (0..shards).map(|i| plan.shard(i, shards)).collect();
        let total: usize = parts.iter().map(Plan::len).sum();
        assert_eq!(total, plan.len(), "shards must partition the plan");
        // Stride discipline: shard i holds trials i, i+n, i+2n, ...
        for (i, part) in parts.iter().enumerate() {
            for (k, trial) in part.trials().iter().enumerate() {
                assert_eq!(trial, &plan.trials()[i + k * shards]);
            }
        }
        // Merging record streams (records here stand in 1:1 for trials)
        // restores plan order exactly.
        let streams: Vec<Vec<TrialRecord>> = parts
            .iter()
            .map(|p| {
                p.trials()
                    .iter()
                    .map(|t| TrialRecord {
                        trial: t.clone(),
                        outcome: TrialOutcome::Retention { flips: Vec::new() },
                        wall_us: None,
                    })
                    .collect()
            })
            .collect();
        let merged = Plan::merge(streams);
        let expected: Vec<&Trial> = plan.trials().iter().collect();
        let got: Vec<&Trial> = merged.iter().map(|r| &r.trial).collect();
        assert_eq!(got, expected, "{shards}-way merge must restore order");
    }
}

#[test]
#[should_panic(expected = "shard index")]
fn shard_rejects_out_of_range_index() {
    let cfg = cfg();
    acmin_plan(&cfg).shard(3, 3);
}

#[test]
fn jitter_normalization_and_trial_hashing() {
    assert_eq!(Jitter::seeded(0.0, 99), Jitter::none());
    assert_eq!(Jitter::default(), Jitter::none());
    assert_ne!(Jitter::seeded(0.2, 99), Jitter::none());
    let cfg = cfg();
    let t = Plan::grid(&cfg)
        .module(&spec("S3"))
        .measurement(Measurement::AcMin {
            t_aggon: Time::from_ms(30.0),
        })
        .build()
        .trials()[0]
        .clone();
    let mut map = HashMap::new();
    map.insert(t.clone(), 1u32);
    assert_eq!(map.get(&t), Some(&1));
    let mut other = t.clone();
    other.temperature_c = 80.0;
    assert!(!map.contains_key(&other));
}

#[test]
fn bitwise_float_equality_for_cache_keys() {
    let cfg = cfg();
    let plan = Plan::grid(&cfg)
        .module(&spec("S0"))
        .measurement(Measurement::AcMin {
            t_aggon: Time::from_ms(30.0),
        })
        .build();
    // Bitwise float equality: -0.0 and NaN are safe as cache keys.
    let a = plan.trials()[0].clone();
    let mut b = a.clone();
    b.temperature_c = -0.0;
    let mut zero = a.clone();
    zero.temperature_c = 0.0;
    assert_ne!(zero, b, "-0.0 must not alias 0.0 under bitwise equality");
    let mut nan = a.clone();
    nan.temperature_c = f64::NAN;
    assert_eq!(nan, nan.clone(), "NaN trials must equal themselves");
    assert_eq!(Jitter::seeded(f64::NAN, 1), Jitter::seeded(f64::NAN, 1));
}
