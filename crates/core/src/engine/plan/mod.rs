//! Trial vocabulary and declarative plans: [`Trial`], [`Measurement`],
//! [`TrialOutcome`], [`TrialRecord`], and the [`Plan`]/[`PlanBuilder`] pair
//! that expands a study grid into an ordered trial list.
//!
//! Plans are where distribution starts: [`Plan::shard`] splits a grid into
//! `n` strided sub-plans that independent processes can execute, and
//! [`Plan::merge`] reassembles their partial record streams back into
//! single-process plan order (see the module docs of [`crate::engine`]).
//!
//! # Example: shard a grid, merge the streams
//!
//! Sharding strides (shard `i` of `n` takes trials `i`, `i+n`, `i+2n`, …),
//! so merging is the round-robin interleave that restores plan order
//! exactly — independent of how the per-shard streams were produced:
//!
//! ```
//! use rowpress_core::engine::{Measurement, Plan, TrialOutcome, TrialRecord};
//! use rowpress_core::{lookup_module, ExperimentConfig};
//! use rowpress_dram::Time;
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&lookup_module("S3")?)
//!     .measurements(
//!         [Time::from_ns(36.0), Time::from_ms(30.0)]
//!             .into_iter()
//!             .map(|t| Measurement::AcMin { t_aggon: t }),
//!     )
//!     .build();
//! // Stride discipline: shard 1 of 2 holds trials 1, 3, 5, ...
//! let shard = plan.shard(1, 2);
//! assert_eq!(shard.trials()[0], plan.trials()[1]);
//! assert_eq!(shard.trials()[1], plan.trials()[3]);
//! // Merging per-shard record streams restores plan order.
//! let streams: Vec<Vec<TrialRecord>> = (0..2)
//!     .map(|i| {
//!         plan.shard(i, 2)
//!             .trials()
//!             .iter()
//!             .map(|t| TrialRecord {
//!                 trial: t.clone(),
//!                 outcome: TrialOutcome::Retention { flips: Vec::new() },
//!                 wall_us: None,
//!             })
//!             .collect()
//!     })
//!     .collect();
//! let merged = Plan::merge(streams);
//! assert!(merged.iter().map(|r| &r.trial).eq(plan.trials().iter()));
//! # Ok::<(), rowpress_core::EngineError>(())
//! ```

use crate::config::ExperimentConfig;
use crate::patterns::PatternKind;
use rowpress_dram::{BankId, Bitflip, DataPattern, ModuleSpec, RowId, Time};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// The bank the paper tests (bank 1 of every module).
pub const TEST_BANK: BankId = BankId(1);

/// Per-trial threshold jitter, modeling run-to-run variation of borderline
/// cells (paper Appendix E). `sigma = 0` (the default) makes the device fully
/// deterministic.
///
/// Equality (like that of [`Measurement`] and [`Trial`]) compares the float
/// field *bitwise*, matching the `Hash` implementation exactly so the types
/// uphold the `Eq`/`Hash` contract for any input — including `NaN` (equal to
/// itself here) and `-0.0` (distinct from `0.0`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Jitter {
    /// Lognormal sigma of the per-cell threshold factor.
    pub sigma: f64,
    /// Salt deriving the per-cell deviates; vary it per iteration.
    pub salt: u64,
}

impl Jitter {
    /// No jitter: the deterministic device.
    pub fn none() -> Self {
        Jitter {
            sigma: 0.0,
            salt: 0,
        }
    }

    /// Jitter with the given sigma and salt. A zero sigma normalizes the salt
    /// to 0 (the device ignores the salt then), which lets the trial cache
    /// recognize iterations of a deterministic experiment as identical.
    pub fn seeded(sigma: f64, salt: u64) -> Self {
        if sigma == 0.0 {
            Jitter::none()
        } else {
            Jitter { sigma, salt }
        }
    }
}

impl Default for Jitter {
    fn default() -> Self {
        Jitter::none()
    }
}

impl PartialEq for Jitter {
    fn eq(&self, other: &Self) -> bool {
        self.sigma.to_bits() == other.sigma.to_bits() && self.salt == other.salt
    }
}

impl Eq for Jitter {}

impl Hash for Jitter {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sigma.to_bits().hash(state);
        self.salt.hash(state);
    }
}

/// The measurement taken at one trial point — the paper study it belongs to.
///
/// Equality compares float fields bitwise (see [`Jitter`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Measurement {
    /// Bisection search for the minimum activation count that flips a bit at
    /// a fixed aggressor-on time (§4.1, Figs. 1 and 6–18).
    AcMin {
        /// Aggressor-row-on time.
        t_aggon: Time,
    },
    /// All bitflips at the maximum activation count that fits the 60 ms
    /// budget (Fig. 11, Fig. 22, Tables 6/9).
    AcMax {
        /// Aggressor-row-on time.
        t_aggon: Time,
    },
    /// Bisection search for the minimum aggressor-on time that flips a bit at
    /// a fixed activation count (§4.2, Figs. 9 and 15).
    TAggOnMin {
        /// Fixed total activation count.
        ac: u64,
    },
    /// The RowPress-ONOFF pattern: tA2A fixed to tRC + Δ with a fraction of
    /// the slack assigned to the on time (§5.4, Fig. 22).
    OnOff {
        /// Slack added on top of tRC (ΔtA2A).
        delta_a2a: Time,
        /// Fraction of the slack assigned to the on time.
        on_fraction: f64,
    },
    /// Data-retention test: victims initialized and left unrefreshed (§4.3,
    /// the retention population of Fig. 10/11).
    Retention {
        /// Unrefreshed idle time (4 s at 80 °C in the paper).
        duration: Time,
    },
}

impl PartialEq for Measurement {
    fn eq(&self, other: &Self) -> bool {
        use Measurement::*;
        match (self, other) {
            (AcMin { t_aggon: a }, AcMin { t_aggon: b })
            | (AcMax { t_aggon: a }, AcMax { t_aggon: b }) => a == b,
            (TAggOnMin { ac: a }, TAggOnMin { ac: b }) => a == b,
            (
                OnOff {
                    delta_a2a: a,
                    on_fraction: fa,
                },
                OnOff {
                    delta_a2a: b,
                    on_fraction: fb,
                },
            ) => a == b && fa.to_bits() == fb.to_bits(),
            (Retention { duration: a }, Retention { duration: b }) => a == b,
            _ => false,
        }
    }
}

impl Eq for Measurement {}

impl Hash for Measurement {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Measurement::AcMin { t_aggon } | Measurement::AcMax { t_aggon } => t_aggon.hash(state),
            Measurement::TAggOnMin { ac } => ac.hash(state),
            Measurement::OnOff {
                delta_a2a,
                on_fraction,
            } => {
                delta_a2a.hash(state);
                on_fraction.to_bits().hash(state);
            }
            Measurement::Retention { duration } => duration.hash(state),
        }
    }
}

/// One point of the characterization grid: everything needed to reproduce a
/// single measurement, and the key of the engine's result cache.
///
/// Equality compares the temperature bitwise (see [`Jitter`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    /// Module under test.
    pub spec: ModuleSpec,
    /// Chip temperature in °C.
    pub temperature_c: f64,
    /// Access-pattern family laid out around the tested row.
    pub kind: PatternKind,
    /// The tested (aggressor-site) row.
    pub row: RowId,
    /// Data pattern filling aggressor and victim rows.
    pub data_pattern: DataPattern,
    /// Per-trial threshold jitter (Appendix E); defaults to none.
    pub jitter: Jitter,
    /// The measurement to take.
    pub measurement: Measurement,
}

impl PartialEq for Trial {
    fn eq(&self, other: &Self) -> bool {
        self.spec == other.spec
            && self.temperature_c.to_bits() == other.temperature_c.to_bits()
            && self.kind == other.kind
            && self.row == other.row
            && self.data_pattern == other.data_pattern
            && self.jitter == other.jitter
            && self.measurement == other.measurement
    }
}

impl Eq for Trial {}

impl Hash for Trial {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.spec.hash(state);
        self.temperature_c.to_bits().hash(state);
        self.kind.hash(state);
        self.row.hash(state);
        self.data_pattern.hash(state);
        self.jitter.hash(state);
        self.measurement.hash(state);
    }
}

/// The outcome of one trial, mirroring the [`Measurement`] variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrialOutcome {
    /// Outcome of [`Measurement::AcMin`].
    AcMin {
        /// Minimum activation count inducing a bitflip; `None` when even the
        /// budget maximum induces none.
        ac_min: Option<u64>,
        /// Largest activation count that fits the budget, computed on the
        /// same tRAS-clamped code path in both the flip and no-flip cases.
        ac_max: u64,
        /// Bitflips observed at ACmin (empty when `ac_min` is `None`).
        flips: Vec<Bitflip>,
    },
    /// Outcome of [`Measurement::AcMax`].
    AcMax {
        /// The activation count used (the budget maximum).
        ac: u64,
        /// All victim bitflips.
        flips: Vec<Bitflip>,
    },
    /// Outcome of [`Measurement::TAggOnMin`].
    TAggOnMin {
        /// Minimum aggressor-on time inducing a bitflip, if any.
        t_aggon_min: Option<Time>,
    },
    /// Outcome of [`Measurement::OnOff`].
    OnOff {
        /// Number of activations issued (the budget maximum for the cycle).
        ac: u64,
        /// All victim bitflips.
        flips: Vec<Bitflip>,
    },
    /// Outcome of [`Measurement::Retention`].
    Retention {
        /// Retention-failure bitflips in the site's victim rows.
        flips: Vec<Bitflip>,
    },
}

/// A trial together with its outcome: the unit streamed to
/// [`Sink`](super::Sink)s.
///
/// `wall_us` is the measured wall-clock cost of computing the outcome, in
/// microseconds — the observation [`CostModel::fit`](super::CostModel::fit)
/// learns per-measurement-kind correction factors from. It is *metadata*,
/// not part of the result: engine record streams always carry `None` (so
/// sink output stays byte-identical regardless of timing), and only
/// [`PersistentCache`](super::PersistentCache) files persist measured times.
/// Serialization omits the field entirely when `None` and tolerates its
/// absence when parsing, so every pre-existing cache/record file still
/// round-trips unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The executed trial.
    pub trial: Trial,
    /// Its outcome.
    pub outcome: TrialOutcome,
    /// Measured wall-clock compute time in microseconds, when known.
    pub wall_us: Option<u64>,
}

// Hand-written (rather than derived) serde impls: the derive encodes every
// field unconditionally and errors on a missing one, but `wall_us` must be
// *omitted* when `None` — the engine's sink streams predate the field and
// are pinned byte-for-byte by tests/golden.rs — and *tolerated* when absent,
// so cache files written before timing existed still preload.
impl serde::Serialize for TrialRecord {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("trial".to_string(), self.trial.to_value()),
            ("outcome".to_string(), self.outcome.to_value()),
        ];
        if let Some(wall_us) = self.wall_us {
            fields.push(("wall_us".to_string(), serde::Value::U64(wall_us)));
        }
        serde::Value::Map(fields)
    }
}

impl<'de> serde::Deserialize<'de> for TrialRecord {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(TrialRecord {
            trial: serde::Deserialize::from_value(value.field("trial")?)?,
            outcome: serde::Deserialize::from_value(value.field("outcome")?)?,
            wall_us: match value.field("wall_us") {
                Ok(wall) => serde::Deserialize::from_value(wall)?,
                Err(_) => None,
            },
        })
    }
}

/// An ordered list of trials. Execution results always stream in plan order.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    trials: Vec<Trial>,
}

impl Plan {
    /// Starts a declarative grid builder over the configuration's defaults.
    pub fn grid(cfg: &ExperimentConfig) -> PlanBuilder {
        PlanBuilder {
            cfg: *cfg,
            modules: Vec::new(),
            temperatures: vec![cfg.temperature_c],
            kinds: vec![PatternKind::SingleSided],
            data_patterns: vec![cfg.data_pattern],
            jitters: vec![Jitter::none()],
            rows: None,
            measurements: Vec::new(),
        }
    }

    /// Wraps an explicit trial list (for irregular, non-grid plans).
    pub fn from_trials(trials: Vec<Trial>) -> Self {
        Plan { trials }
    }

    /// The trials in execution order.
    pub fn trials(&self) -> &[Trial] {
        &self.trials
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// True if the plan contains no trials.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// The `index`-th of `of` strided shards: every trial whose plan position
    /// is congruent to `index` modulo `of`, in plan order. This is the
    /// paper's Slurm-style fan-out — each process runs one shard of the same
    /// grid, and [`Plan::merge`] reassembles the partial record streams.
    ///
    /// Striding (rather than chunking) balances the shards: the expensive
    /// long-tAggON trials of a grid land in every shard instead of all in the
    /// last one.
    ///
    /// # Panics
    ///
    /// Panics when `of` is zero or `index >= of`.
    pub fn shard(&self, index: usize, of: usize) -> Plan {
        assert!(of > 0, "shard count must be positive");
        assert!(
            index < of,
            "shard index {index} out of range for {of} shards"
        );
        Plan {
            trials: self
                .trials
                .iter()
                .enumerate()
                .filter(|(i, _)| i % of == index)
                .map(|(_, t)| t.clone())
                .collect(),
        }
    }

    /// Merge-sorts the record streams of the `n` shards of one plan back into
    /// single-process plan order.
    ///
    /// `shards[i]` must hold the records of `plan.shard(i, n)` in that
    /// shard's own order (engine runs always emit in plan order, so any sink
    /// output qualifies). Because [`Plan::shard`] strides, plan order is
    /// exactly the round-robin interleaving of the shard streams — shard 0's
    /// first record, shard 1's first record, …, shard 0's second record, and
    /// so on — which is what this performs, skipping exhausted shards in the
    /// final round. Takes the shards by value and moves the records: merging
    /// never copies a flip vector.
    pub fn merge(shards: Vec<Vec<TrialRecord>>) -> Vec<TrialRecord> {
        let total = shards.iter().map(Vec::len).sum();
        let mut streams: Vec<std::vec::IntoIter<TrialRecord>> =
            shards.into_iter().map(Vec::into_iter).collect();
        let mut merged: Vec<TrialRecord> = Vec::with_capacity(total);
        loop {
            let before = merged.len();
            for stream in &mut streams {
                if let Some(record) = stream.next() {
                    merged.push(record);
                }
            }
            if merged.len() == before {
                break;
            }
        }
        merged
    }
}

/// Retains the first occurrence of each key, dropping later duplicates.
fn dedup_by_key<T, K: Eq + Hash>(items: &mut Vec<T>, key: impl Fn(&T) -> K) {
    let mut seen = HashSet::with_capacity(items.len());
    items.retain(|item| seen.insert(key(item)));
}

/// Builds a [`Plan`] as the cartesian product of its axes, expressing each
/// paper study declaratively.
///
/// Axis defaults come from the [`ExperimentConfig`]: one temperature
/// (`cfg.temperature_c`), the single-sided pattern family, one data pattern
/// (`cfg.data_pattern`), no jitter and the configured tested rows. The
/// nesting order — modules, temperatures, kinds, data patterns, jitters,
/// rows, measurements (innermost) — matches the loop order of the original
/// hand-written drivers, so record streams keep their historical order.
///
/// [`PlanBuilder::build`] deduplicates every axis except jitters (first
/// occurrence wins), so a repeated `.module(...)` call or a duplicated row
/// list cannot inflate the grid with identical trials. The jitter axis is
/// exempt because it is the *repetition* axis: a jitter-free repeatability
/// plan deliberately repeats `Jitter::none()` once per iteration.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    cfg: ExperimentConfig,
    modules: Vec<ModuleSpec>,
    temperatures: Vec<f64>,
    kinds: Vec<PatternKind>,
    data_patterns: Vec<DataPattern>,
    jitters: Vec<Jitter>,
    rows: Option<Vec<RowId>>,
    measurements: Vec<Measurement>,
}

impl PlanBuilder {
    /// Sets the modules axis.
    pub fn modules(mut self, modules: &[ModuleSpec]) -> Self {
        self.modules = modules.to_vec();
        self
    }

    /// Sets the modules axis to a single module.
    pub fn module(mut self, spec: &ModuleSpec) -> Self {
        self.modules = vec![spec.clone()];
        self
    }

    /// Sets the temperatures axis.
    pub fn temperatures(mut self, temperatures: &[f64]) -> Self {
        self.temperatures = temperatures.to_vec();
        self
    }

    /// Sets the pattern-family axis to a single kind.
    pub fn kind(mut self, kind: PatternKind) -> Self {
        self.kinds = vec![kind];
        self
    }

    /// Sets the pattern-family axis.
    pub fn kinds(mut self, kinds: &[PatternKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Sets the data-pattern axis.
    pub fn data_patterns(mut self, patterns: &[DataPattern]) -> Self {
        self.data_patterns = patterns.to_vec();
        self
    }

    /// Sets the jitter axis (one entry per repetition of the grid). This is
    /// the one axis [`PlanBuilder::build`] does not deduplicate.
    pub fn jitters(mut self, jitters: impl IntoIterator<Item = Jitter>) -> Self {
        self.jitters = jitters.into_iter().collect();
        self
    }

    /// Overrides the tested rows (defaults to `cfg.tested_sites()`).
    pub fn rows(mut self, rows: Vec<RowId>) -> Self {
        self.rows = Some(rows);
        self
    }

    /// Sets the measurement axis (innermost).
    pub fn measurements(mut self, measurements: impl IntoIterator<Item = Measurement>) -> Self {
        self.measurements = measurements.into_iter().collect();
        self
    }

    /// Sets the measurement axis to a single measurement.
    pub fn measurement(mut self, measurement: Measurement) -> Self {
        self.measurements = vec![measurement];
        self
    }

    /// Expands the grid into a [`Plan`], deduplicating every axis except
    /// jitters first (see the type-level docs).
    pub fn build(self) -> Plan {
        let mut modules = self.modules;
        let mut temperatures = self.temperatures;
        let mut kinds = self.kinds;
        let mut data_patterns = self.data_patterns;
        let mut rows = self.rows.unwrap_or_else(|| self.cfg.tested_sites());
        let mut measurements = self.measurements;
        dedup_by_key(&mut modules, |m| m.clone());
        dedup_by_key(&mut temperatures, |t| t.to_bits());
        dedup_by_key(&mut kinds, |k| *k);
        dedup_by_key(&mut data_patterns, |p| *p);
        dedup_by_key(&mut rows, |r| *r);
        dedup_by_key(&mut measurements, |m| *m);

        let mut trials = Vec::with_capacity(
            modules.len()
                * temperatures.len()
                * kinds.len()
                * data_patterns.len()
                * self.jitters.len()
                * rows.len()
                * measurements.len(),
        );
        for spec in &modules {
            for &temperature_c in &temperatures {
                for &kind in &kinds {
                    for &data_pattern in &data_patterns {
                        for &jitter in &self.jitters {
                            for &row in &rows {
                                for &measurement in &measurements {
                                    trials.push(Trial {
                                        spec: spec.clone(),
                                        temperature_c,
                                        kind,
                                        row,
                                        data_pattern,
                                        jitter,
                                        measurement,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Plan { trials }
    }
}

#[cfg(test)]
mod tests;
