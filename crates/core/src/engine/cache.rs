//! Trial-outcome caches: the in-process [`TrialCache`] and the cross-process
//! [`PersistentCache`] that preloads/flushes it through a JSONL file.
//!
//! The in-process cache memoizes every executed [`Trial`] for the lifetime of
//! the process ([`Engine::shared`](super::Engine::shared) hands all study
//! drivers one per configuration). [`PersistentCache`] extends that across
//! processes: it preloads previously flushed [`TrialRecord`] JSONL at open,
//! seeds the cache with it, and appends the outcomes computed since on
//! [`PersistentCache::flush`] (also invoked on drop) — so a repeated bench
//! run in a *new* process replays entirely from disk.

use super::plan::{Trial, TrialOutcome, TrialRecord};
use crate::config::ExperimentConfig;
use fxhash::{FxHashMap, FxHashSet};
use rowpress_dram::DramResult;
use serde::{Deserialize, Serialize};
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The memoized result of one trial. Errors are cached too: the device model
/// is deterministic, so a trial that failed once (e.g. an out-of-range row)
/// fails identically every time.
pub(super) type CachedOutcome = DramResult<Arc<TrialOutcome>>;

/// A shareable, thread-safe [`Trial`]-keyed outcome cache with hit/miss
/// accounting. Cloning shares the underlying storage.
///
/// Keys are hashed with the vendored `fxhash` (multiply-rotate) hasher:
/// trial keys are process-local and trusted, so SipHash's DoS-resistance
/// buys nothing, while a `Trial` hashes its whole spec — module id, die
/// calibration, measurement — on every lookup of the replay hot path.
///
/// Each trial maps to a [`OnceLock`] cell, so concurrent requests for the
/// *same* trial (e.g. the identical iterations of a jitter-free
/// repeatability plan) block on one computation instead of racing to
/// recompute it per worker.
#[derive(Debug, Clone, Default)]
pub struct TrialCache {
    cells: Arc<Mutex<FxHashMap<Trial, Arc<OnceLock<CachedOutcome>>>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl TrialCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached outcome for `trial`, computing it with `compute`
    /// on first request. Concurrent callers for the same trial wait for the
    /// single in-flight computation.
    pub(super) fn get_or_compute(
        &self,
        trial: &Trial,
        compute: impl FnOnce() -> DramResult<TrialOutcome>,
    ) -> CachedOutcome {
        let cell = {
            let mut cells = self.cells.lock().expect("cache lock");
            match cells.get(trial) {
                // Hot replay path: no key clone (a Trial clone heap-allocates
                // the module id and date code) when the cell already exists.
                Some(cell) => Arc::clone(cell),
                None => Arc::clone(cells.entry(trial.clone()).or_default()),
            }
        };
        let mut computed = false;
        let outcome = cell.get_or_init(|| {
            computed = true;
            compute().map(Arc::new)
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        outcome.clone()
    }

    /// Seeds the cache with a known outcome (the preload path of
    /// [`PersistentCache`]). A trial that is already cached keeps its first
    /// outcome; seeding counts as neither hit nor miss.
    pub fn seed(&self, trial: Trial, outcome: TrialOutcome) {
        let cell = {
            let mut cells = self.cells.lock().expect("cache lock");
            Arc::clone(cells.entry(trial).or_default())
        };
        cell.get_or_init(|| Ok(Arc::new(outcome)));
    }

    /// Snapshot of every successfully completed (trial, outcome) pair whose
    /// trial is not in `exclude`. Errored and in-flight trials are skipped.
    /// The filter runs before any clone, so an incremental caller (the
    /// persistent cache's flush) pays only for the fresh entries, not for
    /// re-cloning the whole cache under the lock.
    pub(super) fn completed_excluding(
        &self,
        exclude: &FxHashSet<Trial>,
    ) -> Vec<(Trial, Arc<TrialOutcome>)> {
        self.cells
            .lock()
            .expect("cache lock")
            .iter()
            .filter(|(trial, _)| !exclude.contains(*trial))
            .filter_map(|(trial, cell)| {
                let outcome = cell.get()?.as_ref().ok()?;
                Some((trial.clone(), Arc::clone(outcome)))
            })
            .collect()
    }

    /// Number of lookups answered from the cache (including lookups that
    /// waited for another worker's in-flight computation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that computed the trial.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct trials with a completed outcome in the cache.
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .expect("cache lock")
            .values()
            .filter(|c| c.get().is_some())
            .count()
    }

    /// True if no trials are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached outcome (hit/miss counters are kept). For a cache
    /// obtained via [`Engine::shared`](super::Engine::shared) this releases
    /// the process-wide memory held for the configuration — call it between
    /// large studies when the memoized flip vectors are no longer worth
    /// their footprint.
    pub fn clear(&self) {
        self.cells.lock().expect("cache lock").clear();
    }
}

/// A hashable fingerprint of the `ExperimentConfig` fields that influence
/// trial outcomes, partitioning the process-wide cache registry and
/// stamped into every [`PersistentCache`] file header. The config's
/// `data_pattern`, `temperature_c` and `rows_per_module` are deliberately
/// *omitted*: trials carry their own pattern, temperature and row, and the
/// worker never reads those config fields — so configs differing only in
/// grid defaults still share byte-identical trials.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct ConfigKey {
    banks: u16,
    rows_per_bank: u32,
    bits_per_row: u32,
    bits_per_cache_block: u32,
    budget_ps: u64,
    repeats: u32,
    accuracy_bits: u64,
}

impl ConfigKey {
    fn of(cfg: &ExperimentConfig) -> Self {
        ConfigKey {
            banks: cfg.geometry.banks,
            rows_per_bank: cfg.geometry.rows_per_bank,
            bits_per_row: cfg.geometry.bits_per_row,
            bits_per_cache_block: cfg.geometry.bits_per_cache_block,
            budget_ps: cfg.budget.as_ps(),
            repeats: cfg.repeats,
            accuracy_bits: cfg.accuracy_pct.to_bits(),
        }
    }
}

/// The process-wide cache for a configuration ([`Engine::shared`]'s storage).
///
/// [`Engine::shared`]: super::Engine::shared
pub(super) fn shared_cache(cfg: &ExperimentConfig) -> TrialCache {
    static REGISTRY: OnceLock<Mutex<FxHashMap<ConfigKey, TrialCache>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(FxHashMap::default()));
    registry
        .lock()
        .expect("cache registry lock")
        .entry(ConfigKey::of(cfg))
        .or_default()
        .clone()
}

/// The first line of every [`PersistentCache`] file: the fingerprint of the
/// configuration the outcomes were computed under. [`Trial`] equality
/// deliberately ignores config fields (budget, repeats, accuracy, geometry),
/// so without this header a cache written under one configuration would
/// silently replay wrong outcomes under another.
#[derive(Debug, Serialize, Deserialize)]
struct CacheHeader {
    config: ConfigKey,
}

/// A [`TrialCache`] bound to a JSONL file so trial outcomes survive the
/// process: the paper's "never recompute a measured point" discipline across
/// bench invocations.
///
/// [`PersistentCache::open`] checks the file's config-fingerprint header
/// against the caller's [`ExperimentConfig`] (opening a cache written under
/// a different budget/repeats/accuracy/geometry is an
/// [`io::ErrorKind::InvalidData`] error, not a silent wrong replay), then
/// reads every [`TrialRecord`] line and seeds the cache;
/// [`PersistentCache::flush`] appends the outcomes computed since — one
/// serde JSONL line per record, sorted within the batch for reproducible
/// files — and runs automatically on drop. After the header line the format
/// is exactly the [`JsonlSink`](super::JsonlSink) stream format.
///
/// One process should own the file at a time (flushes append without
/// locking); sharded campaigns give each process its own file and merge
/// afterwards.
#[derive(Debug)]
pub struct PersistentCache {
    cache: TrialCache,
    path: PathBuf,
    config: ConfigKey,
    header_on_disk: bool,
    on_disk: FxHashSet<Trial>,
    preloaded: usize,
}

impl PersistentCache {
    /// Opens (or initializes) the cache file at `path` for outcomes computed
    /// under `cfg`, preloading every record the file already holds.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file exists but cannot be read, holds a
    /// line that does not parse as a [`TrialRecord`], or was written under a
    /// different configuration (missing or mismatching header —
    /// [`io::ErrorKind::InvalidData`]).
    pub fn open(path: impl Into<PathBuf>, cfg: &ExperimentConfig) -> io::Result<Self> {
        let path = path.into();
        let config = ConfigKey::of(cfg);
        let cache = TrialCache::new();
        let mut on_disk = FxHashSet::default();
        let mut header_on_disk = false;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let mut lines = text.lines().filter(|l| !l.trim().is_empty());
                if let Some(first) = lines.next() {
                    let header: CacheHeader = serde_json::from_str(first).map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "{}: not a persistent-cache file (no header)",
                                path.display()
                            ),
                        )
                    })?;
                    if header.config != config {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "{}: cache was written under a different \
                                 configuration (budget/repeats/accuracy/geometry)",
                                path.display()
                            ),
                        ));
                    }
                    header_on_disk = true;
                }
                for line in lines {
                    let record: TrialRecord =
                        serde_json::from_str(line).map_err(io::Error::other)?;
                    cache.seed(record.trial.clone(), record.outcome);
                    on_disk.insert(record.trial);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let preloaded = on_disk.len();
        Ok(PersistentCache {
            cache,
            path,
            config,
            header_on_disk,
            on_disk,
            preloaded,
        })
    }

    /// The underlying trial cache. Hand a clone to
    /// [`Engine::with_cache`](super::Engine::with_cache) (clones share
    /// storage) or use [`Engine::with_persistent_cache`](super::Engine::with_persistent_cache).
    pub fn cache(&self) -> &TrialCache {
        &self.cache
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records preloaded from disk at open.
    pub fn preloaded(&self) -> usize {
        self.preloaded
    }

    /// Appends every outcome computed since open (or the previous flush) to
    /// the backing file and returns how many records were written. Errored
    /// trials are never persisted.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be created or written; the
    /// unwritten outcomes stay pending for the next flush.
    pub fn flush(&mut self) -> io::Result<usize> {
        let mut fresh: Vec<(Trial, String)> = Vec::new();
        for (trial, outcome) in self.cache.completed_excluding(&self.on_disk) {
            let record = TrialRecord {
                trial: trial.clone(),
                outcome: (*outcome).clone(),
            };
            let line = serde_json::to_string(&record).map_err(io::Error::other)?;
            fresh.push((trial, line));
        }
        if fresh.is_empty() {
            return Ok(0);
        }
        // The cache map iterates in hash order; sort the batch so two runs
        // that computed the same outcomes write byte-identical files.
        fresh.sort_by(|a, b| a.1.cmp(&b.1));
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if !self.header_on_disk {
            let header = CacheHeader {
                config: self.config.clone(),
            };
            let line = serde_json::to_string(&header).map_err(io::Error::other)?;
            file.write_all(line.as_bytes())?;
            file.write_all(b"\n")?;
            self.header_on_disk = true;
        }
        for (_, line) in &fresh {
            file.write_all(line.as_bytes())?;
            file.write_all(b"\n")?;
        }
        file.flush()?;
        let written = fresh.len();
        self.on_disk
            .extend(fresh.into_iter().map(|(trial, _)| trial));
        Ok(written)
    }
}

impl Drop for PersistentCache {
    /// Best-effort flush; call [`PersistentCache::flush`] explicitly to
    /// observe I/O errors.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lookup_module, Engine, Measurement, Plan};
    use super::*;
    use rowpress_dram::Time;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test_scale()
    }

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "rowpress-cache-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
        Plan::grid(cfg)
            .module(&lookup_module("S3").unwrap())
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build()
    }

    #[test]
    fn cache_answers_repeated_plans_without_recomputing() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let engine = Engine::new(&cfg);
        let first = engine.run_collect(&plan).unwrap();
        assert_eq!(engine.cache().hits(), 0);
        assert_eq!(engine.cache().misses(), plan.len() as u64);
        let second = engine.run_collect(&plan).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.cache().hits(), plan.len() as u64);
        assert_eq!(engine.cache().misses(), plan.len() as u64);
        assert_eq!(engine.cache().len(), plan.len());
    }

    #[test]
    fn shared_engines_reuse_overlapping_trials_across_instances() {
        // A distinct configuration so other tests' shared caches don't
        // interfere with the accounting.
        let cfg = ExperimentConfig::test_scale().with_rows_per_module(2);
        let plan = Plan::grid(&cfg)
            .module(&lookup_module("S0").unwrap())
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build();
        let first = Engine::shared(&cfg);
        let warmup = first.run_collect(&plan).unwrap();
        // A *new* shared engine for the same config sees the cached trials.
        let second = Engine::shared(&cfg);
        let hits_before = second.cache().hits();
        let replay = second.run_collect(&plan).unwrap();
        assert_eq!(warmup, replay);
        assert!(second.cache().hits() >= hits_before + plan.len() as u64);
    }

    #[test]
    fn cache_clear_keeps_counters() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let engine = Engine::new(&cfg);
        engine.run_collect(&plan).unwrap();
        assert!(!engine.cache().is_empty());
        let misses = engine.cache().misses();
        engine.cache().clear();
        assert!(engine.cache().is_empty());
        assert_eq!(engine.cache().misses(), misses, "clear keeps the counters");
    }

    #[test]
    fn persistent_cache_replays_across_processes() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("replay");

        // "Process" 1: cold run, flushed on drop.
        let baseline = {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.preloaded(), 0);
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            let records = engine.run_collect(&plan).unwrap();
            assert_eq!(engine.cache().misses(), plan.len() as u64);
            records
        };

        // "Process" 2: a fresh cache preloads the file; zero recomputation.
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.preloaded(), plan.len());
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            let replay = engine.run_collect(&plan).unwrap();
            assert_eq!(replay, baseline, "preloaded replay must be identical");
            assert_eq!(engine.cache().misses(), 0, "warm replay must not compute");
            assert_eq!(engine.cache().hits(), plan.len() as u64);
        }

        // Re-flushing preloaded outcomes appends nothing.
        {
            let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.flush().unwrap(), 0);
            let lines = std::fs::read_to_string(&path).unwrap().lines().count();
            assert_eq!(lines, plan.len() + 1, "header + records, no duplicates");
        }

        // A different configuration must be rejected, not silently replayed.
        let mismatched = ExperimentConfig {
            budget: Time::from_ms(30.0),
            ..cfg
        };
        assert_ne!(mismatched.budget, cfg.budget);
        let err = PersistentCache::open(&path, &mismatched).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persistent_cache_flush_is_incremental_and_sorted() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("incremental");

        let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
        let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
        engine.run_collect(&plan).unwrap();
        assert_eq!(persistent.flush().unwrap(), plan.len());
        assert_eq!(persistent.flush().unwrap(), 0, "second flush is a no-op");

        // New outcomes append; existing lines are untouched.
        let more = Plan::grid(&cfg)
            .module(&lookup_module("S0").unwrap())
            .measurement(Measurement::TAggOnMin { ac: 10 })
            .build();
        engine.run_collect(&more).unwrap();
        assert_eq!(persistent.flush().unwrap(), more.len());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1 + plan.len() + more.len());
        // Each flushed batch is internally sorted (line 0 is the header).
        let first_batch: Vec<&str> = text.lines().skip(1).take(plan.len()).collect();
        let mut sorted = first_batch.clone();
        sorted.sort_unstable();
        assert_eq!(first_batch, sorted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persistent_cache_rejects_corrupt_and_headerless_files() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "this is not json\n").unwrap();
        assert!(PersistentCache::open(&path, &cfg()).is_err());
        // A plain JsonlSink stream has no header: rejected up front rather
        // than trusted as some unknown configuration's outcomes.
        let cfg = cfg();
        let trial = acmin_plan(&cfg).trials()[0].clone();
        let record = TrialRecord {
            trial,
            outcome: TrialOutcome::Retention { flips: Vec::new() },
        };
        std::fs::write(&path, serde_json::to_string(&record).unwrap() + "\n").unwrap();
        let err = PersistentCache::open(&path, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeding_does_not_overwrite_and_counts_nothing() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let trial = plan.trials()[0].clone();
        let cache = TrialCache::new();
        cache.seed(trial.clone(), TrialOutcome::Retention { flips: Vec::new() });
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // A second seed for the same trial keeps the first outcome.
        cache.seed(trial.clone(), TrialOutcome::TAggOnMin { t_aggon_min: None });
        let outcome = cache.get_or_compute(&trial, || unreachable!("seeded"));
        assert_eq!(
            *outcome.unwrap(),
            TrialOutcome::Retention { flips: Vec::new() }
        );
        assert_eq!(cache.hits(), 1);
    }
}
