//! Trial-outcome caches: the in-process [`TrialCache`] and the cross-process
//! [`PersistentCache`] that preloads/flushes it through a JSONL file.
//!
//! The in-process cache memoizes every executed [`Trial`] for the lifetime of
//! the process ([`Engine::shared`](super::Engine::shared) hands all study
//! drivers one per configuration). [`PersistentCache`] extends that across
//! processes: it preloads previously flushed [`TrialRecord`] JSONL at open,
//! seeds the cache with it, and appends the outcomes computed since on
//! [`PersistentCache::flush`] (also invoked on drop) — so a repeated bench
//! run in a *new* process replays entirely from disk.
//!
//! Every line the cache writes carries a CRC-32 suffix (see
//! [`super::integrity`]), and [`OpenPolicy`] chooses what a corrupt interior
//! line costs: [`OpenPolicy::Strict`] forfeits the open (the historical
//! behavior, now an explicit [`io::ErrorKind::InvalidData`]), while
//! [`OpenPolicy::Salvage`] quarantines the corrupt lines to a sidecar file
//! and keeps every valid record — on a multi-day campaign, one flipped bit
//! must not cost a shard its entire measured history. [`FsFaults`] injects
//! deterministic write-path faults (ENOSPC at byte K, flip byte K) to prove
//! those paths, and [`PersistentCache::audit`] is the config-free integrity
//! scan behind `rowpress-campaign fsck`.
//!
//! # Example: cross-process replay through a cache file
//!
//! ```
//! use rowpress_core::engine::{Engine, Measurement, PersistentCache, Plan};
//! use rowpress_core::{lookup_module, ExperimentConfig};
//! use rowpress_dram::Time;
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&lookup_module("S3").unwrap())
//!     .measurement(Measurement::AcMin { t_aggon: Time::from_ms(30.0) })
//!     .build();
//! let path = std::env::temp_dir().join(format!("rowpress-cache-doc-{}.jsonl", std::process::id()));
//!
//! // "Process" 1 computes cold and flushes on drop.
//! let cold = {
//!     let persistent = PersistentCache::open(&path, &cfg).unwrap();
//!     Engine::new(&cfg).with_persistent_cache(&persistent).run_collect(&plan)?
//! };
//! // "Process" 2 preloads the file and replays without recomputing.
//! let persistent = PersistentCache::open(&path, &cfg).unwrap();
//! assert_eq!(persistent.preloaded(), plan.len());
//! let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
//! assert_eq!(engine.run_collect(&plan)?, cold);
//! assert_eq!(engine.cache().misses(), 0, "a warm replay computes nothing");
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), rowpress_dram::DramError>(())
//! ```

use super::integrity::{append_checksum, split_checksum, LineChecksum};
use super::plan::{Trial, TrialOutcome, TrialRecord};
use crate::config::ExperimentConfig;
use fxhash::{FxHashMap, FxHashSet};
use rowpress_dram::DramResult;
use serde::{Deserialize, Serialize};
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The memoized result of one trial. Errors are cached too: the device model
/// is deterministic, so a trial that failed once (e.g. an out-of-range row)
/// fails identically every time.
pub(super) type CachedOutcome = DramResult<Arc<TrialOutcome>>;

/// One journaled fresh outcome — trial, outcome, and the wall time the
/// computation took (`None` when replayed from a torn tail whose record
/// predates wall-time capture): the unit [`PersistentCache::flush`] drains.
type JournalEntry = (Trial, Arc<TrialOutcome>, Option<u64>);

/// A shareable, thread-safe [`Trial`]-keyed outcome cache with hit/miss
/// accounting. Cloning shares the underlying storage.
///
/// Keys are hashed with the vendored `fxhash` (multiply-rotate) hasher:
/// trial keys are process-local and trusted, so SipHash's DoS-resistance
/// buys nothing, while a `Trial` hashes its whole spec — module id, die
/// calibration, measurement — on every lookup of the replay hot path.
///
/// Each trial maps to a [`OnceLock`] cell, so concurrent requests for the
/// *same* trial (e.g. the identical iterations of a jitter-free
/// repeatability plan) block on one computation instead of racing to
/// recompute it per worker.
#[derive(Debug, Clone, Default)]
pub struct TrialCache {
    cells: Arc<Mutex<FxHashMap<Trial, Arc<OnceLock<CachedOutcome>>>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    /// Freshly computed (trial, outcome) pairs since the last drain — the
    /// incremental feed of [`PersistentCache::flush`], populated only once
    /// [`TrialCache::enable_journal`] ran (so caches without a persistent
    /// backing never accumulate it). Each trial computes at most once (the
    /// `OnceLock` cells), so entries never duplicate.
    journal: Arc<Mutex<Option<Vec<JournalEntry>>>>,
}

impl TrialCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached outcome for `trial`, computing it with `compute`
    /// on first request. Concurrent callers for the same trial wait for the
    /// single in-flight computation.
    pub(super) fn get_or_compute(
        &self,
        trial: &Trial,
        compute: impl FnOnce() -> DramResult<TrialOutcome>,
    ) -> CachedOutcome {
        let cell = {
            let mut cells = self.cells.lock().expect("cache lock");
            match cells.get(trial) {
                // Hot replay path: no key clone (a Trial clone heap-allocates
                // the module id and date code) when the cell already exists.
                Some(cell) => Arc::clone(cell),
                None => Arc::clone(cells.entry(trial.clone()).or_default()),
            }
        };
        let mut computed = false;
        let mut wall_us = None;
        let outcome = cell.get_or_init(|| {
            computed = true;
            let start = Instant::now();
            let outcome = compute().map(Arc::new);
            wall_us = Some(start.elapsed().as_micros() as u64);
            outcome
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Ok(outcome) = outcome {
                self.journal_push(trial.clone(), Arc::clone(outcome), wall_us);
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        outcome.clone()
    }

    /// Turns the journal on: from now on every freshly computed outcome is
    /// also recorded for [`TrialCache::drain_journal`]. Idempotent.
    pub(super) fn enable_journal(&self) {
        let mut journal = self.journal.lock().expect("journal lock");
        if journal.is_none() {
            *journal = Some(Vec::new());
        }
    }

    /// Records one (trial, outcome, wall-time) entry in the journal, if
    /// enabled. Errored outcomes never enter the journal.
    pub(super) fn journal_push(
        &self,
        trial: Trial,
        outcome: Arc<TrialOutcome>,
        wall_us: Option<u64>,
    ) {
        if let Some(entries) = self.journal.lock().expect("journal lock").as_mut() {
            entries.push((trial, outcome, wall_us));
        }
    }

    /// Takes everything journaled since the last drain. O(drained), not
    /// O(cache) — this is what keeps a flush-per-record campaign shard
    /// linear instead of quadratic.
    pub(super) fn drain_journal(&self) -> Vec<JournalEntry> {
        self.journal
            .lock()
            .expect("journal lock")
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Puts drained entries back (the failed-write path of
    /// [`PersistentCache::flush`], so unwritten outcomes stay pending).
    pub(super) fn requeue_journal(&self, entries: Vec<JournalEntry>) {
        if let Some(journal) = self.journal.lock().expect("journal lock").as_mut() {
            journal.extend(entries);
        }
    }

    /// Seeds the cache with a known outcome (the preload path of
    /// [`PersistentCache`]). A trial that is already cached keeps its first
    /// outcome; seeding counts as neither hit nor miss.
    pub fn seed(&self, trial: Trial, outcome: TrialOutcome) {
        let cell = {
            let mut cells = self.cells.lock().expect("cache lock");
            Arc::clone(cells.entry(trial).or_default())
        };
        cell.get_or_init(|| Ok(Arc::new(outcome)));
    }

    /// Number of lookups answered from the cache (including lookups that
    /// waited for another worker's in-flight computation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that computed the trial.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct trials with a completed outcome in the cache.
    pub fn len(&self) -> usize {
        self.cells
            .lock()
            .expect("cache lock")
            .values()
            .filter(|c| c.get().is_some())
            .count()
    }

    /// True if no trials are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached outcome (hit/miss counters are kept). For a cache
    /// obtained via [`Engine::shared`](super::Engine::shared) this releases
    /// the process-wide memory held for the configuration — call it between
    /// large studies when the memoized flip vectors are no longer worth
    /// their footprint.
    pub fn clear(&self) {
        self.cells.lock().expect("cache lock").clear();
        if let Some(journal) = self.journal.lock().expect("journal lock").as_mut() {
            journal.clear();
        }
    }
}

/// A hashable fingerprint of the `ExperimentConfig` fields that influence
/// trial outcomes, partitioning the process-wide cache registry and
/// stamped into every [`PersistentCache`] file header. The config's
/// `data_pattern`, `temperature_c` and `rows_per_module` are deliberately
/// *omitted*: trials carry their own pattern, temperature and row, and the
/// worker never reads those config fields — so configs differing only in
/// grid defaults still share byte-identical trials.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct ConfigKey {
    banks: u16,
    rows_per_bank: u32,
    bits_per_row: u32,
    bits_per_cache_block: u32,
    budget_ps: u64,
    repeats: u32,
    accuracy_bits: u64,
}

impl ConfigKey {
    fn of(cfg: &ExperimentConfig) -> Self {
        ConfigKey {
            banks: cfg.geometry.banks,
            rows_per_bank: cfg.geometry.rows_per_bank,
            bits_per_row: cfg.geometry.bits_per_row,
            bits_per_cache_block: cfg.geometry.bits_per_cache_block,
            budget_ps: cfg.budget.as_ps(),
            repeats: cfg.repeats,
            accuracy_bits: cfg.accuracy_pct.to_bits(),
        }
    }
}

/// The process-wide cache for a configuration ([`Engine::shared`]'s storage).
///
/// [`Engine::shared`]: super::Engine::shared
pub(super) fn shared_cache(cfg: &ExperimentConfig) -> TrialCache {
    static REGISTRY: OnceLock<Mutex<FxHashMap<ConfigKey, TrialCache>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(FxHashMap::default()));
    registry
        .lock()
        .expect("cache registry lock")
        .entry(ConfigKey::of(cfg))
        .or_default()
        .clone()
}

/// The first line of every [`PersistentCache`] file: the fingerprint of the
/// configuration the outcomes were computed under. [`Trial`] equality
/// deliberately ignores config fields (budget, repeats, accuracy, geometry),
/// so without this header a cache written under one configuration would
/// silently replay wrong outcomes under another.
#[derive(Debug, Serialize, Deserialize)]
struct CacheHeader {
    config: ConfigKey,
}

/// A [`TrialCache`] bound to a JSONL file so trial outcomes survive the
/// process: the paper's "never recompute a measured point" discipline across
/// bench invocations.
///
/// [`PersistentCache::open`] checks the file's config-fingerprint header
/// against the caller's [`ExperimentConfig`] (opening a cache written under
/// a different budget/repeats/accuracy/geometry is an
/// [`io::ErrorKind::InvalidData`] error, not a silent wrong replay), then
/// reads every [`TrialRecord`] line and seeds the cache;
/// [`PersistentCache::flush`] appends the outcomes computed since — one
/// serde JSONL line per record, sorted within the batch for reproducible
/// files — and runs automatically on drop. After the header line the format
/// is exactly the [`JsonlSink`](super::JsonlSink) stream format.
///
/// One process should own the file at a time (flushes append without
/// locking); sharded campaigns give each process its own file and merge
/// afterwards.
///
/// # Crash safety
///
/// The file must survive its owner being killed at *any* instant — the
/// campaign orchestrator's straggler policy kills and respawns shard
/// processes by design, and the respawn guarantee ("no measured point is
/// recomputed") rides on this file. Two mechanisms provide it: each flush
/// is a single newline-terminated `write` (no torn-between-lines window),
/// and `open` treats an unterminated or unparseable *final* line as the
/// torn tail of a killed append — the tail is dropped (a parseable one
/// still seeds the cache, so nothing is recomputed) and the file is
/// truncated back to the valid prefix before the next append. A malformed
/// line anywhere *else* is still a hard error: that is corruption, not a
/// kill artifact.
#[derive(Debug)]
pub struct PersistentCache {
    cache: TrialCache,
    path: PathBuf,
    config: ConfigKey,
    header_on_disk: bool,
    on_disk: FxHashSet<Trial>,
    preloaded: usize,
    /// When the file ended in a torn line at open, the byte length of the
    /// valid prefix; the next flush truncates to it before appending.
    repair_len: Option<u64>,
    /// Preloaded (trial, wall-time) pairs — the sample set
    /// [`CostModel::fit`](super::CostModel::fit) learns from.
    timed: Vec<(Trial, u64)>,
    /// Corrupt interior lines moved to the quarantine sidecar at open
    /// (always 0 under [`OpenPolicy::Strict`]).
    quarantined: usize,
    /// Test-only write-path fault injection (see [`FsFaults`]).
    write_fault: Option<FsFaults>,
}

/// What [`PersistentCache::open_with_policy`] does about a corrupt interior
/// line (one that is not the repairable torn tail of a killed append).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpenPolicy {
    /// Refuse the file: corrupt interior data is
    /// [`io::ErrorKind::InvalidData`]. The right default for interactive
    /// runs — corruption should be seen, not silently trimmed.
    #[default]
    Strict,
    /// Move each corrupt line (with its byte offset and a reason) to the
    /// `<cache>.quarantine` sidecar, atomically rewrite the cache without
    /// them, and preload every valid record. The right policy for resuming
    /// a long campaign: one flipped bit costs one record, not the file.
    Salvage,
}

/// The path of the quarantine sidecar that [`OpenPolicy::Salvage`] appends
/// corrupt lines to: the cache file name plus a `.quarantine` suffix.
pub fn quarantine_path(cache: &Path) -> PathBuf {
    let mut name = cache.file_name().unwrap_or_default().to_os_string();
    name.push(".quarantine");
    cache.with_file_name(name)
}

/// One corrupt line preserved in the quarantine sidecar: where it sat, why
/// it was rejected, and its (lossily decoded) text for post-mortems.
#[derive(Debug, Serialize, Deserialize)]
struct QuarantineEntry {
    offset: u64,
    length: usize,
    reason: String,
    line: String,
}

/// Deterministic filesystem fault injection for the [`PersistentCache`]
/// append path — the disk-side mirror of the transport layer's
/// `FaultInjector`: instead of corrupting the wire, corrupt the write. Both
/// faults are positional over the *cumulative* byte stream appended through
/// the harness, so a scenario replays identically on every run:
///
/// * **ENOSPC at byte K** — an append that would push the cumulative stream
///   past K fails whole with [`io::ErrorKind::StorageFull`] (the
///   all-or-nothing shape a rolled-back batch write has anyway), until
///   [`FsFaults::clear_enospc`] simulates space coming back.
/// * **flip at byte K** — the byte at cumulative position K has its low bit
///   XOR-flipped on the way to disk: the write "succeeds" but the medium
///   lied, which is exactly what the checksum layer exists to catch.
///
/// Clones share state, so a test can keep a handle while the cache owns
/// another.
#[derive(Debug, Clone, Default)]
pub struct FsFaults {
    inner: Arc<FaultState>,
}

#[derive(Debug)]
struct FaultState {
    /// Byte capacity; `u64::MAX` = unlimited.
    enospc_at: AtomicU64,
    /// Cumulative position to corrupt; `u64::MAX` = none.
    flip_at: AtomicU64,
    /// Cumulative bytes successfully appended through the harness.
    written: AtomicU64,
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState {
            enospc_at: AtomicU64::new(u64::MAX),
            flip_at: AtomicU64::new(u64::MAX),
            written: AtomicU64::new(0),
        }
    }
}

impl FsFaults {
    /// A harness with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the ENOSPC fault: appends fail once the cumulative stream would
    /// exceed `bytes`.
    #[must_use]
    pub fn enospc_at(self, bytes: u64) -> Self {
        self.inner.enospc_at.store(bytes, Ordering::SeqCst);
        self
    }

    /// Arms the corruption fault: the byte at cumulative position `byte` is
    /// XOR-flipped on its way to disk.
    #[must_use]
    pub fn flip_at(self, byte: u64) -> Self {
        self.inner.flip_at.store(byte, Ordering::SeqCst);
        self
    }

    /// Space came back: lifts the ENOSPC ceiling so later appends succeed.
    pub fn clear_enospc(&self) {
        self.inner.enospc_at.store(u64::MAX, Ordering::SeqCst);
    }

    /// Cumulative bytes successfully appended through the harness.
    pub fn written(&self) -> u64 {
        self.inner.written.load(Ordering::SeqCst)
    }

    /// Applies the armed faults to one batch about to be appended.
    fn inject(&self, batch: &mut [u8]) -> io::Result<()> {
        let start = self.inner.written.load(Ordering::SeqCst);
        let end = start + batch.len() as u64;
        if end > self.inner.enospc_at.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected ENOSPC: append would reach byte {end}"),
            ));
        }
        let flip = self.inner.flip_at.load(Ordering::SeqCst);
        if (start..end).contains(&flip) {
            batch[(flip - start) as usize] ^= 0x01;
        }
        self.inner.written.store(end, Ordering::SeqCst);
        Ok(())
    }
}

/// What [`PersistentCache::audit`] found in one cache file — the per-file
/// verdict `rowpress-campaign fsck` aggregates. The scan is config-free: it
/// checks structure and checksums, not which configuration wrote the file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheAudit {
    /// Parseable record lines (the header is not counted).
    pub records: usize,
    /// Lines (header included) whose checksum suffix verified.
    pub checksummed: usize,
    /// Parseable lines without a checksum suffix (pre-checksum legacy).
    pub legacy: usize,
    /// Corrupt lines: byte offset and rejection reason.
    pub corrupt: Vec<(u64, String)>,
    /// The file ends in an unterminated line — the torn tail of a killed
    /// append. Repairable by the next open + flush, so not counted corrupt.
    pub torn_tail: bool,
}

impl CacheAudit {
    /// True when the file holds no corruption (a torn tail is repairable,
    /// not corruption).
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// What [`PersistentCache::compact`] did to the backing file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactStats {
    /// File size before compaction, in bytes.
    pub bytes_before: u64,
    /// File size after compaction, in bytes.
    pub bytes_after: u64,
    /// Record lines read (duplicates included).
    pub records_before: usize,
    /// Record lines kept.
    pub records_after: usize,
    /// Later duplicates of an already-seen trial that were dropped.
    pub duplicates_dropped: usize,
    /// Distinct records evicted oldest-first to satisfy the byte budget.
    pub evicted: usize,
}

impl PersistentCache {
    /// Opens (or initializes) the cache file at `path` for outcomes computed
    /// under `cfg`, preloading every record the file already holds. A torn
    /// final line — the signature of an owner killed mid-append — is dropped
    /// and repaired on the next flush (see the type-level docs).
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file exists but cannot be read, holds a
    /// non-final line that does not parse as a [`TrialRecord`], or was
    /// written under a different configuration (missing or mismatching
    /// header — [`io::ErrorKind::InvalidData`]).
    pub fn open(path: impl Into<PathBuf>, cfg: &ExperimentConfig) -> io::Result<Self> {
        Self::open_with_workers(path, cfg, crate::campaign::worker_count())
    }

    /// [`PersistentCache::open`] with an explicit corruption policy (see
    /// [`OpenPolicy`]): `Salvage` quarantines corrupt interior lines to the
    /// [`quarantine_path`] sidecar instead of refusing the file.
    pub fn open_with_policy(
        path: impl Into<PathBuf>,
        cfg: &ExperimentConfig,
        policy: OpenPolicy,
    ) -> io::Result<Self> {
        Self::open_impl(path.into(), cfg, crate::campaign::worker_count(), policy)
    }

    /// [`PersistentCache::open`] with an explicit preload parallelism:
    /// record lines are split into per-worker chunks parsed concurrently
    /// (the bench's dominant preload cost is JSON parsing, which is
    /// embarrassingly parallel). Seeding and torn-tail handling stay
    /// sequential and first-occurrence-wins, so the preloaded cache is
    /// identical at any worker count. Small files fall back to the
    /// sequential path — threads only help once there is enough work per
    /// worker to amortize the spawn.
    pub fn open_with_workers(
        path: impl Into<PathBuf>,
        cfg: &ExperimentConfig,
        workers: usize,
    ) -> io::Result<Self> {
        Self::open_impl(path.into(), cfg, workers, OpenPolicy::Strict)
    }

    fn open_impl(
        path: PathBuf,
        cfg: &ExperimentConfig,
        workers: usize,
        policy: OpenPolicy,
    ) -> io::Result<Self> {
        let config = ConfigKey::of(cfg);
        let cache = TrialCache::new();
        // Persistent caches journal fresh outcomes so each flush is
        // O(fresh), not a scan of the whole cache.
        cache.enable_journal();
        let mut on_disk = FxHashSet::default();
        let mut header_on_disk = false;
        let mut repair_len = None;
        let mut timed = Vec::new();
        let mut quarantined = 0;
        // The read is byte-based, not `read_to_string`: a flipped bit can
        // make a line invalid UTF-8, and that must be a per-line verdict
        // (quarantinable under salvage), never a whole-file read error.
        match std::fs::read(&path) {
            Ok(bytes) => {
                // Keep byte offsets so a torn tail can be truncated away and
                // a quarantined line can name where it sat.
                let mut raw: Vec<(usize, bool, &[u8])> = Vec::new(); // (start, terminated, line)
                let mut start = 0;
                for chunk in bytes.split_inclusive(|&b| b == b'\n') {
                    let terminated = chunk.last() == Some(&b'\n');
                    let line = if terminated {
                        &chunk[..chunk.len() - 1]
                    } else {
                        chunk
                    };
                    raw.push((start, terminated, line));
                    start += chunk.len();
                }
                // An unterminated final line is a torn append, whatever it
                // holds; truncate it on the next flush so a new append can
                // never concatenate onto it.
                if let Some(&(tail_start, terminated, _)) = raw.last() {
                    if !terminated {
                        repair_len = Some(tail_start as u64);
                    }
                }
                let content: Vec<(usize, &[u8])> = raw
                    .iter()
                    .filter(|(_, _, l)| !l.iter().all(u8::is_ascii_whitespace))
                    .map(|&(start, _, l)| (start, l))
                    .collect();
                if let Some((&(_, header_line), body)) = content.split_first() {
                    // Only the file's very last line can be a kill artifact.
                    let header_is_tail = body.is_empty() && repair_len.is_some();
                    match parse_header(header_line) {
                        // A torn header: the next flush truncates and
                        // rewrites it.
                        Ok(_) if header_is_tail => {}
                        Ok(header) => {
                            if header.config != config {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!(
                                        "{}: cache was written under a different \
                                         configuration (budget/repeats/accuracy/geometry)",
                                        path.display()
                                    ),
                                ));
                            }
                            header_on_disk = true;
                        }
                        Err(_) if header_is_tail => {}
                        // A corrupt header is unsalvageable: without the
                        // config fingerprint the records cannot be trusted
                        // to belong to this configuration at all.
                        Err(reason) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!(
                                    "{}: not a persistent-cache file ({reason})",
                                    path.display()
                                ),
                            ));
                        }
                    }
                    let (bulk, tail) = if repair_len.is_some() && !body.is_empty() {
                        body.split_at(body.len() - 1)
                    } else {
                        (body, &[][..])
                    };
                    // Any torn line was split off above, so a bulk line that
                    // fails to parse is genuine corruption: parse in
                    // parallel, then seed sequentially so
                    // first-occurrence-wins ordering is preserved.
                    let mut kept: Vec<&[u8]> = Vec::with_capacity(bulk.len());
                    let mut corrupt: Vec<(usize, &[u8], &'static str)> = Vec::new();
                    for (&(offset, line), verdict) in bulk.iter().zip(parse_records(bulk, workers))
                    {
                        match verdict {
                            Ok(record) => {
                                kept.push(line);
                                cache.seed(record.trial.clone(), record.outcome);
                                if let Some(wall_us) = record.wall_us {
                                    timed.push((record.trial.clone(), wall_us));
                                }
                                on_disk.insert(record.trial);
                            }
                            Err(reason) if policy == OpenPolicy::Strict => {
                                return Err(io::Error::new(
                                    io::ErrorKind::InvalidData,
                                    format!(
                                        "{}: corrupt record at byte {offset}: {reason} \
                                         (open with the salvage policy to quarantine it)",
                                        path.display()
                                    ),
                                ));
                            }
                            Err(reason) => corrupt.push((offset, line, reason)),
                        }
                    }
                    // A parseable but unterminated tail line is seeded (no
                    // recompute), kept out of `on_disk`, and journaled so the
                    // next flush rewrites it after the truncation; a line torn
                    // mid-JSON is dropped and that one trial is recomputed by
                    // the resumed owner.
                    for &(_, line) in tail {
                        if let Ok(record) = parse_line(line) {
                            cache.seed(record.trial.clone(), record.outcome.clone());
                            if let Some(wall_us) = record.wall_us {
                                timed.push((record.trial.clone(), wall_us));
                            }
                            cache.journal_push(
                                record.trial,
                                Arc::new(record.outcome),
                                record.wall_us,
                            );
                        }
                    }
                    if !corrupt.is_empty() {
                        quarantined = corrupt.len();
                        Self::salvage_rewrite(&path, header_line, &kept, &corrupt)?;
                        // The rewrite dropped the torn tail with the corrupt
                        // lines; a parseable tail is journaled above and
                        // re-appended by the next flush.
                        repair_len = None;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let preloaded = on_disk.len();
        Ok(PersistentCache {
            cache,
            path,
            config,
            header_on_disk,
            on_disk,
            preloaded,
            repair_len,
            timed,
            quarantined,
            write_fault: None,
        })
    }

    /// The salvage arm of [`PersistentCache::open_with_policy`]: append the
    /// corrupt lines (offset, reason, lossy text) to the quarantine sidecar,
    /// then atomically rewrite the cache as header + valid records only —
    /// tmp file + rename, the same crash-safety shape as `compact`, so a
    /// kill mid-salvage leaves either the corrupt original (salvaged again
    /// next open) or the clean rewrite, never a hybrid.
    fn salvage_rewrite(
        path: &Path,
        header: &[u8],
        kept: &[&[u8]],
        corrupt: &[(usize, &[u8], &'static str)],
    ) -> io::Result<()> {
        let mut report = String::new();
        for &(offset, line, reason) in corrupt {
            let entry = QuarantineEntry {
                offset: offset as u64,
                length: line.len(),
                reason: reason.to_string(),
                line: String::from_utf8_lossy(line).into_owned(),
            };
            report.push_str(&serde_json::to_string(&entry).map_err(io::Error::other)?);
            report.push('\n');
        }
        let mut sidecar = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(quarantine_path(path))?;
        sidecar.write_all(report.as_bytes())?;
        sidecar.flush()?;
        let mut clean = Vec::with_capacity(header.len() + 1);
        clean.extend_from_slice(header);
        clean.push(b'\n');
        for line in kept {
            clean.extend_from_slice(line);
            clean.push(b'\n');
        }
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&clean)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// The underlying trial cache. Hand a clone to
    /// [`Engine::with_cache`](super::Engine::with_cache) (clones share
    /// storage) or use [`Engine::with_persistent_cache`](super::Engine::with_persistent_cache).
    pub fn cache(&self) -> &TrialCache {
        &self.cache
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records preloaded from disk at open.
    pub fn preloaded(&self) -> usize {
        self.preloaded
    }

    /// Number of corrupt interior lines moved to the quarantine sidecar at
    /// open — always 0 under [`OpenPolicy::Strict`].
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Routes every subsequent append through the given fault harness (a
    /// clone shares state with the caller's handle). Test instrumentation:
    /// production caches write straight through.
    pub fn set_write_fault(&mut self, faults: FsFaults) {
        self.write_fault = Some(faults);
    }

    /// The preloaded (trial, wall-time-µs) pairs — every record on disk
    /// that carried a recorded wall time. This is the sample set
    /// [`CostModel::fit`](super::CostModel::fit) learns per-measurement
    /// correction factors from.
    pub fn timed_samples(&self) -> &[(Trial, u64)] {
        &self.timed
    }

    /// Appends every outcome computed since open (or the previous flush) to
    /// the backing file and returns how many records were written. Errored
    /// trials are never persisted.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be created or written; the
    /// unwritten outcomes stay pending for the next flush.
    pub fn flush(&mut self) -> io::Result<usize> {
        // The journal feeds the flush incrementally: draining is O(fresh),
        // never a scan of the whole cache — a flush-per-record campaign
        // shard stays linear. The `on_disk` filter is belt-and-braces (a
        // trial computes at most once, and seeds never journal).
        let entries: Vec<JournalEntry> = self
            .cache
            .drain_journal()
            .into_iter()
            .filter(|(trial, _, _)| !self.on_disk.contains(trial))
            .collect();
        if entries.is_empty() {
            return Ok(0);
        }
        match self.write_batch(&entries) {
            Ok(written) => {
                self.on_disk
                    .extend(entries.into_iter().map(|(trial, _, _)| trial));
                Ok(written)
            }
            Err(e) => {
                // Unwritten outcomes stay pending for the next flush.
                self.cache.requeue_journal(entries);
                Err(e)
            }
        }
    }

    /// Serializes and appends one batch of fresh records (plus the header
    /// and torn-tail repair when pending). Leaves `self` untouched except
    /// for `header_on_disk`/`repair_len` bookkeeping tied to completed I/O.
    fn write_batch(&mut self, entries: &[JournalEntry]) -> io::Result<usize> {
        let mut fresh: Vec<String> = Vec::with_capacity(entries.len());
        for (trial, outcome, wall_us) in entries {
            let record = TrialRecord {
                trial: trial.clone(),
                outcome: (**outcome).clone(),
                wall_us: *wall_us,
            };
            fresh.push(serde_json::to_string(&record).map_err(io::Error::other)?);
        }
        // Sort the batch (by record payload — the checksum suffix is added
        // after) so two runs that computed the same outcomes write
        // byte-identical files regardless of completion order.
        fresh.sort_unstable();
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        if let Some(valid) = self.repair_len {
            // Drop the torn tail a killed predecessor left behind before
            // anything can be appended after it. Cleared only after the
            // truncation succeeded, so a failed repair is retried.
            file.set_len(valid)?;
            self.repair_len = None;
        }
        // One newline-terminated write per batch: a kill can truncate the
        // batch (the torn tail the next open repairs) but never interleave
        // or split a record across flushes. Every line carries its checksum
        // suffix so later corruption is detectable (and salvageable).
        let mut batch = String::new();
        if !self.header_on_disk {
            let header = CacheHeader {
                config: self.config.clone(),
            };
            let json = serde_json::to_string(&header).map_err(io::Error::other)?;
            batch.push_str(&append_checksum(&json));
            batch.push('\n');
        }
        for line in &fresh {
            batch.push_str(&append_checksum(line));
            batch.push('\n');
        }
        let mut bytes = batch.into_bytes();
        if let Some(faults) = &self.write_fault {
            faults.inject(&mut bytes)?;
        }
        // On a failed append (ENOSPC, EIO), truncate back to the pre-write
        // length: a partial batch must never survive as a torn *non-final*
        // line once a retried flush appends after it — open() would then
        // reject the file as corruption rather than repair it.
        let before = file.metadata()?.len();
        if let Err(e) = file.write_all(&bytes).and_then(|()| file.flush()) {
            let _ = file.set_len(before);
            return Err(e);
        }
        self.header_on_disk = true;
        Ok(fresh.len())
    }

    /// Rewrites the backing file without duplicate trials — respawn replays
    /// of a killed shard re-append records another incarnation already wrote,
    /// and those duplicates accumulate forever in an append-only file — and,
    /// when `max_bytes` is given, evicts the *oldest* distinct records until
    /// the file fits the budget (oldest-first: the newest measurements are
    /// the ones the next incarnation most likely replays).
    ///
    /// The rewrite is crash-safe: the compacted file is written to a
    /// temporary sibling and atomically renamed over the original, so a
    /// kill at any instant leaves either the old or the new file fully
    /// valid — never a torn hybrid. Pending fresh outcomes are flushed
    /// first, so nothing journaled is lost.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be read or rewritten, or
    /// [`io::ErrorKind::InvalidData`] when it is not a persistent-cache
    /// file. A missing file compacts to nothing.
    pub fn compact(&mut self, max_bytes: Option<u64>) -> io::Result<CompactStats> {
        self.flush()?;
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(CompactStats::default()),
            Err(e) => return Err(e),
        };
        let bytes_before = text.len() as u64;
        // Compact only the valid prefix; a torn tail left by a killed owner
        // is dropped here exactly as a flush would have dropped it.
        let valid = match self.repair_len {
            Some(len) => &text[..len as usize],
            None => &text[..],
        };
        let mut lines = valid.lines().filter(|l| !l.trim().is_empty());
        let header = match lines.next() {
            Some(line) => {
                let (payload, status) = split_checksum(line);
                if status == LineChecksum::Mismatch {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{}: cache header failed its checksum; cannot compact",
                            self.path.display()
                        ),
                    ));
                }
                serde_json::from_str::<CacheHeader>(payload).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{}: not a persistent-cache file (no header)",
                            self.path.display()
                        ),
                    )
                })?;
                // Checksummed lines are kept verbatim; a legacy line gains
                // its suffix here, so a compacted file is fully protected.
                match status {
                    LineChecksum::Valid => line.to_string(),
                    _ => append_checksum(payload),
                }
            }
            None => {
                return Ok(CompactStats {
                    bytes_before,
                    ..CompactStats::default()
                })
            }
        };
        // First-occurrence-wins dedup, mirroring the preload's seed order.
        let mut records_before = 0;
        let mut seen = FxHashSet::default();
        let mut kept: Vec<(Trial, String)> = Vec::new();
        for line in lines {
            records_before += 1;
            let (payload, status) = split_checksum(line);
            if status == LineChecksum::Mismatch {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: corrupt record line (checksum mismatch); \
                         reopen with the salvage policy before compacting",
                        self.path.display()
                    ),
                ));
            }
            let record = serde_json::from_str::<TrialRecord>(payload).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: corrupt record line; \
                         reopen with the salvage policy before compacting",
                        self.path.display()
                    ),
                )
            })?;
            if seen.insert(record.trial.clone()) {
                let encoded = match status {
                    LineChecksum::Valid => line.to_string(),
                    _ => append_checksum(payload),
                };
                kept.push((record.trial, encoded));
            }
        }
        let duplicates_dropped = records_before - kept.len();
        // Budget eviction: drop the oldest distinct records until the
        // rewritten file (header + kept lines, each newline-terminated)
        // fits.
        let mut evicted = 0;
        if let Some(budget) = max_bytes {
            let mut total = header.len() as u64 + 1;
            total += kept.iter().map(|(_, l)| l.len() as u64 + 1).sum::<u64>();
            while total > budget && evicted < kept.len() {
                total -= kept[evicted].1.len() as u64 + 1;
                evicted += 1;
            }
        }
        let kept = kept.split_off(evicted);
        let mut batch = String::with_capacity(valid.len());
        batch.push_str(&header);
        batch.push('\n');
        for (_, line) in &kept {
            batch.push_str(line);
            batch.push('\n');
        }
        // Tmp-file + rename: the original stays untouched until the new
        // file is fully on disk, so a kill mid-rewrite loses nothing.
        let tmp = self.path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(batch.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.header_on_disk = true;
        self.repair_len = None;
        self.on_disk = kept.iter().map(|(trial, _)| trial.clone()).collect();
        Ok(CompactStats {
            bytes_before,
            bytes_after: batch.len() as u64,
            records_before,
            records_after: kept.len(),
            duplicates_dropped,
            evicted,
        })
    }

    /// Scans a cache file for integrity without opening it against a
    /// configuration — the per-file engine of `rowpress-campaign fsck`.
    /// Reports every corrupt line (offset + reason), the checksummed /
    /// legacy line split, and whether the file ends in a repairable torn
    /// tail. Never modifies the file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error when the file cannot be read (a missing file is
    /// [`io::ErrorKind::NotFound`], which directory-walking callers treat
    /// as "past the last shard").
    pub fn audit(path: impl AsRef<Path>) -> io::Result<CacheAudit> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let mut audit = CacheAudit::default();
        let mut raw: Vec<(usize, &[u8])> = Vec::new();
        let mut start = 0;
        for chunk in bytes.split_inclusive(|&b| b == b'\n') {
            let terminated = chunk.last() == Some(&b'\n');
            let line = if terminated {
                &chunk[..chunk.len() - 1]
            } else {
                chunk
            };
            if !terminated {
                // A torn tail is a kill artifact the next open repairs, not
                // corruption; it carries no countable record either way.
                audit.torn_tail = true;
            } else {
                raw.push((start, line));
            }
            start += chunk.len();
        }
        let content: Vec<(usize, &[u8])> = raw
            .into_iter()
            .filter(|(_, l)| !l.iter().all(u8::is_ascii_whitespace))
            .collect();
        let Some((&(header_offset, header_line), body)) = content.split_first() else {
            return Ok(audit);
        };
        match parse_header(header_line) {
            Ok(_) => {
                match split_checksum(std::str::from_utf8(header_line).expect("parsed header")).1 {
                    LineChecksum::Valid => audit.checksummed += 1,
                    _ => audit.legacy += 1,
                }
            }
            Err(reason) => audit
                .corrupt
                .push((header_offset as u64, reason.to_string())),
        }
        for &(offset, line) in body {
            match parse_line(line) {
                Ok(_) => {
                    audit.records += 1;
                    let text = std::str::from_utf8(line).expect("parsed record");
                    match split_checksum(text).1 {
                        LineChecksum::Valid => audit.checksummed += 1,
                        _ => audit.legacy += 1,
                    }
                }
                Err(reason) => audit.corrupt.push((offset as u64, reason.to_string())),
            }
        }
        Ok(audit)
    }
}

/// Classifies one record line: UTF-8 decode, checksum verification, JSON
/// parse — the per-line verdict both open policies act on.
fn parse_line(bytes: &[u8]) -> Result<TrialRecord, &'static str> {
    let text = std::str::from_utf8(bytes).map_err(|_| "invalid UTF-8")?;
    let (payload, status) = split_checksum(text);
    if status == LineChecksum::Mismatch {
        return Err("checksum mismatch");
    }
    serde_json::from_str(payload).map_err(|_| "unparseable record")
}

/// Classifies the header line (same pipeline as [`parse_line`], different
/// target type).
fn parse_header(bytes: &[u8]) -> Result<CacheHeader, &'static str> {
    let text = std::str::from_utf8(bytes).map_err(|_| "invalid UTF-8")?;
    let (payload, status) = split_checksum(text);
    if status == LineChecksum::Mismatch {
        return Err("header checksum mismatch");
    }
    serde_json::from_str(payload).map_err(|_| "no header")
}

/// Parses a slice of `(offset, line)` pairs into per-line verdicts,
/// splitting into per-worker chunks parsed on scoped threads. Chunking
/// preserves order — the joined vector is exactly the sequential parse —
/// and small inputs skip the threads entirely.
fn parse_records(
    lines: &[(usize, &[u8])],
    workers: usize,
) -> Vec<Result<TrialRecord, &'static str>> {
    /// Below this many lines per worker, thread spawn overhead beats the
    /// parse time it saves.
    const MIN_LINES_PER_WORKER: usize = 128;
    let workers = workers.min(lines.len() / MIN_LINES_PER_WORKER).max(1);
    if workers <= 1 {
        return lines.iter().map(|&(_, line)| parse_line(line)).collect();
    }
    let chunk_len = lines.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = lines
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&(_, line)| parse_line(line))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("preload worker"))
            .collect()
    })
}

impl Drop for PersistentCache {
    /// Best-effort flush; call [`PersistentCache::flush`] explicitly to
    /// observe I/O errors.
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::super::{lookup_module, Engine, Measurement, Plan};
    use super::*;
    use rowpress_dram::Time;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::test_scale()
    }

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "rowpress-cache-{tag}-{}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
        Plan::grid(cfg)
            .module(&lookup_module("S3").unwrap())
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build()
    }

    #[test]
    fn cache_answers_repeated_plans_without_recomputing() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let engine = Engine::new(&cfg);
        let first = engine.run_collect(&plan).unwrap();
        assert_eq!(engine.cache().hits(), 0);
        assert_eq!(engine.cache().misses(), plan.len() as u64);
        let second = engine.run_collect(&plan).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.cache().hits(), plan.len() as u64);
        assert_eq!(engine.cache().misses(), plan.len() as u64);
        assert_eq!(engine.cache().len(), plan.len());
    }

    #[test]
    fn shared_engines_reuse_overlapping_trials_across_instances() {
        // A distinct configuration so other tests' shared caches don't
        // interfere with the accounting.
        let cfg = ExperimentConfig::test_scale().with_rows_per_module(2);
        let plan = Plan::grid(&cfg)
            .module(&lookup_module("S0").unwrap())
            .measurement(Measurement::AcMin {
                t_aggon: Time::from_ms(30.0),
            })
            .build();
        let first = Engine::shared(&cfg);
        let warmup = first.run_collect(&plan).unwrap();
        // A *new* shared engine for the same config sees the cached trials.
        let second = Engine::shared(&cfg);
        let hits_before = second.cache().hits();
        let replay = second.run_collect(&plan).unwrap();
        assert_eq!(warmup, replay);
        assert!(second.cache().hits() >= hits_before + plan.len() as u64);
    }

    #[test]
    fn cache_clear_keeps_counters() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let engine = Engine::new(&cfg);
        engine.run_collect(&plan).unwrap();
        assert!(!engine.cache().is_empty());
        let misses = engine.cache().misses();
        engine.cache().clear();
        assert!(engine.cache().is_empty());
        assert_eq!(engine.cache().misses(), misses, "clear keeps the counters");
    }

    #[test]
    fn persistent_cache_replays_across_processes() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("replay");

        // "Process" 1: cold run, flushed on drop.
        let baseline = {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.preloaded(), 0);
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            let records = engine.run_collect(&plan).unwrap();
            assert_eq!(engine.cache().misses(), plan.len() as u64);
            records
        };

        // "Process" 2: a fresh cache preloads the file; zero recomputation.
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.preloaded(), plan.len());
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            let replay = engine.run_collect(&plan).unwrap();
            assert_eq!(replay, baseline, "preloaded replay must be identical");
            assert_eq!(engine.cache().misses(), 0, "warm replay must not compute");
            assert_eq!(engine.cache().hits(), plan.len() as u64);
        }

        // Re-flushing preloaded outcomes appends nothing.
        {
            let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.flush().unwrap(), 0);
            let lines = std::fs::read_to_string(&path).unwrap().lines().count();
            assert_eq!(lines, plan.len() + 1, "header + records, no duplicates");
        }

        // A different configuration must be rejected, not silently replayed.
        let mismatched = ExperimentConfig {
            budget: Time::from_ms(30.0),
            ..cfg
        };
        assert_ne!(mismatched.budget, cfg.budget);
        let err = PersistentCache::open(&path, &mismatched).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persistent_cache_flush_is_incremental_and_sorted() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("incremental");

        let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
        let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
        engine.run_collect(&plan).unwrap();
        assert_eq!(persistent.flush().unwrap(), plan.len());
        assert_eq!(persistent.flush().unwrap(), 0, "second flush is a no-op");

        // New outcomes append; existing lines are untouched.
        let more = Plan::grid(&cfg)
            .module(&lookup_module("S0").unwrap())
            .measurement(Measurement::TAggOnMin { ac: 10 })
            .build();
        engine.run_collect(&more).unwrap();
        assert_eq!(persistent.flush().unwrap(), more.len());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1 + plan.len() + more.len());
        // Each flushed batch is internally sorted (line 0 is the header).
        let first_batch: Vec<&str> = text.lines().skip(1).take(plan.len()).collect();
        let mut sorted = first_batch.clone();
        sorted.sort_unstable();
        assert_eq!(first_batch, sorted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_from_a_kill_is_repaired_without_recompute_where_possible() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("torn");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        let intact = std::fs::read_to_string(&path).unwrap();
        let intact_lines = intact.lines().count();

        // Case 1: kill mid-JSON — the final record is half-written. The open
        // must drop exactly that record, and the next flush must rewrite a
        // fully parseable file.
        let torn_mid_json = &intact[..intact.len() - 25];
        assert!(!torn_mid_json.ends_with('\n'));
        std::fs::write(&path, torn_mid_json).unwrap();
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.preloaded(), plan.len() - 1, "tail dropped");
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
            assert_eq!(engine.cache().misses(), 1, "only the torn trial recomputes");
        }
        let repaired = std::fs::read_to_string(&path).unwrap();
        assert_eq!(repaired.lines().count(), intact_lines, "no duplicates");
        assert!(repaired.ends_with('\n'));
        assert!(PersistentCache::open(&path, &cfg).is_ok());

        // Case 2: kill between the record bytes and nothing else — the final
        // line parses but is unterminated. Nothing may be recomputed, and
        // the record must be rewritten terminated.
        let unterminated = repaired.trim_end_matches('\n');
        std::fs::write(&path, unterminated).unwrap();
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.preloaded(), plan.len() - 1);
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
            assert_eq!(
                engine.cache().misses(),
                0,
                "a parseable tail never recomputes"
            );
        }
        let final_text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(final_text.lines().count(), intact_lines);
        assert!(final_text.ends_with('\n'));
        let reopened = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(reopened.preloaded(), plan.len());

        // Case 3: only a torn header survives — equivalent to an empty file.
        let header_only = intact.lines().next().unwrap();
        std::fs::write(&path, &header_only[..header_only.len() - 3]).unwrap();
        let persistent = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(persistent.preloaded(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn persistent_cache_rejects_corrupt_and_headerless_files() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "this is not json\n").unwrap();
        assert!(PersistentCache::open(&path, &cfg()).is_err());
        // A plain JsonlSink stream has no header: rejected up front rather
        // than trusted as some unknown configuration's outcomes.
        let cfg = cfg();
        let trial = acmin_plan(&cfg).trials()[0].clone();
        let record = TrialRecord {
            trial,
            outcome: TrialOutcome::Retention { flips: Vec::new() },
            wall_us: None,
        };
        std::fs::write(&path, serde_json::to_string(&record).unwrap() + "\n").unwrap();
        let err = PersistentCache::open(&path, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wall_times_are_recorded_and_absent_wall_times_are_tolerated() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("walltime");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        // Every flushed record carries the wall time its computation took…
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines().skip(1) {
            assert!(line.contains("\"wall_us\""), "{line}");
        }
        // …and the next open feeds them back as fit samples.
        let persistent = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(persistent.timed_samples().len(), plan.len());
        assert!(persistent
            .timed_samples()
            .iter()
            .all(|(t, _)| plan.trials().contains(t)));

        // A file written before wall-time capture (no `wall_us` field) and
        // before line checksums still preloads in full — it just yields no
        // samples. (Stripping the suffix here also exercises the legacy
        // checksum-less parse path end to end.)
        let mut legacy = String::new();
        for (position, line) in text.lines().enumerate() {
            let (payload, status) = split_checksum(line);
            assert_eq!(status, LineChecksum::Valid, "{line}");
            if position == 0 {
                legacy.push_str(payload);
            } else {
                let mut record = serde_json::from_str::<TrialRecord>(payload).unwrap();
                record.wall_us = None;
                let stripped = serde_json::to_string(&record).unwrap();
                assert!(!stripped.contains("wall_us"));
                legacy.push_str(&stripped);
            }
            legacy.push('\n');
        }
        std::fs::write(&path, legacy).unwrap();
        let persistent = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(persistent.preloaded(), plan.len());
        assert!(persistent.timed_samples().is_empty());
        let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
        engine.run_collect(&plan).unwrap();
        assert_eq!(engine.cache().misses(), 0, "legacy records still replay");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_preload_is_identical_to_sequential() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("parallel");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        // Replicate the body well past the per-worker threshold so the
        // chunked path actually runs, duplicates included (a respawned
        // shard's re-appends look exactly like this).
        let text = std::fs::read_to_string(&path).unwrap();
        let header = text.lines().next().unwrap().to_string();
        let body: Vec<&str> = text.lines().skip(1).collect();
        let mut big = header.clone();
        big.push('\n');
        while big.lines().count() < 1200 {
            for line in &body {
                big.push_str(line);
                big.push('\n');
            }
        }
        std::fs::write(&path, &big).unwrap();
        for workers in [1, 2, 8] {
            let persistent = PersistentCache::open_with_workers(&path, &cfg, workers).unwrap();
            assert_eq!(persistent.preloaded(), plan.len(), "workers={workers}");
            assert_eq!(persistent.timed_samples().len(), big.lines().count() - 1);
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
            assert_eq!(engine.cache().misses(), 0, "workers={workers}");
        }
        // A torn tail is still detected and repaired under the chunked path.
        let torn = &big[..big.len() - 9];
        std::fs::write(&path, torn).unwrap();
        let persistent = PersistentCache::open_with_workers(&path, &cfg, 8).unwrap();
        assert_eq!(
            persistent.preloaded(),
            plan.len(),
            "duplicates cover the torn line"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_drops_duplicates_and_replay_needs_no_recompute() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("compact");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        // Simulate a respawn double-append: every record line twice more.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut duplicated = text.clone();
        for line in text.lines().skip(1) {
            duplicated.push_str(line);
            duplicated.push('\n');
        }
        std::fs::write(&path, &duplicated).unwrap();

        let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(
            persistent.preloaded(),
            plan.len(),
            "duplicates preload once"
        );
        let stats = persistent.compact(None).unwrap();
        assert_eq!(stats.bytes_before, duplicated.len() as u64);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(stats.records_before, 2 * plan.len());
        assert_eq!(stats.records_after, plan.len());
        assert_eq!(stats.duplicates_dropped, plan.len());
        assert_eq!(stats.evicted, 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), stats.bytes_after);
        drop(persistent);

        // The compacted file replays the full trial set with zero
        // recompute, and an open + flush + drop leaves it byte-identical.
        let compacted = std::fs::read_to_string(&path).unwrap();
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            assert_eq!(persistent.preloaded(), plan.len());
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
            assert_eq!(engine.cache().misses(), 0);
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), compacted);

        // Compacting an already-compact file is a no-op.
        let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
        let stats = persistent.compact(None).unwrap();
        assert_eq!(stats.bytes_before, stats.bytes_after);
        assert_eq!(stats.duplicates_dropped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_budget_evicts_oldest_first() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("budget");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "need at least two records to evict one");
        // Budget = header + the last two records: everything older goes.
        let keep = &lines[lines.len() - 2..];
        let budget = (lines[0].len() + 1 + keep.iter().map(|l| l.len() + 1).sum::<usize>()) as u64;

        let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
        let stats = persistent.compact(Some(budget)).unwrap();
        assert_eq!(stats.evicted, lines.len() - 3);
        assert_eq!(stats.records_after, 2);
        assert!(stats.bytes_after <= budget);
        let after: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(after[0], lines[0], "header survives");
        assert_eq!(&after[1..], keep, "the newest records survive, in order");
        // The evicted trials are simply recomputed next time.
        let persistent = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(persistent.preloaded(), 2);
        let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
        engine.run_collect(&plan).unwrap();
        assert_eq!(engine.cache().misses(), (plan.len() - 2) as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_is_crash_safe_around_the_tmp_rename() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("crashsafe");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        let intact = std::fs::read_to_string(&path).unwrap();

        // A kill mid-rewrite leaves a partial tmp sibling and the original
        // untouched: opens ignore the tmp entirely.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &intact[..intact.len() / 2]).unwrap();
        let persistent = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(persistent.preloaded(), plan.len());
        drop(persistent);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), intact);

        // The next compact simply overwrites the stale tmp and completes.
        let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
        persistent.compact(None).unwrap();
        assert!(!tmp.exists(), "tmp is consumed by the rename");
        let reopened = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(reopened.preloaded(), plan.len());

        // Compacting a cache whose file has a torn tail drops the tail,
        // exactly as a flush-repair would.
        let torn = &intact[..intact.len() - 25];
        std::fs::write(&path, torn).unwrap();
        let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
        let stats = persistent.compact(None).unwrap();
        assert_eq!(stats.records_after, plan.len() - 1);
        assert!(PersistentCache::open(&path, &cfg).is_ok());
        std::fs::remove_file(&path).ok();
    }

    /// Byte offset of the start of content line `index` (0 = header).
    fn line_offset(text: &str, index: usize) -> usize {
        text.split_inclusive('\n').take(index).map(str::len).sum()
    }

    #[test]
    fn strict_open_rejects_a_corrupt_interior_line_as_invalid_data() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("strict");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        // Flip one bit in the middle of the *second* record line: interior
        // corruption, not a torn tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let target = line_offset(&text, 2) + 10;
        bytes[target] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let err = PersistentCache::open(&path, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let offset = line_offset(&text, 2);
        assert!(
            err.to_string().contains(&format!("byte {offset}")),
            "error names the corrupt line's offset: {err}"
        );
        assert!(err.to_string().contains("salvage"), "{err}");
        // Strict never touches the file or creates a quarantine.
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        assert!(!quarantine_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_open_quarantines_exactly_the_corrupt_line() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("salvage");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let offset = line_offset(&text, 2);
        bytes[offset + 10] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // Salvage recovers every other record and quarantines exactly one
        // line, recording where it sat.
        let persistent =
            PersistentCache::open_with_policy(&path, &cfg, OpenPolicy::Salvage).unwrap();
        assert_eq!(persistent.preloaded(), plan.len() - 1);
        assert_eq!(persistent.quarantined(), 1);
        let sidecar = std::fs::read_to_string(quarantine_path(&path)).unwrap();
        assert_eq!(sidecar.lines().count(), 1);
        let entry: QuarantineEntry = serde_json::from_str(sidecar.lines().next().unwrap()).unwrap();
        assert_eq!(entry.offset, offset as u64);
        assert_eq!(entry.reason, "checksum mismatch");
        assert_eq!(entry.length, text.lines().nth(2).unwrap().len());
        drop(persistent);

        // The rewritten cache is clean: a strict reopen succeeds and only
        // the quarantined trial recomputes.
        let audit = PersistentCache::audit(&path).unwrap();
        assert!(audit.clean(), "{audit:?}");
        assert_eq!(audit.records, plan.len() - 1);
        let persistent = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(persistent.preloaded(), plan.len() - 1);
        let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
        engine.run_collect(&plan).unwrap();
        assert_eq!(
            engine.cache().misses(),
            1,
            "one record was lost, not the file"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(quarantine_path(&path)).ok();
    }

    #[test]
    fn salvage_open_on_a_clean_file_changes_nothing() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("salvage-clean");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        let persistent =
            PersistentCache::open_with_policy(&path, &cfg, OpenPolicy::Salvage).unwrap();
        assert_eq!(persistent.preloaded(), plan.len());
        assert_eq!(persistent.quarantined(), 0);
        drop(persistent);
        assert_eq!(std::fs::read(&path).unwrap(), before, "no rewrite");
        assert!(!quarantine_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_enospc_fails_flushes_until_space_returns() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("enospc");
        let faults = FsFaults::new().enospc_at(0);
        let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
        persistent.set_write_fault(faults.clone());
        let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
        engine.run_collect(&plan).unwrap();
        let err = persistent.flush().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(faults.written(), 0);
        // The unwritten outcomes stayed pending: once space returns, the
        // retried flush writes every record.
        faults.clear_enospc();
        assert_eq!(persistent.flush().unwrap(), plan.len());
        assert!(faults.written() > 0);
        drop(persistent);
        let reopened = PersistentCache::open(&path, &cfg).unwrap();
        assert_eq!(reopened.preloaded(), plan.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn injected_flip_is_caught_by_checksums_and_salvaged() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("flip");
        // Aim the flip 10 bytes into the first *record* line — the header
        // length is deterministic, so the position is exact.
        let header_json = serde_json::to_string(&CacheHeader {
            config: ConfigKey::of(&cfg),
        })
        .unwrap();
        let flip_at = (append_checksum(&header_json).len() + 1 + 10) as u64;
        let faults = FsFaults::new().flip_at(flip_at);
        {
            let mut persistent = PersistentCache::open(&path, &cfg).unwrap();
            persistent.set_write_fault(faults.clone());
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
            persistent.flush().unwrap();
        }
        // The write "succeeded" but the medium lied: strict open refuses,
        // salvage recovers all but the corrupted record.
        let err = PersistentCache::open(&path, &cfg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let persistent =
            PersistentCache::open_with_policy(&path, &cfg, OpenPolicy::Salvage).unwrap();
        assert_eq!(persistent.preloaded(), plan.len() - 1);
        assert_eq!(persistent.quarantined(), 1);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(quarantine_path(&path)).ok();
    }

    #[test]
    fn audit_classifies_checksummed_legacy_torn_and_corrupt_lines() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let path = temp_path("audit");
        {
            let persistent = PersistentCache::open(&path, &cfg).unwrap();
            let engine = Engine::new(&cfg).with_persistent_cache(&persistent);
            engine.run_collect(&plan).unwrap();
        }
        // A freshly written file is fully checksummed and clean.
        let audit = PersistentCache::audit(&path).unwrap();
        assert!(audit.clean() && !audit.torn_tail);
        assert_eq!(audit.records, plan.len());
        assert_eq!(audit.checksummed, plan.len() + 1, "records + header");
        assert_eq!(audit.legacy, 0);

        // Strip the suffix from one record: a legacy line, still clean.
        let text = std::fs::read_to_string(&path).unwrap();
        let stripped: String = text
            .lines()
            .enumerate()
            .map(|(i, line)| {
                let payload = if i == 1 { split_checksum(line).0 } else { line };
                format!("{payload}\n")
            })
            .collect();
        std::fs::write(&path, &stripped).unwrap();
        let audit = PersistentCache::audit(&path).unwrap();
        assert!(audit.clean());
        assert_eq!((audit.legacy, audit.records), (1, plan.len()));

        // Corrupt an interior byte and tear the tail: one corrupt line with
        // its offset, plus the (repairable, not corrupt) torn-tail flag.
        let mut bytes = stripped.clone().into_bytes();
        let offset = line_offset(&stripped, 2);
        bytes[offset + 3] ^= 0x01;
        bytes.truncate(bytes.len() - 4);
        std::fs::write(&path, &bytes).unwrap();
        let audit = PersistentCache::audit(&path).unwrap();
        assert!(audit.torn_tail);
        assert_eq!(audit.corrupt.len(), 1, "{audit:?}");
        assert_eq!(audit.corrupt[0].0, offset as u64);
        assert!(!audit.clean());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeding_does_not_overwrite_and_counts_nothing() {
        let cfg = cfg();
        let plan = acmin_plan(&cfg);
        let trial = plan.trials()[0].clone();
        let cache = TrialCache::new();
        cache.seed(trial.clone(), TrialOutcome::Retention { flips: Vec::new() });
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // A second seed for the same trial keeps the first outcome.
        cache.seed(trial.clone(), TrialOutcome::TAggOnMin { t_aggon_min: None });
        let outcome = cache.get_or_compute(&trial, || unreachable!("seeded"));
        assert_eq!(
            *outcome.unwrap(),
            TrialOutcome::Retention { flips: Vec::new() }
        );
        assert_eq!(cache.hits(), 1);
    }
}
