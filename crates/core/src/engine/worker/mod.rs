//! Plan execution: the [`Engine`], its bounded worker pool, and the
//! per-trial device-model code path.
//!
//! Workers claim trials off a shared queue in the order the engine's
//! [`SchedulePolicy`] dictates (cost-aware longest-pole-first by default)
//! and fill per-trial slots; the caller's thread drains the slots in plan
//! order and feeds the sink, so the record stream is independent of worker
//! count, scheduling policy and timing.
//!
//! # Example: results are worker-count independent
//!
//! ```
//! use rowpress_core::engine::{Engine, Measurement, Plan};
//! use rowpress_core::{lookup_module, ExperimentConfig};
//! use rowpress_dram::Time;
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&lookup_module("S3").unwrap())
//!     .measurement(Measurement::AcMin { t_aggon: Time::from_ms(30.0) })
//!     .build();
//! let serial = Engine::new(&cfg).with_workers(1).run_collect(&plan)?;
//! let pooled = Engine::new(&cfg).with_workers(8).run_collect(&plan)?;
//! assert_eq!(serial, pooled);
//! # Ok::<(), rowpress_dram::DramError>(())
//! ```

use super::cache::{shared_cache, CachedOutcome, TrialCache};
use super::plan::{Measurement, Plan, Trial, TrialOutcome, TrialRecord, TEST_BANK};
use super::schedule::{CostModel, SchedulePolicy};
use super::sink::{MemorySink, Sink};
use crate::config::ExperimentConfig;
use crate::patterns::{run_pattern_into, PatternInstance, PatternSite};
use crate::search::{find_ac_min_with, find_t_aggon_min, flips_at_ac_max_with, TrialScratch};
use rowpress_dram::{
    module_inventory, DramError, DramModule, DramResult, FlipMechanism, ModuleSpec, RowRole,
};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Cumulative pool-utilization counters of an [`Engine`]. Clones share the
/// underlying counters (like [`TrialCache`]), so a monitor thread — the
/// campaign shard's heartbeat, say — can watch an engine mid-run.
///
/// `busy_us` advances live, per completed trial; `idle_us` is settled when a
/// pooled run drains (each worker books its lifetime minus its busy span),
/// so mid-run reads can lag the final figure. The counters accumulate across
/// runs of the same engine.
#[derive(Debug, Clone, Default)]
pub struct PoolMetrics {
    busy_us: Arc<AtomicU64>,
    idle_us: Arc<AtomicU64>,
    queue_peak: Arc<AtomicU64>,
    /// Completed outcomes currently buffered behind the plan-ordered drain
    /// (transient; its high-water mark is `queue_peak`).
    pending: Arc<AtomicU64>,
}

impl PoolMetrics {
    /// Wall-clock microseconds workers spent computing (or replaying)
    /// trials.
    pub fn busy_us(&self) -> u64 {
        self.busy_us.load(Ordering::Relaxed)
    }

    /// Wall-clock microseconds workers spent idle inside pooled runs —
    /// claiming, waiting on a shared in-flight trial, or drained out of
    /// work while the pool's long poles finish.
    pub fn idle_us(&self) -> u64 {
        self.idle_us.load(Ordering::Relaxed)
    }

    /// High-water mark of completed outcomes buffered behind the
    /// plan-ordered drain: the peak-memory price of longest-pole-first
    /// dispatch.
    pub fn queue_peak(&self) -> u64 {
        self.queue_peak.load(Ordering::Relaxed)
    }

    fn book_filled(&self) {
        let pending = self.pending.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(pending, Ordering::Relaxed);
    }

    fn book_drained(&self) {
        self.pending.fetch_sub(1, Ordering::Relaxed);
    }
}

/// An engine run failed: a trial hit a device-model error, a sink hit an I/O
/// error, or a referenced module does not exist.
#[derive(Debug)]
pub enum EngineError {
    /// A trial failed in the device model (e.g. a row out of range).
    Dram(DramError),
    /// A sink failed to write a record.
    Sink(std::io::Error),
    /// A module id is not in the tested-chip inventory (see
    /// [`lookup_module`]).
    UnknownModule {
        /// The id that failed to resolve.
        id: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Dram(e) => write!(f, "trial failed: {e}"),
            EngineError::Sink(e) => write!(f, "sink failed: {e}"),
            EngineError::UnknownModule { id } => {
                write!(f, "module {id:?} is not in the tested-chip inventory")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Dram(e) => Some(e),
            EngineError::Sink(e) => Some(e),
            EngineError::UnknownModule { .. } => None,
        }
    }
}

impl From<DramError> for EngineError {
    fn from(e: DramError) -> Self {
        EngineError::Dram(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Sink(e)
    }
}

/// Resolves a module id ("S3", "H0", …) against the paper's tested-chip
/// inventory, returning a typed [`EngineError::UnknownModule`] instead of
/// panicking when the id is unknown.
///
/// # Errors
///
/// Returns [`EngineError::UnknownModule`] when no inventory module has the
/// requested id.
pub fn lookup_module(id: &str) -> Result<ModuleSpec, EngineError> {
    module_inventory()
        .into_iter()
        .find(|m| m.id == id)
        .ok_or_else(|| EngineError::UnknownModule { id: id.to_string() })
}

/// Executes [`Plan`]s on a bounded worker pool with trial-level caching and
/// cost-aware dispatch.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: ExperimentConfig,
    workers: usize,
    cache: TrialCache,
    policy: SchedulePolicy,
    cost: CostModel,
    metrics: PoolMetrics,
}

impl Engine {
    /// An engine with a private cache and the default bounded pool
    /// (≤ [`crate::campaign::worker_count`] workers).
    pub fn new(cfg: &ExperimentConfig) -> Self {
        Engine {
            cfg: *cfg,
            workers: crate::campaign::worker_count(),
            cache: TrialCache::new(),
            policy: SchedulePolicy::default(),
            cost: CostModel::default(),
            metrics: PoolMetrics::default(),
        }
    }

    /// An engine sharing the process-wide cache for this configuration. The
    /// study drivers use this, so overlapping figures (the shared 50 °C ACmin
    /// sweep behind Figs. 6–8, say) compute each trial once per process.
    pub fn shared(cfg: &ExperimentConfig) -> Self {
        Engine {
            cfg: *cfg,
            workers: crate::campaign::worker_count(),
            cache: shared_cache(cfg),
            policy: SchedulePolicy::default(),
            cost: CostModel::default(),
            metrics: PoolMetrics::default(),
        }
    }

    /// Overrides the worker count (values are clamped to at least 1). The
    /// determinism tests use this to prove worker-count independence.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the cache handle (clones share storage): use a
    /// [`super::PersistentCache`]'s cache, or share one private cache
    /// between engines.
    pub fn with_cache(mut self, cache: TrialCache) -> Self {
        self.cache = cache;
        self
    }

    /// Backs the engine with a [`super::PersistentCache`]: outcomes preloaded
    /// from its file answer without recomputation, and new outcomes reach
    /// the file on its next flush (or drop).
    pub fn with_persistent_cache(self, persistent: &super::PersistentCache) -> Self {
        self.with_cache(persistent.cache().clone())
    }

    /// Overrides the dispatch policy (the default is
    /// [`SchedulePolicy::CostAware`]). Results are identical either way.
    pub fn with_schedule(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the cost model [`SchedulePolicy::CostAware`] dispatches by —
    /// typically one [fitted](CostModel::fit) from a persistent cache's
    /// recorded wall times. Scheduling never changes results, only pool
    /// utilization.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// The configuration the engine executes against.
    pub fn config(&self) -> &ExperimentConfig {
        &self.cfg
    }

    /// The worker-pool bound.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The dispatch policy.
    pub fn schedule(&self) -> SchedulePolicy {
        self.policy
    }

    /// The engine's cache (shared handle; clone-cheap).
    pub fn cache(&self) -> &TrialCache {
        &self.cache
    }

    /// The cost model [`SchedulePolicy::CostAware`] dispatches by.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The engine's pool-utilization counters (shared handle; clone-cheap).
    pub fn pool_metrics(&self) -> &PoolMetrics {
        &self.metrics
    }

    /// Executes the plan and streams records to `sink` in plan order.
    ///
    /// Records flow to the sink as their outcomes resolve in plan order. How
    /// early the first record lands depends on the [`SchedulePolicy`]: under
    /// [`SchedulePolicy::PlanOrder`] early-plan trials are computed first,
    /// so the stream starts almost immediately; under the default
    /// [`SchedulePolicy::CostAware`] the longest poles are computed first,
    /// so early-plan records (and the outcomes buffered behind them) may
    /// only reach the sink late in the run — prefer `PlanOrder` when
    /// first-record latency or peak outcome memory matters more than pool
    /// utilization. On the first trial or sink error the remaining trials
    /// are aborted (workers finish only their in-flight trial), and
    /// [`Sink::finish`] is called whether the run succeeded or not, so
    /// buffered sinks always flush what they accepted.
    ///
    /// # Errors
    ///
    /// Returns the first trial or sink error, in plan order.
    pub fn run(&self, plan: &Plan, sink: &mut dyn Sink) -> Result<(), EngineError> {
        let result = self.stream(plan, sink);
        let finished = sink.finish().map_err(EngineError::Sink);
        result.and(finished)
    }

    fn stream(&self, plan: &Plan, sink: &mut dyn Sink) -> Result<(), EngineError> {
        let trials = plan.trials();
        let n = trials.len();
        let workers = self.workers.min(n);
        // Streamed records never carry wall times: the sink byte stream is
        // pinned by tests/golden.rs and must not vary with host speed.
        let record = |trial: &Trial, outcome: Arc<TrialOutcome>| TrialRecord {
            trial: trial.clone(),
            outcome: (*outcome).clone(),
            wall_us: None,
        };

        if workers <= 1 {
            let mut scratch = TrialScratch::new();
            for trial in trials {
                let start = Instant::now();
                let outcome = self.outcome_for(trial, &mut scratch)?;
                self.metrics
                    .busy_us
                    .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                sink.accept(record(trial, outcome))?;
            }
            return Ok(());
        }

        // The dispatch order decides which trial an idle worker claims next;
        // longest-pole-first keeps the pool busy through a mixed grid's
        // expensive tail. The drain below is plan-ordered either way.
        let dispatch: Vec<usize> = match self.policy {
            SchedulePolicy::PlanOrder => (0..n).collect(),
            SchedulePolicy::CostAware => self.cost.dispatch_order(&self.cfg, trials),
        };

        // Workers fill per-trial slots off a shared queue; this thread drains
        // the slots in plan order, feeding the sink as each outcome lands.
        // Panics inside a trial are caught in the worker and re-raised here
        // so the drain can never wait on a slot that will not be filled.
        type Slot = Option<std::thread::Result<CachedOutcome>>;
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let slots: Mutex<Vec<Slot>> = Mutex::new((0..n).map(|_| None).collect());
        let ready = Condvar::new();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // One scratch per worker: buffers warm up on the first
                    // trial and are reused for every trial the worker claims.
                    let mut scratch = TrialScratch::new();
                    let spawned = Instant::now();
                    let mut busy_local = 0u64;
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let claimed = next.fetch_add(1, Ordering::Relaxed);
                        if claimed >= n {
                            break;
                        }
                        let index = dispatch[claimed];
                        let start = Instant::now();
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                self.outcome_for(&trials[index], &mut scratch)
                            }));
                        let spent = start.elapsed().as_micros() as u64;
                        busy_local += spent;
                        self.metrics.busy_us.fetch_add(spent, Ordering::Relaxed);
                        let mut filled = slots.lock().expect("slot lock");
                        filled[index] = Some(outcome);
                        self.metrics.book_filled();
                        ready.notify_all();
                    }
                    let lifetime = spawned.elapsed().as_micros() as u64;
                    self.metrics
                        .idle_us
                        .fetch_add(lifetime.saturating_sub(busy_local), Ordering::Relaxed);
                });
            }

            for (index, trial) in trials.iter().enumerate() {
                let outcome = {
                    let mut filled = slots.lock().expect("slot lock");
                    loop {
                        if let Some(outcome) = filled[index].take() {
                            self.metrics.book_drained();
                            break outcome;
                        }
                        filled = ready.wait(filled).expect("slot lock");
                    }
                };
                let step = match outcome {
                    Ok(Ok(outcome)) => sink
                        .accept(record(trial, outcome))
                        .map_err(EngineError::Sink),
                    Ok(Err(e)) => Err(EngineError::Dram(e)),
                    Err(panic) => {
                        abort.store(true, Ordering::Relaxed);
                        std::panic::resume_unwind(panic);
                    }
                };
                if let Err(e) = step {
                    abort.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
            Ok(())
        })
    }

    /// Executes the plan and collects the records in plan order.
    ///
    /// # Errors
    ///
    /// Returns the first trial error, in plan order.
    pub fn run_collect(&self, plan: &Plan) -> DramResult<Vec<TrialRecord>> {
        let mut sink = MemorySink::new();
        match self.run(plan, &mut sink) {
            Ok(()) => Ok(sink.into_records()),
            Err(EngineError::Dram(e)) => Err(e),
            Err(EngineError::Sink(_)) | Err(EngineError::UnknownModule { .. }) => {
                unreachable!("MemorySink::accept is infallible and runs resolve no module ids")
            }
        }
    }

    fn outcome_for(&self, trial: &Trial, scratch: &mut TrialScratch) -> CachedOutcome {
        self.cache
            .get_or_compute(trial, || run_trial(&self.cfg, trial, scratch))
    }
}

/// Runs one trial on a freshly constructed module. A fresh module per trial
/// is what makes outcomes independent of scheduling: no state leaks between
/// trials, so any interleaving produces the same records. `scratch` holds the
/// reusable buffers of the trial kernel (the engine threads one per worker);
/// only state that never influences outcomes lives there.
///
/// # Errors
///
/// Returns an error if a row of the trial's site is out of range.
pub fn run_trial(
    cfg: &ExperimentConfig,
    trial: &Trial,
    scratch: &mut TrialScratch,
) -> DramResult<TrialOutcome> {
    execute(cfg, trial, scratch, true)
}

/// [`run_trial`] with the device model's precomputed-profile kernel
/// disabled: every cell parameter is recomputed on demand, as the pre-kernel
/// code did. Outcomes are bit-identical to [`run_trial`]; only the cost
/// differs. This is the measured baseline of the `perf_trial_kernel` bench
/// and the oracle of the kernel-equivalence tests.
///
/// # Errors
///
/// Returns an error if a row of the trial's site is out of range.
pub fn run_trial_reference(cfg: &ExperimentConfig, trial: &Trial) -> DramResult<TrialOutcome> {
    execute(cfg, trial, &mut TrialScratch::new(), false)
}

fn execute(
    cfg: &ExperimentConfig,
    trial: &Trial,
    scratch: &mut TrialScratch,
    profile_caching: bool,
) -> DramResult<TrialOutcome> {
    let mut module = DramModule::new(&trial.spec, cfg.geometry);
    module.set_profile_caching(profile_caching);
    if profile_caching {
        // The kernel path shares the scratch's cross-trial profile store:
        // every trial probing the same (spec, temperature, jitter, row) site
        // reuses one cell-profile build instead of repeating it.
        module.set_profile_store(scratch.profile_store().clone());
    }
    module.set_temperature(trial.temperature_c);
    if trial.jitter.sigma != 0.0 {
        module.set_flip_jitter(trial.jitter.sigma, trial.jitter.salt);
    }
    let site = PatternSite::for_kind(trial.kind, TEST_BANK, trial.row, cfg.geometry.rows_per_bank);

    match trial.measurement {
        Measurement::AcMin { t_aggon } => {
            match find_ac_min_with(
                &mut module,
                &site,
                t_aggon,
                trial.data_pattern,
                cfg,
                scratch,
            )? {
                Some(outcome) => Ok(TrialOutcome::AcMin {
                    ac_min: Some(outcome.ac_min),
                    ac_max: outcome.ac_max,
                    flips: outcome.flips,
                }),
                // `max_activations_within` clamps tAggON to tRAS internally,
                // so this reports the same ACmax the search bracket used —
                // the no-flip branch no longer diverges for sub-tRAS on-times.
                None => Ok(TrialOutcome::AcMin {
                    ac_min: None,
                    ac_max: module.timing().max_activations_within(t_aggon, cfg.budget),
                    flips: Vec::new(),
                }),
            }
        }
        Measurement::AcMax { t_aggon } => {
            let (ac, flips) = flips_at_ac_max_with(
                &mut module,
                &site,
                t_aggon,
                trial.data_pattern,
                cfg,
                scratch,
            )?;
            Ok(TrialOutcome::AcMax { ac, flips })
        }
        Measurement::TAggOnMin { ac } => {
            let t_aggon_min = find_t_aggon_min(&mut module, &site, ac, trial.data_pattern, cfg)?;
            Ok(TrialOutcome::TAggOnMin { t_aggon_min })
        }
        Measurement::OnOff {
            delta_a2a,
            on_fraction,
        } => {
            let timing = *module.timing();
            let t_on = timing.t_ras + delta_a2a * on_fraction;
            let t_off = timing.t_rp + delta_a2a * (1.0 - on_fraction);
            let cycle = t_on + t_off;
            let ac = cfg.budget.as_ps() / cycle.as_ps();
            let instance = PatternInstance {
                t_aggon: t_on,
                t_aggoff: t_off,
                total_acts: ac,
            };
            run_pattern_into(
                &mut module,
                &site,
                instance,
                trial.data_pattern,
                &mut scratch.flips,
            )?;
            Ok(TrialOutcome::OnOff {
                ac,
                flips: scratch.flips.clone(),
            })
        }
        Measurement::Retention { duration } => {
            for &victim in &site.victims {
                module.init_row_pattern(site.bank, victim, trial.data_pattern, RowRole::Victim)?;
            }
            module.idle(duration);
            scratch.flips.clear();
            for &victim in &site.victims {
                module.check_row_append(site.bank, victim, &mut scratch.flips)?;
            }
            Ok(TrialOutcome::Retention {
                flips: scratch
                    .flips
                    .iter()
                    .filter(|f| f.mechanism == FlipMechanism::Retention)
                    .copied()
                    .collect(),
            })
        }
    }
}

#[cfg(test)]
mod tests;
