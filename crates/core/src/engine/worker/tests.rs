//! Unit tests of `engine::worker` (split out to keep the submodule readable).

use super::super::JsonlSink;
use super::*;
use rowpress_dram::{RowId, Time};

fn spec(id: &str) -> ModuleSpec {
    lookup_module(id).expect("module in inventory")
}

fn cfg() -> ExperimentConfig {
    ExperimentConfig::test_scale()
}

fn acmin_plan(cfg: &ExperimentConfig) -> Plan {
    Plan::grid(cfg)
        .modules(&[spec("S3"), spec("S0")])
        .temperatures(&[50.0, 80.0])
        .measurements(
            [Time::from_ns(36.0), Time::from_ms(30.0)]
                .into_iter()
                .map(|t| Measurement::AcMin { t_aggon: t }),
        )
        .build()
}

#[test]
fn records_are_identical_for_any_worker_count_and_policy() {
    let cfg = cfg();
    let plan = acmin_plan(&cfg);
    let baseline = Engine::new(&cfg)
        .with_workers(1)
        .run_collect(&plan)
        .unwrap();
    assert_eq!(baseline.len(), plan.len());
    for workers in [2, 4, 16] {
        for policy in [SchedulePolicy::PlanOrder, SchedulePolicy::CostAware] {
            let records = Engine::new(&cfg)
                .with_workers(workers)
                .with_schedule(policy)
                .run_collect(&plan)
                .unwrap();
            assert_eq!(
                records, baseline,
                "{workers} workers under {policy:?} changed the record stream"
            );
        }
    }
    // Byte-identical through the JSONL sink, too.
    let jsonl = |workers: usize, policy: SchedulePolicy| -> Vec<u8> {
        let mut sink = JsonlSink::new(Vec::new());
        Engine::new(&cfg)
            .with_workers(workers)
            .with_schedule(policy)
            .run(&plan, &mut sink)
            .unwrap();
        sink.into_inner()
    };
    let reference = jsonl(1, SchedulePolicy::PlanOrder);
    assert_eq!(reference, jsonl(4, SchedulePolicy::PlanOrder));
    assert_eq!(reference, jsonl(4, SchedulePolicy::CostAware));
}

#[test]
fn sharded_engines_merge_to_the_single_process_stream() {
    let cfg = cfg();
    let plan = acmin_plan(&cfg);
    let baseline = Engine::new(&cfg).run_collect(&plan).unwrap();
    for shards in [2, 3, 5] {
        // Each shard runs on its own engine with a private cache — the
        // in-process model of independent shard processes.
        let streams: Vec<Vec<TrialRecord>> = (0..shards)
            .map(|i| {
                Engine::new(&cfg)
                    .run_collect(&plan.shard(i, shards))
                    .unwrap()
            })
            .collect();
        assert_eq!(
            Plan::merge(streams),
            baseline,
            "{shards}-way shard must merge to the baseline"
        );
    }
}

#[test]
fn trial_errors_surface_in_plan_order() {
    let cfg = cfg();
    let mut good = Plan::grid(&cfg)
        .module(&spec("S3"))
        .measurement(Measurement::AcMin {
            t_aggon: Time::from_ms(30.0),
        })
        .build()
        .trials()
        .to_vec();
    // An out-of-range row makes the site invalid.
    good[1].row = RowId(cfg.geometry.rows_per_bank + 100);
    let plan = Plan::from_trials(good);
    let err = Engine::new(&cfg).run_collect(&plan).unwrap_err();
    assert!(matches!(err, DramError::InvalidRow { .. }));
    let display = format!("{}", EngineError::from(err));
    assert!(display.contains("trial failed"));
}

#[test]
fn finish_flushes_even_when_a_trial_fails() {
    struct CountingSink {
        accepted: usize,
        finished: bool,
    }
    impl Sink for CountingSink {
        fn accept(&mut self, _record: TrialRecord) -> std::io::Result<()> {
            self.accepted += 1;
            Ok(())
        }
        fn finish(&mut self) -> std::io::Result<()> {
            self.finished = true;
            Ok(())
        }
    }
    let cfg = cfg();
    let mut trials = Plan::grid(&cfg)
        .module(&spec("S3"))
        .measurement(Measurement::AcMin {
            t_aggon: Time::from_ms(30.0),
        })
        .build()
        .trials()
        .to_vec();
    trials[1].row = RowId(cfg.geometry.rows_per_bank + 100);
    let plan = Plan::from_trials(trials);
    let mut sink = CountingSink {
        accepted: 0,
        finished: false,
    };
    let err = Engine::new(&cfg)
        .with_workers(1)
        .run(&plan, &mut sink)
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Dram(DramError::InvalidRow { .. })
    ));
    // The record before the failing trial streamed, and finish() still ran.
    assert_eq!(sink.accepted, 1);
    assert!(sink.finished, "finish() must run on the error path");
}

#[test]
fn identical_concurrent_trials_compute_once() {
    let cfg = cfg();
    let base = Plan::grid(&cfg)
        .module(&spec("S0"))
        .rows(vec![RowId(20)])
        .measurement(Measurement::AcMax {
            t_aggon: Time::from_us(70.2),
        })
        .build()
        .trials()
        .to_vec();
    // Eight copies of the same trial, executed by a multi-worker pool:
    // the in-flight dedup must compute it exactly once.
    let plan = Plan::from_trials(vec![base[0].clone(); 8]);
    let engine = Engine::new(&cfg).with_workers(4);
    let records = engine.run_collect(&plan).unwrap();
    assert_eq!(records.len(), 8);
    assert!(records.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(engine.cache().misses(), 1);
    assert_eq!(engine.cache().hits(), 7);
}

#[test]
fn engine_defaults_are_bounded_and_cost_aware() {
    let engine = Engine::new(&cfg());
    assert!(engine.workers() >= 1);
    assert!(engine.workers() <= crate::campaign::worker_count());
    assert_eq!(engine.schedule(), SchedulePolicy::CostAware);
    assert_eq!(Engine::new(&cfg()).with_workers(0).workers(), 1);
    assert!(engine.cache().is_empty());
    assert_eq!(engine.config(), &cfg());
}

#[test]
fn unknown_modules_resolve_to_typed_errors() {
    assert_eq!(lookup_module("S3").unwrap().id, "S3");
    let err = lookup_module("Z9").unwrap_err();
    assert!(matches!(err, EngineError::UnknownModule { ref id } if id == "Z9"));
    assert!(format!("{err}").contains("Z9"));
    assert!(std::error::Error::source(&err).is_none());
}
