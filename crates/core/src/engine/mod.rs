//! The unified campaign engine: typed trials, declarative plans, sharding,
//! a bounded cost-aware worker pool, streaming sinks and in-process plus
//! cross-process result caches.
//!
//! Every figure of the paper is a slice of one big grid of
//! (module × temperature × site × pattern × tAggON) experiments. The paper's
//! characterization of 164 DDR4 chips was only feasible because that grid
//! was fanned out across many DRAM-Bender boards in parallel and no measured
//! point was ever recomputed — and the engine factors exactly those concerns
//! into one submodule per layer:
//!
//! * [`plan`] — [`Trial`], one point of the grid, and [`Plan`], an ordered
//!   trial list built declaratively with [`Plan::grid`]'s [`PlanBuilder`].
//!   [`Plan::shard`] splits a grid into strided sub-plans for independent
//!   processes (the paper's Slurm-style fan-out) and [`Plan::merge`]
//!   reassembles their record streams into single-process plan order.
//! * [`schedule`] — the [`CostModel`] that estimates per-trial device cost
//!   and the [`SchedulePolicy`] deciding dispatch order; the default
//!   longest-pole-first policy keeps the pool busy through a grid's 30 ms
//!   tAggON tail.
//! * [`cache`] — the in-process [`TrialCache`] (shared per configuration via
//!   [`Engine::shared`]) and the [`PersistentCache`] that preloads and
//!   flushes trial outcomes through a JSONL file, so a *new* process replays
//!   warm instead of recomputing. Opens take an [`OpenPolicy`] — strict, or
//!   salvage corrupt lines into a quarantine sidecar.
//! * [`integrity`] — per-line CRC-32 checksums: every cache line carries a
//!   `#crc32=` suffix, [`CrcLineWriter`] produces the merged output's `.crc`
//!   sidecar, and `PersistentCache::audit` is the file-integrity scan behind
//!   `rowpress-campaign fsck`.
//! * [`sink`] — the [`Sink`] consumers of the record stream: [`MemorySink`],
//!   [`JsonlSink`], the [`ThreadedSink`] background-writer adapter that
//!   decouples slow I/O from the pool, and the [`JsonlReader`] that parses
//!   streams back (and merge-sorts shard outputs).
//! * [`worker`] — the [`Engine`] itself: a bounded pool of at most
//!   [`crate::campaign::worker_count`] workers claiming trials in dispatch
//!   order and draining outcomes to the sink in plan order.
//!
//! Results are deterministic: records always arrive in plan order and each
//! trial runs on a freshly constructed module, so the record stream is
//! byte-for-byte identical regardless of worker count, schedule policy,
//! sharding or sink threading.
//!
//! # Example
//!
//! ```
//! use rowpress_core::engine::{Engine, Measurement, Plan};
//! use rowpress_core::ExperimentConfig;
//! use rowpress_dram::{module_inventory, Time};
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&module_inventory()[0])
//!     .measurement(Measurement::AcMin { t_aggon: Time::from_ms(30.0) })
//!     .build();
//! let records = Engine::new(&cfg).run_collect(&plan).unwrap();
//! assert_eq!(records.len(), cfg.tested_sites().len());
//! ```
//!
//! # Example: shard a grid and merge the streams
//!
//! ```
//! use rowpress_core::engine::{Engine, Measurement, Plan};
//! use rowpress_core::ExperimentConfig;
//! use rowpress_dram::{module_inventory, Time};
//!
//! let cfg = ExperimentConfig::test_scale();
//! let plan = Plan::grid(&cfg)
//!     .module(&module_inventory()[0])
//!     .measurement(Measurement::AcMin { t_aggon: Time::from_ms(30.0) })
//!     .build();
//! // Each shard would normally run in its own process.
//! let shards: Vec<_> = (0..2)
//!     .map(|i| Engine::new(&cfg).run_collect(&plan.shard(i, 2)).unwrap())
//!     .collect();
//! assert_eq!(Plan::merge(shards), Engine::new(&cfg).run_collect(&plan).unwrap());
//! ```

pub mod cache;
pub mod integrity;
pub mod plan;
pub mod schedule;
pub mod sink;
pub mod worker;

pub use cache::{
    quarantine_path, CacheAudit, CompactStats, FsFaults, OpenPolicy, PersistentCache, TrialCache,
};
pub use integrity::{append_checksum, crc32, split_checksum, Crc32, LineChecksum};
pub use plan::{
    Jitter, Measurement, Plan, PlanBuilder, Trial, TrialOutcome, TrialRecord, TEST_BANK,
};
pub use schedule::{CostModel, SchedulePolicy};
pub use sink::{CrcLineWriter, FramedSink, JsonlReader, JsonlSink, MemorySink, Sink, ThreadedSink};
pub use worker::{lookup_module, run_trial, run_trial_reference, Engine, EngineError, PoolMetrics};
