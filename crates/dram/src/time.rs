//! Time representation used throughout the DRAM model.
//!
//! All DRAM timings in the paper are expressed in nanoseconds (e.g. tRAS =
//! 36 ns), microseconds (tREFI = 7.8 µs) or milliseconds (tREFW = 64 ms), and
//! the DRAM-Bender infrastructure issues commands on a 1.5 ns grid. To keep
//! arithmetic exact and hashable we represent time as an integer number of
//! **picoseconds**.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A non-negative span of time with picosecond resolution.
///
/// `Time` is a thin newtype over `u64` picoseconds. It is `Copy`, totally
/// ordered and supports saturating subtraction so that timing arithmetic in
/// the device model can never underflow.
///
/// # Examples
///
/// ```
/// use rowpress_dram::Time;
///
/// let t_ras = Time::from_ns(36.0);
/// let t_refi = Time::from_us(7.8);
/// assert!(t_refi > t_ras);
/// assert_eq!(Time::from_ns(36.0).as_ns(), 36.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time {
    ps: u64,
}

impl Time {
    /// The zero duration.
    pub const ZERO: Time = Time { ps: 0 };

    /// Creates a `Time` from an integer number of picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time { ps }
    }

    /// Creates a `Time` from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "time must be non-negative and finite"
        );
        Time {
            ps: (ns * 1e3).round() as u64,
        }
    }

    /// Creates a `Time` from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1e3)
    }

    /// Creates a `Time` from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1e6)
    }

    /// Creates a `Time` from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs(s: f64) -> Self {
        Self::from_ns(s * 1e9)
    }

    /// Returns the raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.ps
    }

    /// Returns the duration in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.ps as f64 / 1e3
    }

    /// Returns the duration in microseconds.
    pub fn as_us(self) -> f64 {
        self.ps as f64 / 1e6
    }

    /// Returns the duration in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.ps as f64 / 1e9
    }

    /// Returns the duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.ps as f64 / 1e12
    }

    /// Saturating subtraction: returns `self - other`, or zero if `other > self`.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time {
            ps: self.ps.saturating_sub(other.ps),
        }
    }

    /// Multiplies the duration by an integer count (e.g. activation count).
    pub fn checked_mul(self, count: u64) -> Option<Time> {
        self.ps.checked_mul(count).map(|ps| Time { ps })
    }

    /// Returns the larger of the two durations.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of the two durations.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns true if this is the zero duration.
    pub fn is_zero(self) -> bool {
        self.ps == 0
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time {
            ps: self.ps + rhs.ps,
        }
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.ps += rhs.ps;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics (in debug builds) on underflow; use [`Time::saturating_sub`]
    /// where the operands may be out of order.
    fn sub(self, rhs: Time) -> Time {
        Time {
            ps: self.ps - rhs.ps,
        }
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.ps -= rhs.ps;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        Time { ps: self.ps * rhs }
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    fn mul(self, rhs: f64) -> Time {
        assert!(rhs.is_finite() && rhs >= 0.0);
        Time {
            ps: (self.ps as f64 * rhs).round() as u64,
        }
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time { ps: self.ps / rhs }
    }
}

impl Div<Time> for Time {
    type Output = f64;
    fn div(self, rhs: Time) -> f64 {
        self.ps as f64 / rhs.ps as f64
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns();
        if ns < 1e3 {
            write!(f, "{ns:.1}ns")
        } else if ns < 1e6 {
            write!(f, "{:.2}us", ns / 1e3)
        } else if ns < 1e9 {
            write!(f, "{:.2}ms", ns / 1e6)
        } else {
            write!(f, "{:.3}s", ns / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Time::from_ns(36.0).as_ns(), 36.0);
        assert_eq!(Time::from_us(7.8).as_us(), 7.8);
        assert_eq!(Time::from_ms(64.0).as_ms(), 64.0);
        assert_eq!(Time::from_secs(4.0).as_secs(), 4.0);
        assert_eq!(Time::from_ps(1500).as_ns(), 1.5);
    }

    #[test]
    fn ordering_matches_magnitude() {
        let t_ras = Time::from_ns(36.0);
        let t_refi = Time::from_us(7.8);
        let t_refw = Time::from_ms(64.0);
        assert!(t_ras < t_refi);
        assert!(t_refi < t_refw);
        assert_eq!(t_ras.max(t_refi), t_refi);
        assert_eq!(t_ras.min(t_refi), t_ras);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Time::from_ns(10.0);
        let b = Time::from_ns(4.0);
        assert_eq!((a + b).as_ns(), 14.0);
        assert_eq!((a - b).as_ns(), 6.0);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!((a * 3u64).as_ns(), 30.0);
        assert_eq!((a / 2u64).as_ns(), 5.0);
        assert!((a / b - 2.5).abs() < 1e-12);
        let total: Time = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_ns(), 18.0);
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(
            Time::from_ns(1.0).saturating_sub(Time::from_ns(2.0)),
            Time::ZERO
        );
        assert!(Time::from_ms(1.0).checked_mul(u64::MAX).is_none());
        assert_eq!(Time::from_ns(2.0).checked_mul(3), Some(Time::from_ns(6.0)));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", Time::from_ns(36.0)), "36.0ns");
        assert_eq!(format!("{}", Time::from_us(7.8)), "7.80us");
        assert_eq!(format!("{}", Time::from_ms(30.0)), "30.00ms");
        assert_eq!(format!("{}", Time::from_secs(4.0)), "4.000s");
    }

    #[test]
    fn zero_checks() {
        assert!(Time::ZERO.is_zero());
        assert!(!Time::from_ns(0.001).is_zero());
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_time_panics() {
        let _ = Time::from_ns(-1.0);
    }

    #[test]
    fn float_mul_scales() {
        assert_eq!(Time::from_ns(100.0) * 0.25, Time::from_ns(25.0));
    }
}
