//! Manufacturer, die-revision and module catalog (paper Table 1), together
//! with the per-die calibration constants of the behavioural fault model.
//!
//! The paper characterizes 164 chips on 21 modules spanning 12 distinct
//! (manufacturer, density, die revision) combinations. Each [`DieProfile`]
//! below carries the calibration targets extracted from the paper's summary
//! tables (Table 5: ACmin / tAggONmin averages and minima; Table 6: maximum
//! bit error rates), so that the synthetic device reproduces the *shape* of
//! every figure: which dies are vulnerable, how vulnerable, and how the
//! vulnerability scales with temperature and technology node.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Hashes an `f64` by its bit pattern. [`PressCalibration`], [`DieProfile`]
/// and [`ModuleSpec`] compare their float fields bitwise too (see the manual
/// `PartialEq` impls below), so equality and hashing agree for *any* value —
/// `NaN` equals itself, `-0.0` is distinct from `0.0` — which is what lets
/// these types serve as `HashMap` keys (the engine's trial cache keys trials
/// by module spec).
fn hash_f64<H: Hasher>(value: f64, state: &mut H) {
    value.to_bits().hash(state);
}

/// Bitwise `f64` equality, the counterpart of [`hash_f64`].
fn eq_f64(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// The three major DRAM manufacturers, anonymized as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Manufacturer {
    /// Mfr. S (Samsung).
    S,
    /// Mfr. H (SK Hynix).
    H,
    /// Mfr. M (Micron).
    M,
}

impl Manufacturer {
    /// All manufacturers in the order used by the paper's figures.
    pub fn all() -> [Manufacturer; 3] {
        [Manufacturer::S, Manufacturer::H, Manufacturer::M]
    }

    /// Full vendor name as revealed in Table 1.
    pub fn vendor_name(&self) -> &'static str {
        match self {
            Manufacturer::S => "Samsung",
            Manufacturer::H => "SK Hynix",
            Manufacturer::M => "Micron",
        }
    }
}

impl fmt::Display for Manufacturer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Manufacturer::S => write!(f, "Mfr. S"),
            Manufacturer::H => write!(f, "Mfr. H"),
            Manufacturer::M => write!(f, "Mfr. M"),
        }
    }
}

/// Die density in gigabits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DieDensity {
    /// 4 Gb dies.
    Gb4,
    /// 8 Gb dies.
    Gb8,
    /// 16 Gb dies.
    Gb16,
}

impl fmt::Display for DieDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DieDensity::Gb4 => write!(f, "4Gb"),
            DieDensity::Gb8 => write!(f, "8Gb"),
            DieDensity::Gb16 => write!(f, "16Gb"),
        }
    }
}

/// RowPress-specific calibration of a die revision. Dies with `None` for this
/// block (e.g. Mfr. M's 8Gb B-die) exhibit no RowPress bitflips at any tested
/// temperature, matching the paper.
///
/// Equality compares the float fields *bitwise* so it always agrees with the
/// `Hash` implementation (`NaN` equals itself, `-0.0` differs from `0.0`);
/// likewise for [`DieProfile`] and [`ModuleSpec`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PressCalibration {
    /// Mean, across tested rows, of the total effective aggressor-on time (ms)
    /// needed to flip the weakest cell of a row at 50 °C (Table 5's
    /// "tAggONmin @ AC=1, 50 °C, Avg.").
    pub t_mean_ms_50c: f64,
    /// Minimum of the same quantity across tested rows (Table 5's "Min.").
    pub t_min_ms_50c: f64,
    /// Acceleration factor of the press mechanism at 80 °C relative to 50 °C
    /// (how much less on-time is needed). Derived from Table 5's 50 °C vs
    /// 80 °C columns; Obsv. 9/11.
    pub theta_80c: f64,
    /// Expected number of additional cells per row that flip when the press
    /// exposure reaches 4x the row's weakest-cell requirement. Controls the
    /// press BER tail (Table 6) and the ECC word analysis (Fig. 25/26).
    pub cells_at_4x: f64,
}

impl PartialEq for PressCalibration {
    fn eq(&self, other: &Self) -> bool {
        eq_f64(self.t_mean_ms_50c, other.t_mean_ms_50c)
            && eq_f64(self.t_min_ms_50c, other.t_min_ms_50c)
            && eq_f64(self.theta_80c, other.theta_80c)
            && eq_f64(self.cells_at_4x, other.cells_at_4x)
    }
}

impl Eq for PressCalibration {}

impl Hash for PressCalibration {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_f64(self.t_mean_ms_50c, state);
        hash_f64(self.t_min_ms_50c, state);
        hash_f64(self.theta_80c, state);
        hash_f64(self.cells_at_4x, state);
    }
}

/// Calibration constants of one (manufacturer, density, die revision).
///
/// Equality compares float fields bitwise (see [`PressCalibration`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DieProfile {
    /// Manufacturer.
    pub manufacturer: Manufacturer,
    /// Die density.
    pub density: DieDensity,
    /// Die revision code ('B', 'C', ..., 'X' when unknown).
    pub revision: char,
    /// Mean RowHammer ACmin across tested rows at 50 °C with the reference
    /// single-sided pattern (tAggON = tRAS).
    pub hammer_acmin_mean: f64,
    /// Minimum RowHammer ACmin across tested rows.
    pub hammer_acmin_min: f64,
    /// Expected number of cells per row that flip at the maximum activation
    /// count reachable within the 60 ms experiment budget (RowHammer BER tail).
    pub hammer_cells_at_max: f64,
    /// Mild acceleration of the hammer mechanism at 80 °C relative to 50 °C.
    pub hammer_theta_80c: f64,
    /// Extra effectiveness of the double-sided pattern for the hammer
    /// mechanism (victim sandwiched between two aggressors).
    pub double_sided_hammer_bonus: f64,
    /// RowPress calibration; `None` for dies that never exhibit press bitflips.
    pub press: Option<PressCalibration>,
    /// Fraction of cells that are anti-cells (a fully charged state stores a
    /// logical 0). Drives the bitflip-direction results of Fig. 12.
    pub anti_cell_fraction: f64,
    /// Median single-cell retention time in seconds at 80 °C.
    pub retention_median_s_80c: f64,
}

impl PartialEq for DieProfile {
    fn eq(&self, other: &Self) -> bool {
        self.manufacturer == other.manufacturer
            && self.density == other.density
            && self.revision == other.revision
            && eq_f64(self.hammer_acmin_mean, other.hammer_acmin_mean)
            && eq_f64(self.hammer_acmin_min, other.hammer_acmin_min)
            && eq_f64(self.hammer_cells_at_max, other.hammer_cells_at_max)
            && eq_f64(self.hammer_theta_80c, other.hammer_theta_80c)
            && eq_f64(
                self.double_sided_hammer_bonus,
                other.double_sided_hammer_bonus,
            )
            && self.press == other.press
            && eq_f64(self.anti_cell_fraction, other.anti_cell_fraction)
            && eq_f64(self.retention_median_s_80c, other.retention_median_s_80c)
    }
}

impl Eq for DieProfile {}

impl Hash for DieProfile {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.manufacturer.hash(state);
        self.density.hash(state);
        self.revision.hash(state);
        hash_f64(self.hammer_acmin_mean, state);
        hash_f64(self.hammer_acmin_min, state);
        hash_f64(self.hammer_cells_at_max, state);
        hash_f64(self.hammer_theta_80c, state);
        hash_f64(self.double_sided_hammer_bonus, state);
        self.press.hash(state);
        hash_f64(self.anti_cell_fraction, state);
        hash_f64(self.retention_median_s_80c, state);
    }
}

impl DieProfile {
    /// A short identifier such as "8Gb B-Die".
    pub fn label(&self) -> String {
        format!("{} {}-Die", self.density, self.revision)
    }

    /// True if this die exhibits RowPress bitflips at any temperature.
    pub fn is_press_vulnerable(&self) -> bool {
        self.press.is_some()
    }

    /// Relative technology-node rank within (manufacturer, density): later die
    /// revision letters are assumed to be more advanced nodes (paper footnote 9).
    pub fn node_rank(&self) -> u32 {
        match self.revision {
            'X' => 0,
            c => c as u32 - 'A' as u32 + 1,
        }
    }
}

impl fmt::Display for DieProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.manufacturer, self.label())
    }
}

/// Returns the catalog of the 12 die revisions characterized in the paper,
/// with calibration constants derived from Tables 5 and 6.
pub fn die_catalog() -> Vec<DieProfile> {
    use DieDensity::*;
    use Manufacturer::*;
    let press = |mean: f64, min: f64, theta: f64, cells: f64| {
        Some(PressCalibration {
            t_mean_ms_50c: mean,
            t_min_ms_50c: min,
            theta_80c: theta,
            cells_at_4x: cells,
        })
    };
    vec![
        // ---- Mfr. S (Samsung) ----
        DieProfile {
            manufacturer: S,
            density: Gb8,
            revision: 'B',
            hammer_acmin_mean: 270_000.0,
            hammer_acmin_min: 42_000.0,
            hammer_cells_at_max: 98.0,
            hammer_theta_80c: 1.05,
            double_sided_hammer_bonus: 1.4,
            press: press(48.0, 13.0, 1.85, 6.0),
            anti_cell_fraction: 0.04,
            retention_median_s_80c: 400.0,
        },
        DieProfile {
            manufacturer: S,
            density: Gb8,
            revision: 'C',
            hammer_acmin_mean: 110_000.0,
            hammer_acmin_min: 24_000.0,
            hammer_cells_at_max: 460.0,
            hammer_theta_80c: 1.05,
            double_sided_hammer_bonus: 1.4,
            press: press(49.0, 13.0, 1.45, 13.0),
            anti_cell_fraction: 0.04,
            retention_median_s_80c: 380.0,
        },
        DieProfile {
            manufacturer: S,
            density: Gb8,
            revision: 'D',
            hammer_acmin_mean: 41_500.0,
            hammer_acmin_min: 13_000.0,
            hammer_cells_at_max: 5_000.0,
            hammer_theta_80c: 1.06,
            double_sided_hammer_bonus: 1.4,
            press: press(39.0, 9.5, 1.58, 33.0),
            anti_cell_fraction: 0.04,
            retention_median_s_80c: 340.0,
        },
        DieProfile {
            manufacturer: S,
            density: Gb4,
            revision: 'F',
            hammer_acmin_mean: 122_000.0,
            hammer_acmin_min: 21_000.0,
            hammer_cells_at_max: 330.0,
            hammer_theta_80c: 1.05,
            double_sided_hammer_bonus: 1.4,
            press: press(45.0, 13.5, 2.8, 16.0),
            anti_cell_fraction: 0.04,
            retention_median_s_80c: 420.0,
        },
        // ---- Mfr. H (SK Hynix) ----
        DieProfile {
            manufacturer: H,
            density: Gb16,
            revision: 'A',
            hammer_acmin_mean: 117_000.0,
            hammer_acmin_min: 22_000.0,
            hammer_cells_at_max: 690.0,
            hammer_theta_80c: 1.07,
            double_sided_hammer_bonus: 1.4,
            press: press(50.0, 17.0, 3.8, 20.0),
            anti_cell_fraction: 0.05,
            retention_median_s_80c: 360.0,
        },
        DieProfile {
            manufacturer: H,
            density: Gb16,
            revision: 'C',
            hammer_acmin_mean: 77_500.0,
            hammer_acmin_min: 15_500.0,
            hammer_cells_at_max: 1_380.0,
            hammer_theta_80c: 1.07,
            double_sided_hammer_bonus: 1.4,
            press: press(51.6, 11.0, 2.3, 4.0),
            anti_cell_fraction: 0.05,
            retention_median_s_80c: 350.0,
        },
        DieProfile {
            manufacturer: H,
            density: Gb4,
            revision: 'A',
            hammer_acmin_mean: 382_000.0,
            hammer_acmin_min: 83_000.0,
            hammer_cells_at_max: 130.0,
            hammer_theta_80c: 1.04,
            double_sided_hammer_bonus: 1.4,
            // Not vulnerable at 50 C (mean on-time requirement exceeds the
            // 60 ms experiment budget); becomes vulnerable at >= 65 C.
            press: press(160.0, 95.0, 3.2, 3.0),
            anti_cell_fraction: 0.05,
            retention_median_s_80c: 520.0,
        },
        DieProfile {
            manufacturer: H,
            density: Gb4,
            revision: 'X',
            hammer_acmin_mean: 119_000.0,
            hammer_acmin_min: 20_000.0,
            hammer_cells_at_max: 590.0,
            hammer_theta_80c: 1.05,
            double_sided_hammer_bonus: 1.4,
            press: press(53.5, 20.0, 3.85, 3.5),
            anti_cell_fraction: 0.05,
            retention_median_s_80c: 400.0,
        },
        // ---- Mfr. M (Micron) ----
        DieProfile {
            manufacturer: M,
            density: Gb8,
            revision: 'B',
            hammer_acmin_mean: 386_000.0,
            hammer_acmin_min: 87_000.0,
            hammer_cells_at_max: 200.0,
            hammer_theta_80c: 1.03,
            double_sided_hammer_bonus: 1.4,
            press: None,
            anti_cell_fraction: 0.05,
            retention_median_s_80c: 550.0,
        },
        DieProfile {
            manufacturer: M,
            density: Gb16,
            revision: 'B',
            hammer_acmin_mean: 116_000.0,
            hammer_acmin_min: 24_000.0,
            hammer_cells_at_max: 820.0,
            hammer_theta_80c: 1.05,
            double_sided_hammer_bonus: 1.4,
            press: press(56.7, 40.0, 1.25, 3.0),
            anti_cell_fraction: 0.05,
            retention_median_s_80c: 430.0,
        },
        DieProfile {
            manufacturer: M,
            density: Gb16,
            revision: 'E',
            hammer_acmin_mean: 39_000.0,
            hammer_acmin_min: 10_500.0,
            hammer_cells_at_max: 5_500.0,
            hammer_theta_80c: 1.06,
            double_sided_hammer_bonus: 1.4,
            press: press(46.7, 14.0, 2.0, 15.0),
            // Press-vulnerable cells in this die are predominantly anti-cells,
            // which inverts the bitflip-direction trend (Obsv. 8 exception).
            anti_cell_fraction: 0.85,
            retention_median_s_80c: 330.0,
        },
        DieProfile {
            manufacturer: M,
            density: Gb16,
            revision: 'F',
            hammer_acmin_mean: 31_000.0,
            hammer_acmin_min: 8_700.0,
            hammer_cells_at_max: 4_650.0,
            hammer_theta_80c: 1.06,
            double_sided_hammer_bonus: 1.4,
            press: press(50.9, 15.0, 2.7, 7.0),
            anti_cell_fraction: 0.25,
            retention_median_s_80c: 320.0,
        },
    ]
}

/// Looks up a die profile by manufacturer, density and revision.
pub fn find_die(mfr: Manufacturer, density: DieDensity, revision: char) -> Option<DieProfile> {
    die_catalog()
        .into_iter()
        .find(|d| d.manufacturer == mfr && d.density == density && d.revision == revision)
}

/// One DDR4 module (DIMM) under test, mirroring a row of Table 1 / Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Short identifier used in the paper's appendix tables ("S0", "H4", ...).
    pub id: String,
    /// Die revision profile of the chips on this module.
    pub die: DieProfile,
    /// Number of DRAM chips on the module.
    pub chips: u32,
    /// Device data width (x4, x8, x16).
    pub organization: u8,
    /// Manufacturing date code as printed on the label ("20-53", "Mar. 21", …).
    pub date_code: Option<String>,
    /// Seed from which every per-cell fault parameter of this module derives.
    pub seed: u64,
}

impl Eq for ModuleSpec {}

impl Hash for ModuleSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
        self.die.hash(state);
        self.chips.hash(state);
        self.organization.hash(state);
        self.date_code.hash(state);
        self.seed.hash(state);
    }
}

impl ModuleSpec {
    /// Creates a module spec with a seed derived from its id.
    pub fn new(
        id: &str,
        die: DieProfile,
        chips: u32,
        organization: u8,
        date_code: Option<&str>,
    ) -> Self {
        let seed = crate::math::hash_words(&[id
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(u64::from(b)))]);
        ModuleSpec {
            id: id.to_string(),
            die,
            chips,
            organization,
            date_code: date_code.map(str::to_string),
            seed,
        }
    }
}

impl fmt::Display for ModuleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} x{} chips, {})",
            self.id, self.chips, self.organization, self.die
        )
    }
}

/// The 21-module inventory of Table 1 (164 chips in total).
pub fn module_inventory() -> Vec<ModuleSpec> {
    use DieDensity::*;
    use Manufacturer::*;
    let die = |m, d, r| find_die(m, d, r).expect("die in catalog");
    vec![
        // Mfr. S — Samsung (8 modules, 64 chips)
        ModuleSpec::new("S0", die(S, Gb8, 'B'), 8, 8, Some("20-53")),
        ModuleSpec::new("S1", die(S, Gb8, 'B'), 8, 8, Some("20-53")),
        ModuleSpec::new("S2", die(S, Gb8, 'C'), 8, 8, None),
        ModuleSpec::new("S3", die(S, Gb8, 'D'), 8, 8, Some("21-10")),
        ModuleSpec::new("S4", die(S, Gb8, 'D'), 8, 8, Some("21-10")),
        ModuleSpec::new("S5", die(S, Gb8, 'D'), 8, 8, Some("21-10")),
        ModuleSpec::new("S6", die(S, Gb4, 'F'), 8, 8, Some("Mar. 21")),
        ModuleSpec::new("S7", die(S, Gb4, 'F'), 8, 8, Some("Mar. 21")),
        // Mfr. H — SK Hynix (6 modules, 48 chips)
        ModuleSpec::new("H0", die(H, Gb16, 'A'), 8, 8, Some("20-51")),
        ModuleSpec::new("H1", die(H, Gb16, 'A'), 8, 8, Some("20-51")),
        ModuleSpec::new("H2", die(H, Gb16, 'C'), 8, 8, Some("21-36")),
        ModuleSpec::new("H3", die(H, Gb16, 'C'), 8, 8, Some("21-36")),
        ModuleSpec::new("H4", die(H, Gb4, 'A'), 8, 8, Some("19-46")),
        ModuleSpec::new("H5", die(H, Gb4, 'X'), 8, 8, None),
        // Mfr. M — Micron (7 modules, 52 chips)
        ModuleSpec::new("M0", die(M, Gb8, 'B'), 16, 4, None),
        ModuleSpec::new("M1", die(M, Gb16, 'B'), 4, 16, Some("21-26")),
        ModuleSpec::new("M2", die(M, Gb16, 'B'), 4, 16, Some("21-26")),
        ModuleSpec::new("M3", die(M, Gb16, 'E'), 16, 4, Some("20-14")),
        ModuleSpec::new("M4", die(M, Gb16, 'E'), 4, 16, Some("20-46")),
        ModuleSpec::new("M5", die(M, Gb16, 'E'), 4, 16, Some("20-46")),
        ModuleSpec::new("M6", die(M, Gb16, 'F'), 4, 16, Some("21-50")),
    ]
}

/// Returns one representative module per die revision (used by the quicker
/// benches that sweep all dies without repeating identical revisions).
pub fn representative_modules() -> Vec<ModuleSpec> {
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for m in module_inventory() {
        let key = (m.die.manufacturer, m.die.density, m.die.revision);
        if !seen.contains(&key) {
            seen.push(key);
            out.push(m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_twelve_die_revisions() {
        let catalog = die_catalog();
        assert_eq!(catalog.len(), 12);
        // Four revisions per manufacturer.
        for mfr in Manufacturer::all() {
            assert_eq!(catalog.iter().filter(|d| d.manufacturer == mfr).count(), 4);
        }
    }

    #[test]
    fn inventory_matches_table1_totals() {
        let modules = module_inventory();
        assert_eq!(modules.len(), 21);
        let chips: u32 = modules.iter().map(|m| m.chips).sum();
        assert_eq!(chips, 164);
        // Unique ids.
        let mut ids: Vec<_> = modules.iter().map(|m| m.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 21);
        // Seeds are distinct and stable.
        let s0 = &modules[0];
        assert_eq!(
            s0.seed,
            ModuleSpec::new("S0", s0.die, 8, 8, Some("20-53")).seed
        );
        let mut seeds: Vec<_> = modules.iter().map(|m| m.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), 21);
    }

    #[test]
    fn only_micron_8gb_b_is_press_invulnerable() {
        let invulnerable: Vec<_> = die_catalog()
            .into_iter()
            .filter(|d| !d.is_press_vulnerable())
            .collect();
        assert_eq!(invulnerable.len(), 1);
        assert_eq!(invulnerable[0].manufacturer, Manufacturer::M);
        assert_eq!(invulnerable[0].density, DieDensity::Gb8);
        assert_eq!(invulnerable[0].revision, 'B');
    }

    #[test]
    fn newer_nodes_are_more_hammer_vulnerable_within_samsung_8gb() {
        let b = find_die(Manufacturer::S, DieDensity::Gb8, 'B').unwrap();
        let c = find_die(Manufacturer::S, DieDensity::Gb8, 'C').unwrap();
        let d = find_die(Manufacturer::S, DieDensity::Gb8, 'D').unwrap();
        assert!(b.hammer_acmin_mean > c.hammer_acmin_mean);
        assert!(c.hammer_acmin_mean > d.hammer_acmin_mean);
        assert!(b.node_rank() < d.node_rank());
        // Technology scaling also shows in the press BER tail.
        assert!(d.press.unwrap().cells_at_4x > b.press.unwrap().cells_at_4x);
    }

    #[test]
    fn hynix_4gb_a_needs_high_temperature_for_press() {
        let die = find_die(Manufacturer::H, DieDensity::Gb4, 'A').unwrap();
        let press = die.press.unwrap();
        // Beyond the 60 ms budget at 50 C, within it at 80 C.
        assert!(press.t_min_ms_50c > 60.0);
        assert!(press.t_min_ms_50c / press.theta_80c < 60.0);
    }

    #[test]
    fn labels_and_display() {
        let die = find_die(Manufacturer::S, DieDensity::Gb8, 'B').unwrap();
        assert_eq!(die.label(), "8Gb B-Die");
        assert_eq!(format!("{die}"), "Mfr. S 8Gb B-Die");
        assert_eq!(Manufacturer::S.vendor_name(), "Samsung");
        assert_eq!(format!("{}", DieDensity::Gb16), "16Gb");
        let m = &module_inventory()[0];
        assert!(format!("{m}").contains("S0"));
    }

    #[test]
    fn representative_modules_cover_all_dies_once() {
        let reps = representative_modules();
        assert_eq!(reps.len(), 12);
        let mut keys: Vec<_> = reps
            .iter()
            .map(|m| (m.die.manufacturer, m.die.density, m.die.revision))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 12);
    }

    #[test]
    fn find_die_returns_none_for_unknown() {
        assert!(find_die(Manufacturer::S, DieDensity::Gb16, 'Z').is_none());
    }

    #[test]
    fn module_specs_are_usable_as_hash_keys() {
        // The campaign engine keys its trial cache by ModuleSpec; equal specs
        // must collide and distinct specs must not.
        let mut counts: std::collections::HashMap<ModuleSpec, u32> =
            std::collections::HashMap::new();
        for spec in module_inventory() {
            *counts.entry(spec).or_default() += 1;
        }
        assert_eq!(counts.len(), 21);
        let again = module_inventory();
        assert_eq!(counts[&again[0]], 1);
        let mut modified = again[0].clone();
        modified.chips += 1;
        assert!(!counts.contains_key(&modified));
    }

    #[test]
    fn anti_cell_anomaly_is_micron_16gb_e() {
        let e = find_die(Manufacturer::M, DieDensity::Gb16, 'E').unwrap();
        assert!(e.anti_cell_fraction > 0.5);
        let b = find_die(Manufacturer::S, DieDensity::Gb8, 'B').unwrap();
        assert!(b.anti_cell_fraction < 0.5);
    }
}
