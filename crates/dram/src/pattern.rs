//! Data patterns used by the characterization (paper §4.1 and §5.3, Table 2).
//!
//! The paper fills aggressor and victim rows with one of six patterns:
//! checkerboard, row-stripe and column-stripe, plus their bitwise inverses.
//! The pattern determines both the byte written to each row and, together with
//! the true-/anti-cell polarity, whether a given victim cell is charged — which
//! in turn decides which disturbance mechanism (charge injection vs. charge
//! drain) can flip it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The role of a row in a read-disturb experiment, which selects which byte of
/// the data pattern it is filled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowRole {
    /// The row being activated (hammered / pressed).
    Aggressor,
    /// A physically nearby row being checked for bitflips.
    Victim,
}

/// The six data patterns of Table 2. The suffix `I` denotes the bitwise
/// inverse of the base pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataPattern {
    /// Aggressor 0xAA, victim 0x55 (the paper's baseline pattern).
    Checkerboard,
    /// Aggressor 0x55, victim 0xAA.
    CheckerboardI,
    /// Aggressor 0xFF, victim 0x00.
    RowStripe,
    /// Aggressor 0x00, victim 0xFF.
    RowStripeI,
    /// Aggressor 0x55, victim 0x55 (alternating along the column/bitline).
    ColStripe,
    /// Aggressor 0xAA, victim 0xAA.
    ColStripeI,
}

impl DataPattern {
    /// All six patterns in the order used by the paper's Fig. 19/20 heatmaps.
    pub fn all() -> [DataPattern; 6] {
        [
            DataPattern::Checkerboard,
            DataPattern::CheckerboardI,
            DataPattern::ColStripe,
            DataPattern::ColStripeI,
            DataPattern::RowStripe,
            DataPattern::RowStripeI,
        ]
    }

    /// The fill byte for a row with the given role (Table 2).
    pub fn fill_byte(&self, role: RowRole) -> u8 {
        match (self, role) {
            (DataPattern::Checkerboard, RowRole::Aggressor) => 0xAA,
            (DataPattern::Checkerboard, RowRole::Victim) => 0x55,
            (DataPattern::CheckerboardI, RowRole::Aggressor) => 0x55,
            (DataPattern::CheckerboardI, RowRole::Victim) => 0xAA,
            (DataPattern::RowStripe, RowRole::Aggressor) => 0xFF,
            (DataPattern::RowStripe, RowRole::Victim) => 0x00,
            (DataPattern::RowStripeI, RowRole::Aggressor) => 0x00,
            (DataPattern::RowStripeI, RowRole::Victim) => 0xFF,
            (DataPattern::ColStripe, RowRole::Aggressor) => 0x55,
            (DataPattern::ColStripe, RowRole::Victim) => 0x55,
            (DataPattern::ColStripeI, RowRole::Aggressor) => 0xAA,
            (DataPattern::ColStripeI, RowRole::Victim) => 0xAA,
        }
    }

    /// The stored bit of cell `column` in a row filled with this pattern.
    pub fn bit_at(&self, role: RowRole, column: u32) -> bool {
        let byte = self.fill_byte(role);
        let bit = column % 8;
        (byte >> bit) & 1 == 1
    }

    /// The inverse pattern.
    pub fn inverse(&self) -> DataPattern {
        match self {
            DataPattern::Checkerboard => DataPattern::CheckerboardI,
            DataPattern::CheckerboardI => DataPattern::Checkerboard,
            DataPattern::RowStripe => DataPattern::RowStripeI,
            DataPattern::RowStripeI => DataPattern::RowStripe,
            DataPattern::ColStripe => DataPattern::ColStripeI,
            DataPattern::ColStripeI => DataPattern::ColStripe,
        }
    }

    /// Short label used in figure output ("CB", "CBI", "RS", ...).
    pub fn label(&self) -> &'static str {
        match self {
            DataPattern::Checkerboard => "CB",
            DataPattern::CheckerboardI => "CBI",
            DataPattern::RowStripe => "RS",
            DataPattern::RowStripeI => "RSI",
            DataPattern::ColStripe => "CS",
            DataPattern::ColStripeI => "CSI",
        }
    }

    /// Coupling multiplier applied to the *RowHammer* (charge-injection) term
    /// for a victim cell under this pattern.
    ///
    /// The paper observes (Obsv. 15) that RowStripe is the most effective
    /// RowHammer pattern, with Checkerboard close behind and the column-stripe
    /// family the weakest. The factors below encode that ordering; the
    /// per-die-revision profile can scale them further.
    pub fn hammer_factor(&self) -> f64 {
        match self {
            DataPattern::RowStripe | DataPattern::RowStripeI => 1.20,
            DataPattern::Checkerboard | DataPattern::CheckerboardI => 1.00,
            DataPattern::ColStripe | DataPattern::ColStripeI => 0.72,
        }
    }

    /// Coupling multiplier applied to the *RowPress* (charge-drain) term for a
    /// victim cell under this pattern.
    ///
    /// The paper observes (Obsv. 14/15) that the Checkerboard pattern is the
    /// most robust RowPress pattern: it always induces bitflips as tAggON
    /// grows, while RowStripe becomes ineffective beyond a few hundred ns and
    /// the column-stripe family loses effectiveness at high temperature.
    pub fn press_factor(&self) -> f64 {
        match self {
            DataPattern::Checkerboard | DataPattern::CheckerboardI => 1.00,
            DataPattern::ColStripe | DataPattern::ColStripeI => 0.92,
            DataPattern::RowStripe | DataPattern::RowStripeI => 0.28,
        }
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Fills a buffer of `len` bytes for a row of the given role.
pub fn fill_row(pattern: DataPattern, role: RowRole, len: usize) -> Vec<u8> {
    vec![pattern.fill_byte(role); len]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkerboard_matches_paper_table2() {
        assert_eq!(
            DataPattern::Checkerboard.fill_byte(RowRole::Aggressor),
            0xAA
        );
        assert_eq!(DataPattern::Checkerboard.fill_byte(RowRole::Victim), 0x55);
        assert_eq!(DataPattern::RowStripe.fill_byte(RowRole::Aggressor), 0xFF);
        assert_eq!(DataPattern::RowStripe.fill_byte(RowRole::Victim), 0x00);
        assert_eq!(DataPattern::ColStripe.fill_byte(RowRole::Aggressor), 0x55);
        assert_eq!(DataPattern::ColStripe.fill_byte(RowRole::Victim), 0x55);
    }

    #[test]
    fn inverse_patterns_invert_bytes() {
        for p in DataPattern::all() {
            let inv = p.inverse();
            assert_eq!(inv.inverse(), p);
            assert_eq!(
                p.fill_byte(RowRole::Victim),
                !inv.fill_byte(RowRole::Victim)
            );
            assert_eq!(
                p.fill_byte(RowRole::Aggressor),
                !inv.fill_byte(RowRole::Aggressor)
            );
        }
    }

    #[test]
    fn bit_at_follows_byte_pattern() {
        // Victim byte 0x55 = 0b0101_0101: even bit positions store 1.
        for col in 0..32 {
            let expected = col % 2 == 0;
            assert_eq!(
                DataPattern::Checkerboard.bit_at(RowRole::Victim, col),
                expected
            );
        }
        // RowStripe victim is all zeros.
        assert!(!DataPattern::RowStripe.bit_at(RowRole::Victim, 17));
        assert!(DataPattern::RowStripeI.bit_at(RowRole::Victim, 17));
    }

    #[test]
    fn fill_row_repeats_byte() {
        let buf = fill_row(DataPattern::Checkerboard, RowRole::Aggressor, 16);
        assert_eq!(buf.len(), 16);
        assert!(buf.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn mechanism_factors_encode_paper_ordering() {
        // RowStripe is the best hammer pattern but the worst press pattern.
        assert!(DataPattern::RowStripe.hammer_factor() > DataPattern::Checkerboard.hammer_factor());
        assert!(DataPattern::RowStripe.press_factor() < DataPattern::Checkerboard.press_factor());
        // Inverse patterns have identical coupling factors.
        for p in DataPattern::all() {
            assert_eq!(p.hammer_factor(), p.inverse().hammer_factor());
            assert_eq!(p.press_factor(), p.inverse().press_factor());
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = DataPattern::all().iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
        assert_eq!(format!("{}", DataPattern::Checkerboard), "CB");
    }
}
