//! The behavioural read-disturbance fault model.
//!
//! This module is the heart of the substitution described in `DESIGN.md`: it
//! stands in for the 164 real DDR4 chips of the paper. Every per-cell fault
//! parameter is derived lazily and deterministically from the module seed, so
//! the model needs no per-cell storage and every experiment is reproducible.
//!
//! Two separate mechanisms disturb a victim cell when a physically adjacent
//! aggressor row is activated:
//!
//! * **RowHammer (charge injection)** — each activation injects charge into
//!   victim cells that are currently *discharged*, pushing them toward a
//!   0→1 flip (for true cells). The per-activation damage grows mildly with
//!   the aggressor's off time (trap recombination, Obsv. 16) and with small
//!   increases of the on time, and is amplified when the victim sits between
//!   two active aggressors (double-sided).
//! * **RowPress (charge drain)** — keeping the aggressor open for `tAggON`
//!   drains charge from victim cells that are currently *charged*, pushing
//!   them toward a 1→0 flip. The damage is proportional to the on time in
//!   excess of tRAS, is partially recovered while the aggressor is closed, and
//!   accelerates strongly with temperature (Obsv. 9).
//!
//! Cells additionally leak charge over time (retention failures). The three
//! mechanisms draw their per-cell parameters from independent hash streams,
//! which reproduces the paper's finding that the three vulnerable-cell
//! populations barely overlap (Obsv. 7).

use crate::address::{BankId, CellAddr, ColumnId, RowId};
use crate::math::{hash_prefix, hash_words, to_unit_open, HashPrefix, LogNormal};
use crate::profile::DieProfile;
use crate::time::Time;
use crate::timing::TimingParams;
use crate::Geometry;
use serde::{Deserialize, Serialize};

/// Salts used to derive independent hash streams per mechanism.
mod salt {
    pub const HAMMER_ROW: u64 = 0x01;
    pub const PRESS_ROW: u64 = 0x02;
    pub const HAMMER_CELL: u64 = 0x03;
    pub const PRESS_CELL: u64 = 0x04;
    pub const RETENTION_CELL: u64 = 0x05;
    pub const POLARITY: u64 = 0x06;
    pub const HAMMER_ANCHOR: u64 = 0x07;
    pub const PRESS_ANCHOR: u64 = 0x08;
}

/// Tunable physics constants of the fault model. The defaults reproduce the
/// paper's qualitative results; the ablation benches flip individual knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModelConfig {
    /// Gain of the hammer-damage boost with increasing aggressor on time.
    pub hammer_on_gain: f64,
    /// Time constant (ns) of the on-time boost saturation.
    pub hammer_on_tau_ns: f64,
    /// Gain of the hammer-damage boost with increasing aggressor off time
    /// (trap-recombination effect reported by prior device-level studies).
    pub hammer_off_gain: f64,
    /// Time constant (ns) of the off-time boost saturation.
    pub hammer_off_tau_ns: f64,
    /// Fraction of the aggressor off time that counteracts accumulated press
    /// exposure (victim charge recovery while the aggressor is closed).
    pub recovery_rho: f64,
    /// On-time (ns, beyond tRAS) that a press must exceed before charge drain
    /// becomes effective. Reproduces the flat region of the ACmin curves below
    /// roughly 1 us (Fig. 6) and the small-slack ONOFF behaviour (Obsv. 16).
    pub press_on_offset_ns: f64,
    /// If true, press-vulnerable cells are drawn from the same hash stream as
    /// hammer-vulnerable cells (ablation: forces high overlap, contradicting
    /// Obsv. 7; defaults to false).
    pub correlate_hammer_press: bool,
    /// Disturbance decay versus physical distance (index 0 = distance 1).
    pub distance_decay: [f64; 3],
}

impl Default for FaultModelConfig {
    fn default() -> Self {
        FaultModelConfig {
            hammer_on_gain: 0.55,
            hammer_on_tau_ns: 400.0,
            hammer_off_gain: 1.0,
            hammer_off_tau_ns: 600.0,
            recovery_rho: 0.15,
            press_on_offset_ns: 500.0,
            correlate_hammer_press: false,
            distance_decay: [1.0, 0.08, 0.015],
        }
    }
}

/// The per-module fault model: die calibration + geometry + seed.
#[derive(Debug, Clone)]
pub struct FaultModel {
    profile: DieProfile,
    geometry: Geometry,
    timing: TimingParams,
    config: FaultModelConfig,
    seed: u64,
    /// Row-level RowHammer ACmin distribution (reference conditions).
    hammer_row: LogNormal,
    /// Row-level press flip-time distribution, in milliseconds at 50 °C.
    press_row: Option<LogNormal>,
    /// Exponential scale of the per-cell hammer-resistance multiplier.
    hammer_cell_sigma: f64,
    /// Exponential scale of the per-cell press-time multiplier.
    press_cell_sigma: f64,
    /// Per-cell retention-time distribution (seconds at 80 °C).
    retention: LogNormal,
    /// Normalization so the reference RowHammer pattern contributes exactly
    /// one hammer unit per activation.
    hammer_ref_boost: f64,
}

impl FaultModel {
    /// Builds a fault model for one module.
    ///
    /// `tested_rows_hint` is the approximate number of rows the
    /// characterization will test (3072 in the paper); it calibrates how deep
    /// into the row-level tail the observed minima sit.
    pub fn new(
        profile: DieProfile,
        geometry: Geometry,
        timing: TimingParams,
        seed: u64,
        config: FaultModelConfig,
        tested_rows_hint: u64,
    ) -> Self {
        let n_rows = tested_rows_hint.max(2);
        let hammer_row = LogNormal::from_mean_and_min(
            profile.hammer_acmin_mean,
            profile.hammer_acmin_min,
            n_rows,
        );
        let press_row = profile
            .press
            .map(|p| LogNormal::from_mean_and_min(p.t_mean_ms_50c, p.t_min_ms_50c, n_rows));

        // Per-cell spread: the number of cells in a row whose requirement is
        // within a factor X of the row minimum grows as
        // `bits_per_row * ln(X) / sigma`. The calibration counts in the die
        // profiles are expressed per *real* 65536-bit row, so sigma is derived
        // against that reference row size; scaled-down geometries then see the
        // same bit error *rate* with proportionally fewer absolute flips.
        const REFERENCE_ROW_BITS: f64 = 65536.0;
        // Hammer: `hammer_cells_at_max` cells flip at the largest activation
        // count reachable within the 60 ms budget (X = ac_max / acmin_mean).
        let ac_max = timing.max_activations_within(timing.t_ras, Time::from_ms(60.0)) as f64;
        let x_hammer = (ac_max / profile.hammer_acmin_mean).max(1.5);
        let hammer_cell_sigma =
            REFERENCE_ROW_BITS * x_hammer.ln() / profile.hammer_cells_at_max.max(0.5);
        // Press: `cells_at_4x` cells flip at 4x the row's weakest requirement.
        let press_cell_sigma = match profile.press {
            Some(p) => REFERENCE_ROW_BITS * 4.0f64.ln() / p.cells_at_4x.max(0.5),
            None => f64::INFINITY,
        };

        let retention = LogNormal {
            mu: profile.retention_median_s_80c.ln(),
            sigma: 1.5,
        };

        let mut model = FaultModel {
            profile,
            geometry,
            timing,
            config,
            seed,
            hammer_row,
            press_row,
            hammer_cell_sigma,
            press_cell_sigma,
            retention,
            hammer_ref_boost: 1.0,
        };
        model.hammer_ref_boost = model.raw_hammer_boost(timing.t_ras, timing.t_rp);
        model
    }

    /// Convenience constructor with the default physics configuration and the
    /// paper's 3072-row testing footprint.
    pub fn with_defaults(profile: DieProfile, geometry: Geometry, seed: u64) -> Self {
        Self::new(
            profile,
            geometry,
            TimingParams::ddr4(),
            seed,
            FaultModelConfig::default(),
            3072,
        )
    }

    /// The die profile this model was built from.
    pub fn profile(&self) -> &DieProfile {
        &self.profile
    }

    /// The geometry this model was built for.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The timing parameters of the modeled device.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The physics configuration.
    pub fn config(&self) -> &FaultModelConfig {
        &self.config
    }

    fn unit(&self, words: &[u64]) -> f64 {
        to_unit_open(hash_words(words))
    }

    // ------------------------------------------------------------------
    // Row-level base parameters
    // ------------------------------------------------------------------

    /// The row's RowHammer ACmin under reference conditions (single-sided
    /// pattern, tAggON = tRAS, checkerboard data, 50 °C).
    pub fn row_hammer_acmin_base(&self, bank: BankId, row: RowId) -> f64 {
        let u = self.unit(&[
            self.seed,
            salt::HAMMER_ROW,
            u64::from(bank.0),
            u64::from(row.0),
        ]);
        self.hammer_row.sample_from_uniform(u).max(1.0)
    }

    /// The row's weakest-cell press requirement: the total effective aggressor
    /// on time (in microseconds, at 50 °C, checkerboard data) that flips the
    /// most press-vulnerable cell of this row. `None` if the die is not
    /// press-vulnerable.
    pub fn row_press_time_us(&self, bank: BankId, row: RowId) -> Option<f64> {
        let dist = self.press_row.as_ref()?;
        let u = self.unit(&[
            self.seed,
            salt::PRESS_ROW,
            u64::from(bank.0),
            u64::from(row.0),
        ]);
        Some(dist.sample_from_uniform(u) * 1_000.0) // ms -> us
    }

    // ------------------------------------------------------------------
    // Cell-level parameters
    // ------------------------------------------------------------------

    fn anchor_columns(&self, anchor_salt: u64, bank: BankId, row: RowId) -> [u32; 2] {
        let bits = u64::from(self.geometry.bits_per_row);
        let h1 = hash_words(&[
            self.seed,
            anchor_salt,
            1,
            u64::from(bank.0),
            u64::from(row.0),
        ]);
        let h2 = hash_words(&[
            self.seed,
            anchor_salt,
            2,
            u64::from(bank.0),
            u64::from(row.0),
        ]);
        // One anchor at an even column and one at an odd column so that, for
        // any repeating-byte data pattern, at least one of the row's weakest
        // cells sits in the charge state the mechanism can attack.
        [((h1 % bits) & !1) as u32, ((h2 % bits) | 1) as u32]
    }

    /// The columns of the row's two weakest hammer cells (their resistance
    /// equals the row base exactly).
    pub fn hammer_anchor_columns(&self, bank: BankId, row: RowId) -> [u32; 2] {
        self.anchor_columns(salt::HAMMER_ANCHOR, bank, row)
    }

    /// The columns of the row's two weakest press cells.
    pub fn press_anchor_columns(&self, bank: BankId, row: RowId) -> [u32; 2] {
        let anchor_salt = if self.config.correlate_hammer_press {
            salt::HAMMER_ANCHOR
        } else {
            salt::PRESS_ANCHOR
        };
        self.anchor_columns(anchor_salt, bank, row)
    }

    /// The per-cell multiplier on top of the row's base hammer resistance.
    /// Always at least 1; the row's weakest (anchor) cells have multiplier 1.
    pub fn cell_hammer_spread(&self, addr: CellAddr) -> f64 {
        let anchors = self.hammer_anchor_columns(addr.bank, addr.row);
        self.cell_hammer_spread_with_anchors(addr, &anchors)
    }

    /// [`FaultModel::cell_hammer_spread`] with the row's anchor columns
    /// precomputed by the caller (hot-loop variant used by the device model).
    pub fn cell_hammer_spread_with_anchors(&self, addr: CellAddr, anchors: &[u32; 2]) -> f64 {
        if anchors.contains(&addr.column.0) {
            return 1.0;
        }
        let u = self.unit(&[
            self.seed,
            salt::HAMMER_CELL,
            u64::from(addr.bank.0),
            u64::from(addr.row.0),
            u64::from(addr.column.0),
        ]);
        (self.hammer_cell_sigma * -u.ln()).exp()
    }

    /// Hammer resistance of a cell: the number of reference activations of an
    /// adjacent aggressor needed to flip it (when it stores the discharged
    /// state).
    pub fn cell_hammer_resistance(&self, addr: CellAddr) -> f64 {
        self.row_hammer_acmin_base(addr.bank, addr.row) * self.cell_hammer_spread(addr)
    }

    /// The per-cell multiplier on top of the row's base press requirement.
    /// The row's weakest (anchor) cells have multiplier 1.
    pub fn cell_press_spread(&self, addr: CellAddr) -> f64 {
        let anchors = self.press_anchor_columns(addr.bank, addr.row);
        self.cell_press_spread_with_anchors(addr, &anchors)
    }

    /// [`FaultModel::cell_press_spread`] with the row's anchor columns
    /// precomputed by the caller (hot-loop variant used by the device model).
    pub fn cell_press_spread_with_anchors(&self, addr: CellAddr, anchors: &[u32; 2]) -> f64 {
        if self.press_cell_sigma.is_infinite() {
            return f64::INFINITY;
        }
        if anchors.contains(&addr.column.0) {
            return 1.0;
        }
        let cell_salt = if self.config.correlate_hammer_press {
            salt::HAMMER_CELL
        } else {
            salt::PRESS_CELL
        };
        let u = self.unit(&[
            self.seed,
            cell_salt,
            u64::from(addr.bank.0),
            u64::from(addr.row.0),
            u64::from(addr.column.0),
        ]);
        (self.press_cell_sigma * -u.ln()).min(300.0).exp()
    }

    /// Press requirement of a cell in microseconds of effective on-time
    /// exposure (when it stores the charged state). `None` if the die is not
    /// press-vulnerable.
    pub fn cell_press_time_us(&self, addr: CellAddr) -> Option<f64> {
        let base = self.row_press_time_us(addr.bank, addr.row)?;
        Some(base * self.cell_press_spread(addr))
    }

    /// Retention time of a cell in seconds at 80 °C.
    pub fn cell_retention_s_at_80c(&self, addr: CellAddr) -> f64 {
        let u = self.unit(&[
            self.seed,
            salt::RETENTION_CELL,
            u64::from(addr.bank.0),
            u64::from(addr.row.0),
            u64::from(addr.column.0),
        ]);
        self.retention.sample_from_uniform(u)
    }

    /// True if the cell is an anti-cell (charged state stores logical 0).
    pub fn cell_is_anti(&self, addr: CellAddr) -> bool {
        let u = self.unit(&[
            self.seed,
            salt::POLARITY,
            u64::from(addr.bank.0),
            u64::from(addr.row.0),
            u64::from(addr.column.0),
        ]);
        u < self.profile.anti_cell_fraction
    }

    /// Whether a cell storing logical bit `bit` is charged, given its polarity.
    pub fn cell_is_charged(&self, addr: CellAddr, bit: bool) -> bool {
        if self.cell_is_anti(addr) {
            !bit
        } else {
            bit
        }
    }

    // ------------------------------------------------------------------
    // Per-activation disturbance
    // ------------------------------------------------------------------

    fn raw_hammer_boost(&self, t_on: Time, t_off: Time) -> f64 {
        let c = &self.config;
        let on_excess_ns = t_on.saturating_sub(self.timing.t_ras).as_ns();
        let on_boost = 1.0 + c.hammer_on_gain * (1.0 - (-on_excess_ns / c.hammer_on_tau_ns).exp());
        let off_boost =
            1.0 + c.hammer_off_gain * (1.0 - (-t_off.as_ns() / c.hammer_off_tau_ns).exp());
        on_boost * off_boost
    }

    /// Hammer damage units contributed by one activation of an adjacent
    /// aggressor held open for `t_on` and then closed for `t_off`, at DRAM
    /// temperature `temp_c`, normalized so the reference RowHammer pattern
    /// contributes exactly 1.0.
    pub fn hammer_units_per_act(&self, t_on: Time, t_off: Time, temp_c: f64) -> f64 {
        let boost = self.raw_hammer_boost(t_on, t_off) / self.hammer_ref_boost;
        boost * self.theta_hammer(temp_c)
    }

    /// Press exposure (microseconds of effective on time) contributed by one
    /// activation of an adjacent aggressor held open for `t_on` and then
    /// closed for `t_off`, at DRAM temperature `temp_c`.
    pub fn press_exposure_us_per_act(&self, t_on: Time, t_off: Time, temp_c: f64) -> f64 {
        let on_us =
            t_on.saturating_sub(self.timing.t_ras).as_us() - self.config.press_on_offset_ns / 1e3;
        let recovered = self.config.recovery_rho * t_off.as_us();
        (on_us - recovered).max(0.0) * self.theta_press(temp_c)
    }

    /// Disturbance attenuation at physical distance `distance` (1-based) from
    /// the aggressor. Returns 0 beyond the modeled blast radius of 3 rows.
    pub fn distance_decay(&self, distance: u32) -> f64 {
        match distance {
            1 => self.config.distance_decay[0],
            2 => self.config.distance_decay[1],
            3 => self.config.distance_decay[2],
            _ => 0.0,
        }
    }

    /// Extra multiplier applied to accumulated hammer damage when the victim
    /// row has distance-1 aggressors on both sides (double-sided pattern).
    pub fn double_sided_hammer_bonus(&self) -> f64 {
        self.profile.double_sided_hammer_bonus
    }

    // ------------------------------------------------------------------
    // Temperature scaling
    // ------------------------------------------------------------------

    /// Press acceleration relative to 50 °C.
    pub fn theta_press(&self, temp_c: f64) -> f64 {
        match self.profile.press {
            Some(p) => p.theta_80c.powf((temp_c - 50.0) / 30.0),
            None => 1.0,
        }
    }

    /// Hammer acceleration relative to 50 °C (mild).
    pub fn theta_hammer(&self, temp_c: f64) -> f64 {
        self.profile.hammer_theta_80c.powf((temp_c - 50.0) / 30.0)
    }

    /// Retention-leakage acceleration relative to 80 °C (halving of retention
    /// time per 10 °C increase).
    pub fn theta_retention(&self, temp_c: f64) -> f64 {
        2f64.powf((temp_c - 80.0) / 10.0)
    }

    /// Retention time of a cell at the given temperature, in seconds.
    pub fn cell_retention_s(&self, addr: CellAddr, temp_c: f64) -> f64 {
        self.cell_retention_s_at_80c(addr) / self.theta_retention(temp_c)
    }

    // ------------------------------------------------------------------
    // Precomputed cell profiles (the trial-kernel hot path)
    // ------------------------------------------------------------------

    /// Builds the [`CellProfileTable`] of one row: every per-cell parameter
    /// the disturbance evaluation needs (polarity, hammer / press / retention
    /// flip thresholds with anchors and jitter folded in), derived once and
    /// reused across all probes of a search instead of being re-hashed per
    /// [`DramModule::check_row`](crate::DramModule::check_row) bit.
    ///
    /// `jitter` is the per-cell threshold-jitter factor, or `None` when
    /// jitter is disabled (every factor 1.0). The jitter-free build is pure
    /// integer hashing — per (polarity, column % 8) bucket it keeps the
    /// extreme hash, whose threshold it evaluates once at the end; the
    /// per-cell transcendental math runs lazily, only for cells whose bucket
    /// minimum a disturbance total actually reaches. With jitter the
    /// monotonicity that makes extreme-hash tracking exact is lost, so the
    /// table falls back to dense per-cell threshold vectors.
    ///
    /// Either way the thresholds are evaluated with exactly the same
    /// expressions as the per-cell functions above, so the table is
    /// bit-for-bit interchangeable with them.
    pub fn cell_profile_table(
        &self,
        bank: BankId,
        row: RowId,
        temp_c: f64,
        jitter: Option<&dyn Fn(CellAddr) -> f64>,
    ) -> CellProfileTable {
        let bits = self.geometry.bits_per_row;
        let press_cell_salt = if self.config.correlate_hammer_press {
            salt::HAMMER_CELL
        } else {
            salt::PRESS_CELL
        };
        let bank_row = [u64::from(bank.0), u64::from(row.0)];
        let prefix = |s: u64| hash_prefix(&[self.seed, s, bank_row[0], bank_row[1]]);
        let mut table = CellProfileTable {
            columns: bits,
            press_vulnerable: self.press_row.is_some(),
            anti: vec![0u64; (bits as usize).div_ceil(64)],
            word_min: Vec::new(),
            min_hammer: [[f64::INFINITY; 8]; 2],
            min_press: [[f64::INFINITY; 8]; 2],
            min_retention: [[f64::INFINITY; 8]; 2],
            hammer_base: self.row_hammer_acmin_base(bank, row),
            press_base: self.row_press_time_us(bank, row),
            hammer_anchors: self.hammer_anchor_columns(bank, row),
            press_anchors: self.press_anchor_columns(bank, row),
            hammer_cell_sigma: self.hammer_cell_sigma,
            press_cell_sigma: self.press_cell_sigma,
            hammer_prefix: prefix(salt::HAMMER_CELL),
            press_prefix: prefix(press_cell_salt),
            retention_prefix: prefix(salt::RETENTION_CELL),
            retention: self.retention,
            theta_retention: self.theta_retention(temp_c),
            dense: None,
        };
        let polarity_prefix = prefix(salt::POLARITY);
        match jitter {
            None => table.build_sparse(polarity_prefix, self.profile.anti_cell_fraction),
            Some(j) => table.build_dense(
                bank,
                row,
                polarity_prefix,
                self.profile.anti_cell_fraction,
                j,
            ),
        }
        table
    }

    /// A digest of everything a [`CellProfileTable`] build depends on besides
    /// the (bank, row, temperature, jitter) build inputs: the module seed, die
    /// calibration, geometry, timing and physics configuration, plus the
    /// derived row/cell distributions (which also capture the tested-rows
    /// hint). Two models with equal fingerprints build bit-identical tables
    /// from equal build inputs, which is what lets the cross-trial
    /// [`ProfileStore`](crate::ProfileStore) intern tables by value of this
    /// digest instead of holding a model reference.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = fxhash::FxHasher::default();
        self.seed.hash(&mut h);
        self.profile.hash(&mut h);
        self.geometry.hash(&mut h);
        // TimingParams and FaultModelConfig carry f64 fields and no Hash
        // impl: fold their raw bits in directly.
        let t = &self.timing;
        for time in [
            t.t_ras,
            t.t_rp,
            t.t_rcd,
            t.t_cl,
            t.t_ccd,
            t.t_refi,
            t.t_refw,
            t.t_rfc,
            t.command_granularity,
        ] {
            time.as_ps().hash(&mut h);
        }
        t.max_postponed_refreshes.hash(&mut h);
        let c = &self.config;
        for x in [
            c.hammer_on_gain,
            c.hammer_on_tau_ns,
            c.hammer_off_gain,
            c.hammer_off_tau_ns,
            c.recovery_rho,
            c.press_on_offset_ns,
            c.distance_decay[0],
            c.distance_decay[1],
            c.distance_decay[2],
        ] {
            x.to_bits().hash(&mut h);
        }
        c.correlate_hammer_press.hash(&mut h);
        for dist in [Some(self.hammer_row), self.press_row, Some(self.retention)] {
            match dist {
                Some(d) => {
                    d.mu.to_bits().hash(&mut h);
                    d.sigma.to_bits().hash(&mut h);
                }
                None => u64::MAX.hash(&mut h),
            }
        }
        for x in [
            self.hammer_cell_sigma,
            self.press_cell_sigma,
            self.hammer_ref_boost,
        ] {
            x.to_bits().hash(&mut h);
        }
        h.finish()
    }
}

/// Precomputed per-cell fault parameters of one row, built by
/// [`FaultModel::cell_profile_table`] and cached by the device model per
/// (bank, row) for the lifetime of a temperature / jitter setting.
///
/// The table stores, for every cell of the row, the exact flip thresholds the
/// scalar per-cell functions would compute — hammer resistance in hammer
/// units, press requirement in microseconds of effective on time, retention
/// time in seconds at the build temperature, each multiplied by the build-time
/// jitter factor — plus the cell polarity as a bitmask. On top of the
/// per-cell arrays it keeps the minimum threshold per (polarity, column % 8)
/// bucket, which turns the "does this row currently contain *any* bitflip?"
/// probe of the bisection searches into an O(8) comparison for rows holding
/// an unmodified repeating-byte data pattern.
///
/// For full scans the table additionally keeps one [`WordMinima`] summary per
/// 64-column word: the minimum threshold per mechanism over all cells of the
/// word, regardless of charge state. A disturbance total below a word's
/// minimum is below every cell threshold in the word, so the scan skips the
/// whole word with three comparisons; only words that *can* fire fall through
/// to the exact per-bucket / per-cell path, keeping flip output bit-identical.
///
/// The table derives [`PartialEq`] field-by-field, so two tables compare
/// equal exactly when every stored threshold, mask and summary is equal —
/// the property the `ProfileStore` interning tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct CellProfileTable {
    columns: u32,
    press_vulnerable: bool,
    /// Bit `c` set ⇔ column `c` is an anti-cell (charged state stores 0).
    anti: Vec<u64>,
    /// Per-64-column-word minimum thresholds (state-agnostic lower bounds;
    /// exact per-cell minima in dense builds, bucket-derived in sparse ones).
    word_min: Vec<WordMinima>,
    /// Minimum thresholds indexed by `[polarity][column % 8]`, with polarity
    /// 0 = true cells and 1 = anti-cells. Each entry is the exact threshold
    /// of a real cell of the bucket (or infinity for an empty bucket).
    min_hammer: [[f64; 8]; 2],
    min_press: [[f64; 8]; 2],
    min_retention: [[f64; 8]; 2],
    /// Row-level state for recomputing exact per-cell thresholds on demand.
    hammer_base: f64,
    press_base: Option<f64>,
    hammer_anchors: [u32; 2],
    press_anchors: [u32; 2],
    hammer_cell_sigma: f64,
    press_cell_sigma: f64,
    hammer_prefix: HashPrefix,
    press_prefix: HashPrefix,
    retention_prefix: HashPrefix,
    retention: LogNormal,
    theta_retention: f64,
    /// Dense per-cell thresholds, present only for jitter-enabled builds.
    dense: Option<DenseThresholds>,
}

/// Per-cell threshold vectors of a jitter-enabled build: jitter breaks the
/// hash-monotonicity the sparse representation relies on, so every cell's
/// factor is materialized.
#[derive(Debug, Clone, PartialEq)]
struct DenseThresholds {
    hammer: Vec<f64>,
    press: Vec<f64>,
    retention_s: Vec<f64>,
}

/// Minimum flip thresholds over one 64-column word of a row, regardless of
/// the cells' current charge state. A disturbance total below a field is
/// below every cell threshold of the corresponding mechanism in the word, so
/// a full scan can skip the word entirely; totals at or above a field fall
/// through to the exact per-cell evaluation, which decides identically to a
/// scan without the summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordMinima {
    /// Minimum hammer threshold over the word's cells.
    pub hammer: f64,
    /// Minimum press threshold (µs) over the word's cells.
    pub press_us: f64,
    /// Minimum retention time (s) over the word's cells.
    pub retention_s: f64,
}

impl WordMinima {
    const UNREACHABLE: WordMinima = WordMinima {
        hammer: f64::INFINITY,
        press_us: f64::INFINITY,
        retention_s: f64::INFINITY,
    };
}

/// The weakest-cell thresholds of a row under one repeating fill byte,
/// computed by [`CellProfileTable::min_thresholds_for_fill`]. A disturbance
/// total reaching a field flips at least one cell of the corresponding
/// mechanism; `f64::INFINITY` means no cell of the row is attackable by that
/// mechanism under the pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowMinima {
    /// Minimum hammer threshold over the row's *discharged* cells.
    pub hammer: f64,
    /// Minimum press threshold (µs) over the row's *charged* cells.
    pub press_us: f64,
    /// Minimum retention time (s) over the row's *charged* cells.
    pub retention_s: f64,
}

impl CellProfileTable {
    /// The jitter-free build: one pass of pure integer hashing. Per bucket it
    /// tracks the extreme hash — thresholds are monotone in the uniform
    /// deviate, so the bucket minimum is attained at the largest spread hash
    /// (hammer/press, spreads shrink as the deviate grows) or the smallest
    /// retention hash — and evaluates the transcendental threshold expression
    /// once per bucket at the end.
    fn build_sparse(&mut self, polarity_prefix: HashPrefix, anti_fraction: f64) {
        let mut hammer_hash: [[Option<u64>; 8]; 2] = [[None; 8]; 2];
        let mut press_hash: [[Option<u64>; 8]; 2] = [[None; 8]; 2];
        let mut retention_hash: [[Option<u64>; 8]; 2] = [[None; 8]; 2];
        let mut hammer_anchor_in = [[false; 8]; 2];
        let mut press_anchor_in = [[false; 8]; 2];
        // Which (polarity, residue) buckets each 64-column word contains,
        // as a 16-bit mask per word: the word-block summaries are derived
        // from the bucket minima of exactly these buckets.
        let mut present = vec![0u16; self.anti.len()];
        let track_press = self.press_vulnerable;
        for column in 0..self.columns {
            let word = u64::from(column);
            let anti = to_unit_open(polarity_prefix.with(word)) < anti_fraction;
            if anti {
                self.anti[(column / 64) as usize] |= 1u64 << (column % 64);
            }
            let polarity = usize::from(anti);
            let residue = (column % 8) as usize;
            present[(column / 64) as usize] |= 1u16 << (polarity * 8 + residue);
            if self.hammer_anchors.contains(&column) {
                hammer_anchor_in[polarity][residue] = true;
            } else {
                let h = self.hammer_prefix.with(word);
                let slot = &mut hammer_hash[polarity][residue];
                *slot = Some(slot.map_or(h, |prev| prev.max(h)));
            }
            if track_press {
                if self.press_anchors.contains(&column) {
                    press_anchor_in[polarity][residue] = true;
                } else {
                    let h = self.press_prefix.with(word);
                    let slot = &mut press_hash[polarity][residue];
                    *slot = Some(slot.map_or(h, |prev| prev.max(h)));
                }
            }
            let h = self.retention_prefix.with(word);
            let slot = &mut retention_hash[polarity][residue];
            *slot = Some(slot.map_or(h, |prev| prev.min(h)));
        }
        for polarity in 0..2 {
            for residue in 0..8 {
                let mut hammer = f64::INFINITY;
                if hammer_anchor_in[polarity][residue] {
                    hammer = self.hammer_base * 1.0;
                }
                if let Some(h) = hammer_hash[polarity][residue] {
                    hammer = hammer.min(self.hammer_base * self.hammer_spread_of_hash(h));
                }
                self.min_hammer[polarity][residue] = hammer;
                if track_press {
                    let base = self.press_base.unwrap_or(f64::INFINITY);
                    let mut press = f64::INFINITY;
                    if press_anchor_in[polarity][residue] {
                        press = base * 1.0;
                    }
                    if let Some(h) = press_hash[polarity][residue] {
                        press = press.min(base * self.press_spread_of_hash(h));
                    }
                    self.min_press[polarity][residue] = press;
                }
                if let Some(h) = retention_hash[polarity][residue] {
                    self.min_retention[polarity][residue] = self.retention_of_hash(h);
                }
            }
        }
        // Word summaries: the minimum bucket minimum over the buckets present
        // in each word. A bucket minimum lower-bounds every cell threshold of
        // the bucket anywhere in the row, so the summary is a conservative
        // (never too high) per-word lower bound — skipping on it is safe.
        self.word_min = present
            .iter()
            .map(|&mask| {
                let mut wm = WordMinima::UNREACHABLE;
                let mut bits = mask;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let (polarity, residue) = (b / 8, b % 8);
                    wm.hammer = wm.hammer.min(self.min_hammer[polarity][residue]);
                    wm.press_us = wm.press_us.min(self.min_press[polarity][residue]);
                    wm.retention_s = wm.retention_s.min(self.min_retention[polarity][residue]);
                }
                wm
            })
            .collect();
    }

    /// The jitter-enabled build: every cell's thresholds are materialized
    /// (jitter factors are per-cell, so no extreme-hash shortcut applies)
    /// and the bucket minima taken over the dense vectors.
    fn build_dense(
        &mut self,
        bank: BankId,
        row: RowId,
        polarity_prefix: HashPrefix,
        anti_fraction: f64,
        jitter: &dyn Fn(CellAddr) -> f64,
    ) {
        let n = self.columns as usize;
        let mut dense = DenseThresholds {
            hammer: Vec::with_capacity(n),
            press: Vec::with_capacity(n),
            retention_s: Vec::with_capacity(n),
        };
        let press_base = self.press_base.unwrap_or(f64::INFINITY);
        self.word_min = vec![WordMinima::UNREACHABLE; self.anti.len()];
        for column in 0..self.columns {
            let word = u64::from(column);
            let addr = CellAddr {
                bank,
                row,
                column: ColumnId(column),
            };
            let j = jitter(addr);
            let anti = to_unit_open(polarity_prefix.with(word)) < anti_fraction;
            if anti {
                self.anti[(column / 64) as usize] |= 1u64 << (column % 64);
            }
            // The exact expressions of the scalar evaluation path: product
            // order matters for bit-identical outcomes.
            let hammer_spread = if self.hammer_anchors.contains(&column) {
                1.0
            } else {
                self.hammer_spread_of_hash(self.hammer_prefix.with(word))
            };
            let hammer = self.hammer_base * hammer_spread * j;
            let press_spread = if self.press_cell_sigma.is_infinite() {
                f64::INFINITY
            } else if self.press_anchors.contains(&column) {
                1.0
            } else {
                self.press_spread_of_hash(self.press_prefix.with(word))
            };
            let press = press_base * press_spread * j;
            let retention = self.retention_of_hash(self.retention_prefix.with(word)) * j;
            let polarity = usize::from(anti);
            let residue = (column % 8) as usize;
            let slot = &mut self.min_hammer[polarity][residue];
            *slot = slot.min(hammer);
            let slot = &mut self.min_press[polarity][residue];
            *slot = slot.min(press);
            let slot = &mut self.min_retention[polarity][residue];
            *slot = slot.min(retention);
            // Dense builds materialize every threshold anyway, so the word
            // summaries are the exact per-word minima, not bucket bounds.
            let wm = &mut self.word_min[(column / 64) as usize];
            wm.hammer = wm.hammer.min(hammer);
            wm.press_us = wm.press_us.min(press);
            wm.retention_s = wm.retention_s.min(retention);
            dense.hammer.push(hammer);
            dense.press.push(press);
            dense.retention_s.push(retention);
        }
        self.dense = Some(dense);
    }

    /// `cell_hammer_spread` of the cell whose address hashed to `h`.
    fn hammer_spread_of_hash(&self, h: u64) -> f64 {
        (self.hammer_cell_sigma * -to_unit_open(h).ln()).exp()
    }

    /// `cell_press_spread` of the cell whose address hashed to `h`.
    fn press_spread_of_hash(&self, h: u64) -> f64 {
        (self.press_cell_sigma * -to_unit_open(h).ln())
            .min(300.0)
            .exp()
    }

    /// `cell_retention_s` (at the build temperature) of the cell whose
    /// address hashed to `h`.
    fn retention_of_hash(&self, h: u64) -> f64 {
        self.retention.sample_from_uniform(to_unit_open(h)) / self.theta_retention
    }

    /// Number of columns (cells) covered by the table.
    pub fn columns(&self) -> u32 {
        self.columns
    }

    /// True if the die this table was built for is press-vulnerable.
    pub fn press_vulnerable(&self) -> bool {
        self.press_vulnerable
    }

    /// True if the cell at `column` is an anti-cell (charged state stores 0).
    pub fn is_anti(&self, column: u32) -> bool {
        self.anti[(column / 64) as usize] >> (column % 64) & 1 == 1
    }

    /// Whether the cell at `column` is charged when storing logical `bit`.
    pub fn is_charged(&self, column: u32, bit: bool) -> bool {
        self.is_anti(column) != bit
    }

    /// Hammer threshold of the cell: accumulated hammer units at or above
    /// this flip it (when discharged). Includes the build-time jitter factor.
    pub fn hammer_threshold(&self, column: u32) -> f64 {
        if let Some(dense) = &self.dense {
            return dense.hammer[column as usize];
        }
        let spread = if self.hammer_anchors.contains(&column) {
            1.0
        } else {
            self.hammer_spread_of_hash(self.hammer_prefix.with(u64::from(column)))
        };
        self.hammer_base * spread
    }

    /// Press threshold of the cell in microseconds of effective on time
    /// (infinite for press-invulnerable dies). Includes the jitter factor.
    pub fn press_threshold(&self, column: u32) -> f64 {
        if let Some(dense) = &self.dense {
            return dense.press[column as usize];
        }
        let spread = if self.press_cell_sigma.is_infinite() {
            f64::INFINITY
        } else if self.press_anchors.contains(&column) {
            1.0
        } else {
            self.press_spread_of_hash(self.press_prefix.with(u64::from(column)))
        };
        self.press_base.unwrap_or(f64::INFINITY) * spread
    }

    /// Retention time of the cell in seconds at the build temperature.
    /// Includes the jitter factor.
    pub fn retention_threshold_s(&self, column: u32) -> f64 {
        if let Some(dense) = &self.dense {
            return dense.retention_s[column as usize];
        }
        self.retention_of_hash(self.retention_prefix.with(u64::from(column)))
    }

    /// The bucket-minimum hammer threshold of the cell's (polarity, residue)
    /// bucket: a scan can skip the exact per-cell evaluation whenever the
    /// accumulated total does not even reach the bucket minimum.
    #[inline]
    pub(crate) fn min_hammer_bucket(&self, anti: bool, column: u32) -> f64 {
        self.min_hammer[usize::from(anti)][(column % 8) as usize]
    }

    /// The bucket-minimum press threshold (see `min_hammer_bucket`).
    #[inline]
    pub(crate) fn min_press_bucket(&self, anti: bool, column: u32) -> f64 {
        self.min_press[usize::from(anti)][(column % 8) as usize]
    }

    /// The bucket-minimum retention time (see `min_hammer_bucket`).
    #[inline]
    pub(crate) fn min_retention_bucket(&self, anti: bool, column: u32) -> f64 {
        self.min_retention[usize::from(anti)][(column % 8) as usize]
    }

    /// The number of 64-column words the row spans (the last word may be
    /// partial for row sizes that are not a multiple of 64).
    pub fn word_count(&self) -> usize {
        self.word_min.len()
    }

    /// The [`WordMinima`] summary of word `word` (columns `64*word ..
    /// 64*word + 64`): state-agnostic minimum thresholds over the word's
    /// cells. Full scans test a disturbance total against these three floats
    /// and skip the word's 64 cells outright when no mechanism can fire.
    #[inline]
    pub fn word_minima(&self, word: usize) -> WordMinima {
        self.word_min[word]
    }

    /// The minimum flip thresholds of the row when every byte of the row
    /// stores `fill`: the fast path of the any-bitflip probes. Exact, not
    /// approximate — each returned minimum is the threshold of a real cell
    /// of the row (or infinity if no cell qualifies), so comparing a
    /// disturbance total against it decides existence identically to the
    /// per-cell scan.
    pub fn min_thresholds_for_fill(&self, fill: u8) -> RowMinima {
        let mut minima = RowMinima {
            hammer: f64::INFINITY,
            press_us: f64::INFINITY,
            retention_s: f64::INFINITY,
        };
        for residue in 0..8usize {
            let bit = (fill >> residue) & 1 == 1;
            // Charged cells: true cells storing 1, anti-cells storing 0.
            let charged = usize::from(!bit);
            let discharged = usize::from(bit);
            minima.press_us = minima.press_us.min(self.min_press[charged][residue]);
            minima.retention_s = minima.retention_s.min(self.min_retention[charged][residue]);
            minima.hammer = minima.hammer.min(self.min_hammer[discharged][residue]);
        }
        minima
    }
}

/// Convenience: builds a cell address.
pub fn cell(bank: BankId, row: RowId, column: u32) -> CellAddr {
    CellAddr {
        bank,
        row,
        column: ColumnId(column),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{find_die, DieDensity, Manufacturer};

    fn model() -> FaultModel {
        let die = find_die(Manufacturer::S, DieDensity::Gb8, 'B').unwrap();
        FaultModel::with_defaults(die, Geometry::scaled_down(), 0x5151)
    }

    #[test]
    fn determinism_per_cell() {
        let m = model();
        let a = cell(BankId(1), RowId(10), 7);
        assert_eq!(m.cell_hammer_resistance(a), m.cell_hammer_resistance(a));
        assert_eq!(m.cell_press_time_us(a), m.cell_press_time_us(a));
        assert_eq!(m.cell_is_anti(a), m.cell_is_anti(a));
        // The row's anchor (weakest) cell is strictly weaker than the bulk of
        // the row, and anchors differ between the hammer and press mechanisms.
        let bank = BankId(1);
        let row = RowId(10);
        let hammer_anchor = m.hammer_anchor_columns(bank, row)[0];
        let press_anchors = m.press_anchor_columns(bank, row);
        let weak = cell(bank, row, hammer_anchor);
        let strong_col = (0..m.geometry().bits_per_row)
            .find(|c| !m.hammer_anchor_columns(bank, row).contains(c))
            .unwrap();
        let strong = cell(bank, row, strong_col);
        assert!(m.cell_hammer_resistance(weak) < m.cell_hammer_resistance(strong));
        assert_ne!(
            [hammer_anchor, m.hammer_anchor_columns(bank, row)[1]],
            press_anchors
        );
    }

    #[test]
    fn row_hammer_base_matches_calibration_scale() {
        let m = model();
        // Mean over a sample of rows should be within a factor ~1.5 of the
        // calibrated 270K mean for the Samsung 8Gb B-die.
        let mean: f64 = (0..512)
            .map(|r| m.row_hammer_acmin_base(BankId(1), RowId(r)))
            .sum::<f64>()
            / 512.0;
        assert!(
            mean > 270_000.0 * 0.6 && mean < 270_000.0 * 1.6,
            "mean = {mean}"
        );
        // The minimum over ~3072 rows should be far below the mean.
        let min = (0..3072)
            .map(|r| m.row_hammer_acmin_base(BankId(1), RowId(r)))
            .fold(f64::INFINITY, f64::min);
        assert!(min < 120_000.0, "min = {min}");
    }

    #[test]
    fn row_press_time_matches_calibration_scale() {
        let m = model();
        let times: Vec<f64> = (0..1024)
            .filter_map(|r| m.row_press_time_us(BankId(1), RowId(r)))
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        // Calibrated to 48 ms = 48000 us.
        assert!(mean > 30_000.0 && mean < 75_000.0, "mean = {mean}");
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min < 30_000.0, "min = {min}");
    }

    #[test]
    fn press_invulnerable_die_has_no_press_times() {
        let die = find_die(Manufacturer::M, DieDensity::Gb8, 'B').unwrap();
        let m = FaultModel::with_defaults(die, Geometry::tiny(), 7);
        assert!(m.row_press_time_us(BankId(0), RowId(3)).is_none());
        assert!(m.cell_press_time_us(cell(BankId(0), RowId(3), 1)).is_none());
        assert_eq!(m.theta_press(80.0), 1.0);
    }

    #[test]
    fn weakest_cell_of_row_is_close_to_row_base() {
        let m = model();
        let bank = BankId(1);
        let row = RowId(99);
        let base = m.row_press_time_us(bank, row).unwrap();
        let min_cell = (0..m.geometry().bits_per_row)
            .filter_map(|c| m.cell_press_time_us(cell(bank, row, c)))
            .fold(f64::INFINITY, f64::min);
        assert!(min_cell >= base);
        assert!(
            min_cell < base * 2.0,
            "min_cell = {min_cell}, base = {base}"
        );
    }

    #[test]
    fn hammer_units_reference_is_one() {
        let m = model();
        let t = m.timing();
        let units = m.hammer_units_per_act(t.t_ras, t.t_rp, 50.0);
        assert!((units - 1.0).abs() < 1e-12);
        // Longer on or off time increases hammer damage per activation.
        assert!(m.hammer_units_per_act(Time::from_ns(186.0), t.t_rp, 50.0) > 1.0);
        assert!(m.hammer_units_per_act(t.t_ras, Time::from_ns(600.0), 50.0) > 1.0);
        // The on-time boost saturates.
        let b1 = m.hammer_units_per_act(Time::from_us(10.0), t.t_rp, 50.0);
        let b2 = m.hammer_units_per_act(Time::from_ms(10.0), t.t_rp, 50.0);
        assert!((b1 - b2).abs() / b1 < 0.01);
    }

    #[test]
    fn press_exposure_grows_linearly_with_on_time() {
        let m = model();
        let t = m.timing();
        assert_eq!(m.press_exposure_us_per_act(t.t_ras, t.t_rp, 50.0), 0.0);
        let e1 = m.press_exposure_us_per_act(Time::from_us(7.8), t.t_rp, 50.0);
        let e2 = m.press_exposure_us_per_act(Time::from_us(70.2), t.t_rp, 50.0);
        assert!(e1 > 0.0);
        // Linear in the on time beyond the tRAS + engagement offset.
        assert!((e2 / e1 - (70.2 - 0.536) / (7.8 - 0.536)).abs() < 0.05);
        // Recovery: a long off time reduces the effective exposure.
        let with_off = m.press_exposure_us_per_act(Time::from_us(7.8), Time::from_us(7.8), 50.0);
        assert!(with_off < e1);
    }

    #[test]
    fn temperature_scaling_directions() {
        let m = model();
        assert!(m.theta_press(80.0) > m.theta_press(50.0));
        assert!((m.theta_press(50.0) - 1.0).abs() < 1e-12);
        assert!((m.theta_press(80.0) - 1.85).abs() < 1e-9);
        assert!(m.theta_press(65.0) > 1.0 && m.theta_press(65.0) < 1.85);
        assert!(m.theta_hammer(80.0) >= 1.0 && m.theta_hammer(80.0) < 1.2);
        assert!(m.theta_retention(70.0) < 1.0);
        let a = cell(BankId(0), RowId(0), 0);
        assert!(m.cell_retention_s(a, 50.0) > m.cell_retention_s(a, 80.0));
    }

    #[test]
    fn distance_decay_drops_off() {
        let m = model();
        assert_eq!(m.distance_decay(1), 1.0);
        assert!(m.distance_decay(2) < 0.2);
        assert!(m.distance_decay(3) < m.distance_decay(2));
        assert_eq!(m.distance_decay(4), 0.0);
        assert_eq!(m.distance_decay(0), 0.0);
    }

    #[test]
    fn anti_cell_fraction_respected() {
        let die = find_die(Manufacturer::M, DieDensity::Gb16, 'E').unwrap();
        let m = FaultModel::with_defaults(die, Geometry::tiny(), 11);
        let n = 4000;
        let anti = (0..n)
            .filter(|&c| m.cell_is_anti(cell(BankId(0), RowId(1), c)))
            .count();
        let frac = anti as f64 / f64::from(n);
        assert!((frac - 0.85).abs() < 0.05, "frac = {frac}");
        // Charged state follows polarity.
        let a = cell(BankId(0), RowId(1), 0);
        if m.cell_is_anti(a) {
            assert!(m.cell_is_charged(a, false));
            assert!(!m.cell_is_charged(a, true));
        } else {
            assert!(m.cell_is_charged(a, true));
        }
    }

    #[test]
    fn overlap_between_hammer_and_press_weak_cells_is_small() {
        // The cells closest to flipping under each mechanism should be almost
        // entirely distinct (Obsv. 7).
        let m = model();
        let bank = BankId(1);
        let mut overlap = 0usize;
        let mut rows_checked = 0usize;
        for r in 0..64u32 {
            let row = RowId(r);
            let mut hammer_min = (f64::INFINITY, 0u32);
            let mut press_min = (f64::INFINITY, 0u32);
            for c in 0..m.geometry().bits_per_row {
                let a = cell(bank, row, c);
                let h = m.cell_hammer_resistance(a);
                if h < hammer_min.0 {
                    hammer_min = (h, c);
                }
                if let Some(p) = m.cell_press_time_us(a) {
                    if p < press_min.0 {
                        press_min = (p, c);
                    }
                }
            }
            rows_checked += 1;
            if hammer_min.1 == press_min.1 {
                overlap += 1;
            }
        }
        assert!(rows_checked == 64);
        assert!(
            overlap <= 1,
            "weakest hammer and press cells coincide in {overlap}/64 rows"
        );
    }

    #[test]
    fn profile_table_minima_are_exact_bucket_minima() {
        let m = model();
        let bank = BankId(1);
        let row = RowId(33);
        for (label, table) in [
            ("sparse", m.cell_profile_table(bank, row, 65.0, None)),
            (
                "dense",
                m.cell_profile_table(
                    bank,
                    row,
                    65.0,
                    Some(&|a: CellAddr| 1.0 + f64::from(a.column.0 % 7) * 0.01),
                ),
            ),
        ] {
            for fill in [0x00u8, 0x55, 0xAA, 0xFF, 0x3C] {
                let minima = table.min_thresholds_for_fill(fill);
                let mut hammer = f64::INFINITY;
                let mut press = f64::INFINITY;
                let mut retention = f64::INFINITY;
                for c in 0..table.columns() {
                    let bit = (fill >> (c % 8)) & 1 == 1;
                    if table.is_charged(c, bit) {
                        press = press.min(table.press_threshold(c));
                        retention = retention.min(table.retention_threshold_s(c));
                    } else {
                        hammer = hammer.min(table.hammer_threshold(c));
                    }
                }
                assert_eq!(minima.hammer, hammer, "{label} hammer, fill {fill:#x}");
                assert_eq!(minima.press_us, press, "{label} press, fill {fill:#x}");
                assert_eq!(
                    minima.retention_s, retention,
                    "{label} retention, fill {fill:#x}"
                );
            }
        }
    }

    #[test]
    fn word_minima_lower_bound_every_cell_threshold() {
        let m = model();
        let bank = BankId(1);
        let row = RowId(12);
        for (label, table) in [
            ("sparse", m.cell_profile_table(bank, row, 65.0, None)),
            (
                "dense",
                m.cell_profile_table(
                    bank,
                    row,
                    65.0,
                    Some(&|a: CellAddr| 1.0 + f64::from(a.column.0 % 5) * 0.02),
                ),
            ),
        ] {
            assert_eq!(table.word_count(), (table.columns() as usize).div_ceil(64));
            for word in 0..table.word_count() {
                let wm = table.word_minima(word);
                let first = (word * 64) as u32;
                let last = table.columns().min(first + 64);
                let mut hammer = f64::INFINITY;
                let mut press = f64::INFINITY;
                let mut retention = f64::INFINITY;
                for c in first..last {
                    hammer = hammer.min(table.hammer_threshold(c));
                    press = press.min(table.press_threshold(c));
                    retention = retention.min(table.retention_threshold_s(c));
                }
                // Safe to skip on: never above the true word minimum.
                assert!(wm.hammer <= hammer, "{label} hammer word {word}");
                assert!(wm.press_us <= press, "{label} press word {word}");
                assert!(wm.retention_s <= retention, "{label} retention word {word}");
                // The dense build materializes every threshold, so its
                // summaries are the exact minima, not just bounds.
                if label == "dense" {
                    assert_eq!(wm.hammer, hammer, "dense hammer word {word}");
                    assert_eq!(wm.press_us, press, "dense press word {word}");
                    assert_eq!(wm.retention_s, retention, "dense retention word {word}");
                }
            }
        }
    }

    #[test]
    fn fingerprint_separates_build_relevant_inputs() {
        let die = find_die(Manufacturer::S, DieDensity::Gb8, 'B').unwrap();
        let base = FaultModel::with_defaults(die, Geometry::tiny(), 1);
        assert_eq!(base.fingerprint(), base.fingerprint());
        let other_seed = FaultModel::with_defaults(die, Geometry::tiny(), 2);
        assert_ne!(base.fingerprint(), other_seed.fingerprint());
        let other_geometry = FaultModel::with_defaults(die, Geometry::scaled_down(), 1);
        assert_ne!(base.fingerprint(), other_geometry.fingerprint());
        let other_die = find_die(Manufacturer::M, DieDensity::Gb8, 'B').unwrap();
        let other_profile = FaultModel::with_defaults(other_die, Geometry::tiny(), 1);
        assert_ne!(base.fingerprint(), other_profile.fingerprint());
        let other_config = FaultModel::new(
            die,
            Geometry::tiny(),
            TimingParams::ddr4(),
            1,
            FaultModelConfig {
                recovery_rho: 0.25,
                ..Default::default()
            },
            3072,
        );
        assert_ne!(base.fingerprint(), other_config.fingerprint());
        // The tested-rows hint shifts the derived row distributions, which
        // shift the tables — it must shift the fingerprint too.
        let other_hint = FaultModel::new(
            die,
            Geometry::tiny(),
            TimingParams::ddr4(),
            1,
            FaultModelConfig::default(),
            64,
        );
        assert_ne!(base.fingerprint(), other_hint.fingerprint());
    }

    #[test]
    fn profile_table_matches_scalar_functions_including_anchors() {
        let m = model();
        let bank = BankId(0);
        let row = RowId(7);
        let table = m.cell_profile_table(bank, row, 50.0, None);
        let base = m.row_hammer_acmin_base(bank, row);
        for c in 0..table.columns() {
            let a = cell(bank, row, c);
            assert_eq!(table.hammer_threshold(c), base * m.cell_hammer_spread(a));
            assert_eq!(
                table.press_threshold(c),
                m.cell_press_time_us(a).unwrap_or(f64::INFINITY)
            );
            assert_eq!(table.retention_threshold_s(c), m.cell_retention_s(a, 50.0));
            assert_eq!(table.is_anti(c), m.cell_is_anti(a));
        }
        // The anchors are the weakest cells and sit at threshold == base.
        for anchor in m.hammer_anchor_columns(bank, row) {
            assert_eq!(table.hammer_threshold(anchor), base);
        }
    }

    #[test]
    fn correlated_config_increases_overlap() {
        let die = find_die(Manufacturer::S, DieDensity::Gb8, 'B').unwrap();
        let cfg = FaultModelConfig {
            correlate_hammer_press: true,
            ..Default::default()
        };
        let m = FaultModel::new(die, Geometry::tiny(), TimingParams::ddr4(), 3, cfg, 3072);
        let bank = BankId(0);
        let mut coincide = 0;
        for r in 0..32u32 {
            let row = RowId(r);
            let hammer_min = (0..1024)
                .map(|c| (m.cell_hammer_resistance(cell(bank, row, c)), c))
                .fold(
                    (f64::INFINITY, 0),
                    |acc, x| if x.0 < acc.0 { x } else { acc },
                );
            let press_min = (0..1024)
                .map(|c| (m.cell_press_time_us(cell(bank, row, c)).unwrap(), c))
                .fold(
                    (f64::INFINITY, 0),
                    |acc, x| if x.0 < acc.0 { x } else { acc },
                );
            if hammer_min.1 == press_min.1 {
                coincide += 1;
            }
        }
        // With correlated draws the weakest cells coincide in every row.
        assert_eq!(coincide, 32);
    }
}
