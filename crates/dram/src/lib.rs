//! # rowpress-dram
//!
//! Behavioural DDR4 DRAM device model used by the RowPress (ISCA 2023)
//! reproduction. It stands in for the 164 real DDR4 chips characterized by the
//! paper: a [`DramModule`] exposes the same knobs the paper's experiments turn
//! (aggressor-row-on time, off time, activation count, temperature, access and
//! data pattern, die revision) and produces bitflips whose statistics are
//! calibrated to the paper's summary tables.
//!
//! The crate is organized as:
//!
//! * [`Time`], [`TimingParams`] — picosecond-resolution time and DDR4 timing
//!   parameters (tRAS, tRP, tREFI, tREFW, ...).
//! * [`Geometry`], [`BankId`], [`RowId`], [`CellAddr`], [`RowMapping`] —
//!   bank-local geometry and addressing.
//! * [`DramCommand`] — the DDR4 command vocabulary.
//! * [`DataPattern`] — the six data patterns of the paper's Table 2.
//! * [`Manufacturer`], [`DieProfile`], [`ModuleSpec`], [`module_inventory`] —
//!   the Table 1 chip catalog with per-die calibration constants.
//! * [`FaultModel`], [`FaultModelConfig`] — the per-cell read-disturb physics.
//! * [`DramModule`], [`Bitflip`], [`FlipMechanism`] — the stateful device
//!   under test.
//!
//! # Quick example
//!
//! ```
//! use rowpress_dram::{
//!     module_inventory, BankId, DataPattern, DramModule, Geometry, RowId, RowRole, Time,
//! };
//!
//! // Take a Samsung 8Gb B-die module from the paper's inventory.
//! let spec = module_inventory().remove(0);
//! let mut module = DramModule::new(&spec, Geometry::tiny());
//! let bank = BankId(1);
//!
//! // Initialize an aggressor row and its neighbour with the checkerboard pattern.
//! module.init_row_pattern(bank, RowId(30), DataPattern::Checkerboard, RowRole::Aggressor)?;
//! module.init_row_pattern(bank, RowId(31), DataPattern::Checkerboard, RowRole::Victim)?;
//!
//! // RowPress: keep the aggressor open for 30 ms, ten times.
//! module.activate_many(bank, RowId(30), Time::from_ms(30.0), Time::from_ns(15.0), 10)?;
//! assert!(!module.check_row(bank, RowId(31))?.is_empty());
//! # Ok::<(), rowpress_dram::DramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod command;
mod disturb;
mod error;
pub mod math;
mod module;
mod pattern;
mod profile;
mod store;
mod time;
mod timing;

pub use address::{BankId, CellAddr, ColumnId, Geometry, RowId, RowMapping};
pub use command::DramCommand;
pub use disturb::{cell, CellProfileTable, FaultModel, FaultModelConfig, RowMinima, WordMinima};
pub use error::{DramError, DramResult};
pub use module::{
    reset_scan_word_stats, scan_word_stats, Bitflip, DramModule, FlipMechanism, ScanWordStats,
};
pub use pattern::{fill_row, DataPattern, RowRole};
pub use profile::{
    die_catalog, find_die, module_inventory, representative_modules, DieDensity, DieProfile,
    Manufacturer, ModuleSpec, PressCalibration,
};
pub use store::ProfileStore;
pub use time::Time;
pub use timing::{representative_t_aggon, sweep_t_aggon, TimingParams};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramModule>();
        assert_send_sync::<ProfileStore>();
        assert_send_sync::<FaultModel>();
        assert_send_sync::<ModuleSpec>();
        assert_send_sync::<DramError>();
    }

    #[test]
    fn doc_example_compiles_and_runs() {
        let spec = module_inventory().remove(0);
        let mut module = DramModule::new(&spec, Geometry::tiny());
        let bank = BankId(1);
        module
            .init_row_pattern(
                bank,
                RowId(30),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        module
            .init_row_pattern(bank, RowId(31), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        module
            .activate_many(
                bank,
                RowId(30),
                Time::from_ms(30.0),
                Time::from_ns(15.0),
                10,
            )
            .unwrap();
        assert!(!module.check_row(bank, RowId(31)).unwrap().is_empty());
    }
}
