//! DDR4 timing parameters relevant to the RowPress study (paper §2.3).
//!
//! The paper's characterization hinges on four parameters: `tRAS` (minimum row
//! open time), `tRP` (precharge latency), `tREFI` (refresh interval) and
//! `tREFW` (refresh window). The memory-controller simulator additionally
//! needs CAS and activation-to-activation constraints.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// The set of DRAM timing parameters used by the device model, the testing
/// platform and the memory-controller simulator.
///
/// Values default to the DDR4 numbers used throughout the paper: a 36 ns
/// minimum aggressor-row-on time (covering the 32–35 ns range of
/// manufacturer-recommended tRAS values), tRP = 15 ns, tREFI = 7.8 µs and
/// tREFW = 64 ms, with a 1.5 ns command-bus granularity matching the DRAM
/// Bender infrastructure.
///
/// # Examples
///
/// ```
/// use rowpress_dram::TimingParams;
///
/// let t = TimingParams::ddr4();
/// assert_eq!(t.t_ras.as_ns(), 36.0);
/// assert_eq!(t.t_refi.as_us(), 7.8);
/// // A row may stay open for at most 9x tREFI when refreshes are postponed.
/// assert_eq!(t.max_t_aggon().as_us(), 70.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Minimum time between ACT and PRE to the same bank (row open time).
    pub t_ras: Time,
    /// Minimum time between PRE and the next ACT to the same bank.
    pub t_rp: Time,
    /// Activate-to-read/write delay.
    pub t_rcd: Time,
    /// Column access latency (read).
    pub t_cl: Time,
    /// Back-to-back column command spacing (burst transfer time).
    pub t_ccd: Time,
    /// Default interval between consecutive REF commands.
    pub t_refi: Time,
    /// Maximum window between two refreshes of the same row.
    pub t_refw: Time,
    /// Refresh cycle time (bank busy time while a REF executes).
    pub t_rfc: Time,
    /// Number of REF commands that the controller may postpone (8 in DDR4).
    pub max_postponed_refreshes: u32,
    /// Command bus granularity of the testing infrastructure (1.5 ns).
    pub command_granularity: Time,
}

impl TimingParams {
    /// Timing parameters for commodity DDR4 as used in the paper.
    pub fn ddr4() -> Self {
        TimingParams {
            t_ras: Time::from_ns(36.0),
            t_rp: Time::from_ns(15.0),
            t_rcd: Time::from_ns(15.0),
            t_cl: Time::from_ns(15.0),
            t_ccd: Time::from_ns(5.0),
            t_refi: Time::from_us(7.8),
            t_refw: Time::from_ms(64.0),
            t_rfc: Time::from_ns(350.0),
            max_postponed_refreshes: 8,
            command_granularity: Time::from_ns(1.5),
        }
    }

    /// Minimum activate-to-activate time to the same bank (tRC = tRAS + tRP).
    pub fn t_rc(&self) -> Time {
        self.t_ras + self.t_rp
    }

    /// The maximum allowed aggressor-row-on time when the memory controller
    /// postpones the maximum number of refreshes: `(1 + max_postponed) x tREFI`.
    ///
    /// For DDR4 this is 9 x 7.8 µs = 70.2 µs, the value the paper highlights
    /// as the JEDEC-permitted upper bound of tAggON.
    pub fn max_t_aggon(&self) -> Time {
        self.t_refi * u64::from(self.max_postponed_refreshes + 1)
    }

    /// Snaps a duration up to the next multiple of the command-bus
    /// granularity, mirroring the 1.5 ns resolution of the paper's testing
    /// infrastructure.
    pub fn quantize(&self, t: Time) -> Time {
        let g = self.command_granularity.as_ps();
        if g == 0 {
            return t;
        }
        let q = t.as_ps().div_ceil(g);
        Time::from_ps(q * g)
    }

    /// Returns the number of full activation cycles (tAggON + tRP) that fit in
    /// `budget`, i.e. the maximum activation count for a single-sided pattern
    /// without exceeding the experiment time limit.
    pub fn max_activations_within(&self, t_aggon: Time, budget: Time) -> u64 {
        let cycle = t_aggon.max(self.t_ras) + self.t_rp;
        if cycle.is_zero() {
            return 0;
        }
        budget.as_ps() / cycle.as_ps()
    }

    /// Validates internal consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint, e.g. a zero
    /// tRAS or a refresh window smaller than the refresh interval.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_ras.is_zero() {
            return Err("tRAS must be positive".into());
        }
        if self.t_rp.is_zero() {
            return Err("tRP must be positive".into());
        }
        if self.t_refi < self.t_ras {
            return Err("tREFI must be at least tRAS".into());
        }
        if self.t_refw < self.t_refi {
            return Err("tREFW must be at least tREFI".into());
        }
        if self.command_granularity.is_zero() {
            return Err("command granularity must be positive".into());
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr4()
    }
}

/// The representative tAggON values the paper reports throughout its figures:
/// 36 ns (= tRAS, conventional RowHammer), 7.8 µs (tREFI), 70.2 µs (9x tREFI)
/// and 30 ms (the extreme case where a single activation suffices).
pub fn representative_t_aggon() -> Vec<Time> {
    vec![
        Time::from_ns(36.0),
        Time::from_us(7.8),
        Time::from_us(70.2),
        Time::from_ms(30.0),
    ]
}

/// The full tAggON sweep used by the characterization figures (Fig. 6, 8, 10,
/// 12, 13, 14, 17, 18): a geometric progression from 36 ns to 30 ms with the
/// two JEDEC bounds (7.8 µs and 70.2 µs) always included.
pub fn sweep_t_aggon() -> Vec<Time> {
    let mut points = vec![
        Time::from_ns(36.0),
        Time::from_ns(66.0),
        Time::from_ns(96.0),
        Time::from_ns(186.0),
        Time::from_ns(336.0),
        Time::from_ns(636.0),
        Time::from_ns(1536.0),
        Time::from_us(3.9),
        Time::from_us(7.8),
        Time::from_us(15.0),
        Time::from_us(30.0),
        Time::from_us(70.2),
        Time::from_us(300.0),
        Time::from_ms(1.0),
        Time::from_ms(6.0),
        Time::from_ms(30.0),
    ];
    points.sort();
    points.dedup();
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_defaults_match_paper() {
        let t = TimingParams::ddr4();
        assert_eq!(t.t_ras.as_ns(), 36.0);
        assert_eq!(t.t_rp.as_ns(), 15.0);
        assert_eq!(t.t_refi.as_us(), 7.8);
        assert_eq!(t.t_refw.as_ms(), 64.0);
        assert_eq!(t.max_postponed_refreshes, 8);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn t_rc_is_sum_of_ras_and_rp() {
        let t = TimingParams::ddr4();
        assert_eq!(t.t_rc().as_ns(), 51.0);
    }

    #[test]
    fn max_t_aggon_is_nine_trefi() {
        let t = TimingParams::ddr4();
        assert!((t.max_t_aggon().as_us() - 70.2).abs() < 1e-9);
    }

    #[test]
    fn quantize_rounds_up_to_grid() {
        let t = TimingParams::ddr4();
        assert_eq!(t.quantize(Time::from_ns(36.0)), Time::from_ns(36.0));
        assert_eq!(t.quantize(Time::from_ns(36.1)), Time::from_ns(37.5));
        assert_eq!(t.quantize(Time::ZERO), Time::ZERO);
    }

    #[test]
    fn max_activations_within_budget() {
        let t = TimingParams::ddr4();
        // Conventional RowHammer: one activation per tRC = 51 ns.
        let n = t.max_activations_within(Time::from_ns(36.0), Time::from_ms(60.0));
        assert_eq!(n, (60e6 / 51.0) as u64);
        // 30 ms tAggON: only one full cycle fits in 60 ms.
        let n = t.max_activations_within(Time::from_ms(30.0), Time::from_ms(60.0));
        assert_eq!(n, 1);
        // tAggON below tRAS is clamped up to tRAS.
        let n_small = t.max_activations_within(Time::from_ns(1.0), Time::from_ms(60.0));
        assert_eq!(n_small, (60e6 / 51.0) as u64);
    }

    #[test]
    fn validate_rejects_inconsistent_params() {
        let mut t = TimingParams::ddr4();
        t.t_refw = Time::from_us(1.0);
        assert!(t.validate().is_err());
        let mut t = TimingParams::ddr4();
        t.t_ras = Time::ZERO;
        assert!(t.validate().is_err());
        let mut t = TimingParams::ddr4();
        t.command_granularity = Time::ZERO;
        assert!(t.validate().is_err());
    }

    #[test]
    fn sweep_contains_jedec_bounds_and_is_sorted() {
        let sweep = sweep_t_aggon();
        assert!(sweep.contains(&Time::from_ns(36.0)));
        assert!(sweep.contains(&Time::from_us(7.8)));
        assert!(sweep.contains(&Time::from_us(70.2)));
        assert!(sweep.contains(&Time::from_ms(30.0)));
        let mut sorted = sweep.clone();
        sorted.sort();
        assert_eq!(sweep, sorted);
        assert_eq!(representative_t_aggon().len(), 4);
    }
}
