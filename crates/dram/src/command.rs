//! DRAM command vocabulary (paper §2.2).
//!
//! The device model and the DRAM-Bender-style test platform communicate via
//! the standard DDR4 command set: ACT, PRE, RD, WR, REF (plus NOP for explicit
//! waits). Commands are timestamped in the test-program representation; the
//! types here only describe the command itself.

use crate::address::{BankId, ColumnId, RowId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single DRAM command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DramCommand {
    /// Open (activate) a row in a bank.
    Act {
        /// Target bank.
        bank: BankId,
        /// Row to open.
        row: RowId,
    },
    /// Close (precharge) the open row of a bank.
    Pre {
        /// Target bank.
        bank: BankId,
    },
    /// Read one cache block from the open row.
    Rd {
        /// Target bank.
        bank: BankId,
        /// Column (cache-block) address.
        column: ColumnId,
    },
    /// Write one cache block to the open row.
    Wr {
        /// Target bank.
        bank: BankId,
        /// Column (cache-block) address.
        column: ColumnId,
    },
    /// Refresh (all banks).
    Ref,
    /// Explicit idle; the test-program executor advances time without issuing
    /// a command.
    Nop,
}

impl DramCommand {
    /// Returns the bank targeted by this command, if any.
    pub fn bank(&self) -> Option<BankId> {
        match self {
            DramCommand::Act { bank, .. }
            | DramCommand::Pre { bank }
            | DramCommand::Rd { bank, .. }
            | DramCommand::Wr { bank, .. } => Some(*bank),
            DramCommand::Ref | DramCommand::Nop => None,
        }
    }

    /// Returns the row targeted by this command, if any.
    pub fn row(&self) -> Option<RowId> {
        match self {
            DramCommand::Act { row, .. } => Some(*row),
            _ => None,
        }
    }

    /// Returns true for commands that occupy the command bus (everything but
    /// `Nop`).
    pub fn is_bus_command(&self) -> bool {
        !matches!(self, DramCommand::Nop)
    }

    /// Short mnemonic used in traces and error messages.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            DramCommand::Act { .. } => "ACT",
            DramCommand::Pre { .. } => "PRE",
            DramCommand::Rd { .. } => "RD",
            DramCommand::Wr { .. } => "WR",
            DramCommand::Ref => "REF",
            DramCommand::Nop => "NOP",
        }
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramCommand::Act { bank, row } => write!(f, "ACT b{} {}", bank.0, row),
            DramCommand::Pre { bank } => write!(f, "PRE b{}", bank.0),
            DramCommand::Rd { bank, column } => write!(f, "RD b{} c{}", bank.0, column.0),
            DramCommand::Wr { bank, column } => write!(f, "WR b{} c{}", bank.0, column.0),
            DramCommand::Ref => write!(f, "REF"),
            DramCommand::Nop => write!(f, "NOP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_and_row_extraction() {
        let act = DramCommand::Act {
            bank: BankId(1),
            row: RowId(42),
        };
        assert_eq!(act.bank(), Some(BankId(1)));
        assert_eq!(act.row(), Some(RowId(42)));
        let pre = DramCommand::Pre { bank: BankId(3) };
        assert_eq!(pre.bank(), Some(BankId(3)));
        assert_eq!(pre.row(), None);
        assert_eq!(DramCommand::Ref.bank(), None);
        assert_eq!(DramCommand::Nop.bank(), None);
    }

    #[test]
    fn bus_occupancy() {
        assert!(DramCommand::Ref.is_bus_command());
        assert!(!DramCommand::Nop.is_bus_command());
        assert!(DramCommand::Act {
            bank: BankId(0),
            row: RowId(0)
        }
        .is_bus_command());
    }

    #[test]
    fn display_and_mnemonics() {
        let rd = DramCommand::Rd {
            bank: BankId(1),
            column: ColumnId(5),
        };
        assert_eq!(format!("{rd}"), "RD b1 c5");
        assert_eq!(rd.mnemonic(), "RD");
        assert_eq!(DramCommand::Ref.mnemonic(), "REF");
        assert_eq!(
            format!(
                "{}",
                DramCommand::Act {
                    bank: BankId(0),
                    row: RowId(9)
                }
            ),
            "ACT b0 R9"
        );
        assert_eq!(
            format!("{}", DramCommand::Pre { bank: BankId(2) }),
            "PRE b2"
        );
        assert_eq!(
            format!(
                "{}",
                DramCommand::Wr {
                    bank: BankId(0),
                    column: ColumnId(1)
                }
            ),
            "WR b0 c1"
        );
        assert_eq!(format!("{}", DramCommand::Nop), "NOP");
    }
}
