//! Error type of the DRAM device model.

use crate::address::{BankId, RowId};
use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::DramModule`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// The addressed bank does not exist in the configured geometry.
    InvalidBank {
        /// The offending bank address.
        bank: BankId,
        /// Number of banks in the geometry.
        banks: u16,
    },
    /// The addressed row does not exist in the configured geometry.
    InvalidRow {
        /// Bank that was addressed.
        bank: BankId,
        /// The offending row address.
        row: RowId,
        /// Number of rows per bank in the geometry.
        rows: u32,
    },
    /// A row was read or checked before being initialized with data.
    RowNotInitialized {
        /// Bank that was addressed.
        bank: BankId,
        /// Row that was accessed.
        row: RowId,
    },
    /// The supplied data buffer does not match the row size.
    DataSizeMismatch {
        /// Expected buffer size in bytes (one full row).
        expected: usize,
        /// Size of the buffer actually supplied.
        actual: usize,
    },
    /// The geometry or timing parameters are internally inconsistent.
    InvalidConfiguration(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::InvalidBank { bank, banks } => {
                write!(
                    f,
                    "bank {} out of range (module has {} banks)",
                    bank.0, banks
                )
            }
            DramError::InvalidRow { bank, row, rows } => {
                write!(
                    f,
                    "row {} out of range in bank {} (bank has {} rows)",
                    row.0, bank.0, rows
                )
            }
            DramError::RowNotInitialized { bank, row } => {
                write!(
                    f,
                    "row {} in bank {} was accessed before initialization",
                    row.0, bank.0
                )
            }
            DramError::DataSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "row data size mismatch: expected {expected} bytes, got {actual}"
                )
            }
            DramError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for DramError {}

/// Convenience alias for results returned by the device model.
pub type DramResult<T> = Result<T, DramError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = DramError::InvalidBank {
            bank: BankId(9),
            banks: 4,
        };
        assert!(format!("{e}").contains("bank 9"));
        let e = DramError::RowNotInitialized {
            bank: BankId(1),
            row: RowId(7),
        };
        assert!(format!("{e}").contains("row 7"));
        let e = DramError::DataSizeMismatch {
            expected: 128,
            actual: 64,
        };
        assert!(format!("{e}").contains("128"));
        let e = DramError::InvalidConfiguration("bad".into());
        assert!(format!("{e}").contains("bad"));
        let e = DramError::InvalidRow {
            bank: BankId(0),
            row: RowId(99),
            rows: 64,
        };
        assert!(format!("{e}").contains("99"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DramError>();
    }
}
