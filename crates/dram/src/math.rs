//! Small numerical helpers used by the fault model: deterministic hashing,
//! standard-normal quantile/CDF, and lognormal parameter fitting.
//!
//! The fault model derives every per-cell parameter lazily from a hash of the
//! cell address, so multi-gigabit devices need no per-cell storage and every
//! experiment is exactly reproducible from the module seed.

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash step.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes an arbitrary sequence of 64-bit words into one well-mixed word.
#[inline]
pub fn hash_words(words: &[u64]) -> u64 {
    let mut acc = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &w in words {
        acc = splitmix64(acc ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    splitmix64(acc)
}

/// The accumulator state of [`hash_words`] after folding a word prefix.
///
/// Hot loops that hash many words sharing a common prefix (the fault model
/// hashes `[seed, salt, bank, row, column]` for every cell of a row) fold the
/// prefix once and finish per suffix word: [`HashPrefix::with`] produces
/// exactly the value `hash_words` would for the full sequence, at two
/// SplitMix64 rounds per call instead of re-folding the whole slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPrefix(u64);

/// Folds `words` into a reusable [`HashPrefix`].
#[inline]
pub fn hash_prefix(words: &[u64]) -> HashPrefix {
    let mut acc = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &w in words {
        acc = splitmix64(acc ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    HashPrefix(acc)
}

impl HashPrefix {
    /// Completes the hash with one final word: identical to calling
    /// [`hash_words`] on the prefix followed by `word`.
    #[inline]
    pub fn with(self, word: u64) -> u64 {
        splitmix64(splitmix64(
            self.0 ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// Converts a hash value into a uniform deviate in the open interval (0, 1).
#[inline]
pub fn to_unit_open(hash: u64) -> f64 {
    // Use the top 53 bits; offset by half an ulp so the result is never 0 or 1.
    ((hash >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Standard normal cumulative distribution function.
///
/// Uses the Abramowitz & Stegun 7.1.26 rational approximation of `erf`,
/// accurate to about 1.5e-7 — ample for calibrating fault-model quantiles.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254829592;
    let a2 = -0.284496736;
    let a3 = 1.421413741;
    let a4 = -1.453152027;
    let a5 = 1.061405429;
    let p = 0.3275911;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - (((((a5 * t + a4) * t) + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal quantile function (probit), using the Acklam rational
/// approximation with one Halley refinement step. Relative error < 1e-9 over
/// the full open interval.
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");
    // Coefficients for the Acklam approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method to polish the estimate.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Parameters of a lognormal distribution expressed as (mu, sigma) of the
/// underlying normal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of ln(X).
    pub mu: f64,
    /// Standard deviation of ln(X).
    pub sigma: f64,
}

impl LogNormal {
    /// Fits a lognormal such that the distribution's *mean* equals `mean` and
    /// the expected minimum over `n` independent draws is approximately
    /// `min_over_n`. This is how per-row fault-model scale factors are
    /// calibrated from the paper's "Avg. (Min.)" summary tables.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0`, `min_over_n <= 0`, or `n < 2`.
    pub fn from_mean_and_min(mean: f64, min_over_n: f64, n: u64) -> Self {
        assert!(mean > 0.0 && min_over_n > 0.0 && n >= 2);
        let min_over_n = min_over_n.min(mean * 0.999);
        // The expected minimum over n draws sits near the 1/(n+1) quantile:
        //   ln(min) ~= mu + sigma * z_q  with z_q = Phi^-1(1/(n+1))
        // and the mean of a lognormal is exp(mu + sigma^2/2). Solve the
        // resulting quadratic in sigma and take the small positive root.
        let z_q = normal_quantile(1.0 / (n as f64 + 1.0)); // negative
        let gap = (mean / min_over_n).ln(); // = sigma^2/2 - sigma*z_q  (>0)
                                            // sigma^2/2 - z_q*sigma - gap = 0  =>  sigma = z_q + sqrt(z_q^2 + 2*gap) (positive root)
        let sigma = z_q + (z_q * z_q + 2.0 * gap).sqrt();
        let sigma = sigma.max(1e-6);
        let mu = mean.ln() - sigma * sigma / 2.0;
        LogNormal { mu, sigma }
    }

    /// Evaluates the deviate corresponding to uniform `u` in (0,1).
    pub fn sample_from_uniform(&self, u: f64) -> f64 {
        (self.mu + self.sigma * normal_quantile(u)).exp()
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Probability that a draw is at most `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        normal_cdf((x.ln() - self.mu) / self.sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        let h1 = hash_words(&[1, 2, 3]);
        let h2 = hash_words(&[1, 2, 4]);
        let h3 = hash_words(&[1, 2, 3]);
        assert_eq!(h1, h3);
        assert_ne!(h1, h2);
    }

    #[test]
    fn hash_prefix_matches_hash_words() {
        let words = [0x5151u64, 0x03, 1, 10];
        let prefix = hash_prefix(&words);
        for col in [0u64, 1, 7, 8191, u64::MAX] {
            let mut full = words.to_vec();
            full.push(col);
            assert_eq!(prefix.with(col), hash_words(&full));
        }
        assert_eq!(hash_prefix(&[]).with(42), hash_words(&[42]));
    }

    #[test]
    fn unit_open_stays_in_open_interval() {
        for x in [0u64, 1, u64::MAX, 0xDEADBEEF, 42] {
            let u = to_unit_open(splitmix64(x));
            assert!(u > 0.0 && u < 1.0, "u = {u}");
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.9999999);
        assert!(normal_cdf(-8.0) < 1e-7);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[
            0.0001, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999,
        ] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 5e-6, "p={p} x={x}");
        }
        assert!((normal_quantile(0.5)).abs() < 1e-6);
        assert!(normal_quantile(0.975) > 1.95 && normal_quantile(0.975) < 1.97);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn lognormal_fit_reproduces_mean_and_min() {
        // Calibration target taken from Table 5: mean 47.3 ms, min 12.4 ms
        // over roughly 3072 tested rows.
        let ln = LogNormal::from_mean_and_min(47.3, 12.4, 3072);
        assert!((ln.mean() - 47.3).abs() / 47.3 < 1e-9);
        // The 1/(n+1) quantile should land near the requested minimum.
        let q = 1.0 / 3073.0;
        let x_min = ln.sample_from_uniform(q);
        assert!((x_min - 12.4).abs() / 12.4 < 0.05, "x_min = {x_min}");
        // CDF is monotone and consistent with sampling.
        assert!(ln.cdf(12.4) < ln.cdf(47.3));
        assert!(ln.cdf(0.0) == 0.0);
    }

    #[test]
    fn lognormal_fit_handles_tight_inputs() {
        // A min very close to (or above) the mean should not panic and should
        // produce a narrow distribution.
        let ln = LogNormal::from_mean_and_min(10.0, 9.999, 100);
        assert!(ln.sigma > 0.0 && ln.sigma < 0.2);
        let ln = LogNormal::from_mean_and_min(10.0, 15.0, 100);
        assert!(ln.sigma > 0.0);
    }

    #[test]
    fn lognormal_sampling_is_monotone_in_u() {
        let ln = LogNormal::from_mean_and_min(100.0, 20.0, 1000);
        let lo = ln.sample_from_uniform(0.01);
        let mid = ln.sample_from_uniform(0.5);
        let hi = ln.sample_from_uniform(0.99);
        assert!(lo < mid && mid < hi);
    }
}
