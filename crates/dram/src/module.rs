//! The stateful DRAM module under test.
//!
//! [`DramModule`] combines a [`FaultModel`] with mutable experiment state: the
//! data stored in initialized rows, the read-disturb exposure accumulated by
//! victim rows, the time elapsed since each row was last restored, and the
//! current DRAM temperature. It is the object that both the DRAM-Bender-style
//! test platform and the system-level simulators drive.

use crate::address::{BankId, CellAddr, ColumnId, RowId};
use crate::disturb::{FaultModel, FaultModelConfig};
use crate::error::{DramError, DramResult};
use crate::pattern::{DataPattern, RowRole};
use crate::profile::{DieProfile, ModuleSpec};
use crate::time::Time;
use crate::timing::TimingParams;
use crate::Geometry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which physical mechanism produced a bitflip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlipMechanism {
    /// Charge injection from repeated activations (RowHammer).
    Hammer,
    /// Charge drain from long aggressor-row-on time (RowPress).
    Press,
    /// Charge leakage over time without refresh (retention failure).
    Retention,
}

/// One observed bitflip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitflip {
    /// The flipped cell.
    pub addr: CellAddr,
    /// The value the cell was initialized with.
    pub from: bool,
    /// The value read back.
    pub to: bool,
    /// The mechanism the model attributes the flip to (oracle information the
    /// real experiments do not have; useful for tests and ablations).
    pub mechanism: FlipMechanism,
}

impl Bitflip {
    /// True if this is a 1 → 0 flip.
    pub fn is_one_to_zero(&self) -> bool {
        self.from && !self.to
    }
}

/// Read-disturb exposure accumulated at a victim row from one aggressor row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct Exposure {
    /// Number of aggressor activations contributing to this entry.
    acts: f64,
    /// Accumulated hammer damage units (boost-, decay- and temperature-scaled).
    hammer_units: f64,
    /// Accumulated press exposure in microseconds (decay- and
    /// temperature-scaled).
    press_us: f64,
    /// Physical distance between aggressor and victim (1..=3).
    distance: u32,
}

/// Per-row stored state.
#[derive(Debug, Clone)]
struct RowState {
    data: Vec<u8>,
    pattern: Option<(DataPattern, RowRole)>,
    last_restore: Time,
}

/// A DRAM module under test: fault model + mutable experiment state.
///
/// # Examples
///
/// ```
/// use rowpress_dram::{DramModule, ModuleSpec, Geometry, Time, DataPattern, RowRole, BankId, RowId};
///
/// let spec = rowpress_dram::module_inventory().remove(0);
/// let mut module = DramModule::new(&spec, Geometry::tiny());
/// let bank = BankId(1);
/// module.init_row_pattern(bank, RowId(10), DataPattern::Checkerboard, RowRole::Aggressor).unwrap();
/// module.init_row_pattern(bank, RowId(11), DataPattern::Checkerboard, RowRole::Victim).unwrap();
/// // Press the aggressor open for 30 ms ten times.
/// module.activate_many(bank, RowId(10), Time::from_ms(30.0), Time::from_ns(15.0), 10).unwrap();
/// let flips = module.check_row(bank, RowId(11)).unwrap();
/// // The Samsung 8Gb B-die is press-vulnerable: long presses flip cells.
/// assert!(!flips.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DramModule {
    spec: ModuleSpec,
    fault: FaultModel,
    geometry: Geometry,
    timing: TimingParams,
    temperature_c: f64,
    now: Time,
    rows: HashMap<(BankId, RowId), RowState>,
    exposures: HashMap<(BankId, RowId), HashMap<RowId, Exposure>>,
    activations: u64,
    jitter_sigma: f64,
    jitter_salt: u64,
}

impl DramModule {
    /// Creates a module with the default fault-model configuration, DDR4
    /// timings and 50 °C ambient temperature.
    pub fn new(spec: &ModuleSpec, geometry: Geometry) -> Self {
        Self::with_config(
            spec,
            geometry,
            TimingParams::ddr4(),
            FaultModelConfig::default(),
        )
    }

    /// Creates a module with explicit timing and fault-model configuration.
    pub fn with_config(
        spec: &ModuleSpec,
        geometry: Geometry,
        timing: TimingParams,
        config: FaultModelConfig,
    ) -> Self {
        let fault = FaultModel::new(spec.die, geometry, timing, spec.seed, config, 3072);
        DramModule {
            spec: spec.clone(),
            fault,
            geometry,
            timing,
            temperature_c: 50.0,
            now: Time::ZERO,
            rows: HashMap::new(),
            exposures: HashMap::new(),
            activations: 0,
            jitter_sigma: 0.0,
            jitter_salt: 0,
        }
    }

    /// The module specification (id, die revision, chip count).
    pub fn spec(&self) -> &ModuleSpec {
        &self.spec
    }

    /// The die profile of the chips on this module.
    pub fn die(&self) -> &DieProfile {
        &self.spec.die
    }

    /// The module geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The underlying fault model (read-only).
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault
    }

    /// Current DRAM temperature in °C.
    pub fn temperature(&self) -> f64 {
        self.temperature_c
    }

    /// Sets the DRAM temperature (the temperature-controller model in the
    /// bender crate calls this once the set point settles).
    pub fn set_temperature(&mut self, celsius: f64) {
        self.temperature_c = celsius;
    }

    /// The module-local clock: total time advanced by activations and idling
    /// since construction or the last [`DramModule::reset`].
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of activations issued since construction or reset.
    pub fn activation_count(&self) -> u64 {
        self.activations
    }

    /// Clears all stored data, exposure and the clock (a fresh experiment).
    pub fn reset(&mut self) {
        self.rows.clear();
        self.exposures.clear();
        self.now = Time::ZERO;
        self.activations = 0;
    }

    fn check_addr(&self, bank: BankId, row: RowId) -> DramResult<()> {
        if !self.geometry.contains_bank(bank) {
            return Err(DramError::InvalidBank {
                bank,
                banks: self.geometry.banks,
            });
        }
        if !self.geometry.contains_row(row) {
            return Err(DramError::InvalidRow {
                bank,
                row,
                rows: self.geometry.rows_per_bank,
            });
        }
        Ok(())
    }

    /// Initializes a row with raw bytes. Initialization restores the row's
    /// charge: accumulated disturbance and retention age are cleared.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range or the buffer does not
    /// match the row size.
    pub fn init_row(&mut self, bank: BankId, row: RowId, data: Vec<u8>) -> DramResult<()> {
        self.check_addr(bank, row)?;
        if data.len() != self.geometry.bytes_per_row() {
            return Err(DramError::DataSizeMismatch {
                expected: self.geometry.bytes_per_row(),
                actual: data.len(),
            });
        }
        self.rows.insert(
            (bank, row),
            RowState {
                data,
                pattern: None,
                last_restore: self.now,
            },
        );
        self.exposures.remove(&(bank, row));
        Ok(())
    }

    /// Initializes a row with one of the paper's data patterns, recording the
    /// pattern so that pattern-dependent coupling factors apply (Table 2).
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range.
    pub fn init_row_pattern(
        &mut self,
        bank: BankId,
        row: RowId,
        pattern: DataPattern,
        role: RowRole,
    ) -> DramResult<()> {
        self.check_addr(bank, row)?;
        let data = crate::pattern::fill_row(pattern, role, self.geometry.bytes_per_row());
        self.rows.insert(
            (bank, row),
            RowState {
                data,
                pattern: Some((pattern, role)),
                last_restore: self.now,
            },
        );
        self.exposures.remove(&(bank, row));
        Ok(())
    }

    /// Returns the data a row was initialized with (before disturbance).
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn initialized_data(&self, bank: BankId, row: RowId) -> DramResult<&[u8]> {
        self.check_addr(bank, row)?;
        self.rows
            .get(&(bank, row))
            .map(|r| r.data.as_slice())
            .ok_or(DramError::RowNotInitialized { bank, row })
    }

    /// Refreshes a single row: restores its charge, clearing accumulated
    /// disturbance and retention age. Bitflips that have already occurred are
    /// *not* corrected (refresh restores whatever value the cells currently
    /// hold), matching real DRAM.
    ///
    /// # Errors
    ///
    /// Returns an error if the row address is out of range.
    pub fn refresh_row(&mut self, bank: BankId, row: RowId) -> DramResult<()> {
        self.check_addr(bank, row)?;
        if self.rows.contains_key(&(bank, row)) {
            // Materialize any flips that have already happened, then restore.
            let current = self.read_row(bank, row)?;
            if let Some(state) = self.rows.get_mut(&(bank, row)) {
                state.data = current;
                state.last_restore = self.now;
            }
            self.exposures.remove(&(bank, row));
        }
        Ok(())
    }

    /// Refreshes every initialized row (an auto-refresh sweep).
    pub fn refresh_all(&mut self) {
        let keys: Vec<(BankId, RowId)> = self.rows.keys().copied().collect();
        for (bank, row) in keys {
            let _ = self.refresh_row(bank, row);
        }
    }

    /// Advances the module clock without issuing commands (rows keep leaking).
    pub fn idle(&mut self, duration: Time) {
        self.now += duration;
    }

    /// Issues `count` activations of `row` in `bank`, each keeping the row
    /// open for `t_on` and then closed for `t_off` before the next activation
    /// of the same row. Disturbance is applied to rows within ±3 of the
    /// aggressor; the clock advances by `count x (t_on + t_off)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the aggressor address is out of range.
    pub fn activate_many(
        &mut self,
        bank: BankId,
        row: RowId,
        t_on: Time,
        t_off: Time,
        count: u64,
    ) -> DramResult<()> {
        self.check_addr(bank, row)?;
        if count == 0 {
            return Ok(());
        }
        let t_on = t_on.max(self.timing.t_ras);
        let t_off = t_off.max(self.timing.t_rp);
        let hammer_per_act = self
            .fault
            .hammer_units_per_act(t_on, t_off, self.temperature_c);
        let press_per_act = self
            .fault
            .press_exposure_us_per_act(t_on, t_off, self.temperature_c);
        let n = count as f64;
        for side in [-1i64, 1] {
            for dist in 1..=3u32 {
                let Some(victim) = row.offset(side * i64::from(dist), self.geometry.rows_per_bank)
                else {
                    continue;
                };
                let decay = self.fault.distance_decay(dist);
                if decay == 0.0 {
                    continue;
                }
                let entry = self
                    .exposures
                    .entry((bank, victim))
                    .or_default()
                    .entry(row)
                    .or_insert(Exposure {
                        distance: dist,
                        ..Default::default()
                    });
                entry.acts += n;
                entry.hammer_units += n * hammer_per_act * decay;
                entry.press_us += n * press_per_act * decay;
                entry.distance = dist;
            }
        }
        self.activations += count;
        self.now += (t_on + t_off) * count;
        Ok(())
    }

    /// Issues a single activation (see [`DramModule::activate_many`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the aggressor address is out of range.
    pub fn activate(
        &mut self,
        bank: BankId,
        row: RowId,
        t_on: Time,
        t_off: Time,
    ) -> DramResult<()> {
        self.activate_many(bank, row, t_on, t_off, 1)
    }

    fn stored_bit(data: &[u8], column: u32) -> bool {
        let byte = data[(column / 8) as usize];
        (byte >> (column % 8)) & 1 == 1
    }

    fn evaluate_row(
        &self,
        bank: BankId,
        row: RowId,
        stop_at_first: bool,
    ) -> DramResult<Vec<Bitflip>> {
        self.check_addr(bank, row)?;
        let state = self
            .rows
            .get(&(bank, row))
            .ok_or(DramError::RowNotInitialized { bank, row })?;

        let empty = HashMap::new();
        let exposure = self.exposures.get(&(bank, row)).unwrap_or(&empty);

        // Aggregate exposure across aggressors, noting whether the victim is
        // sandwiched between two distance-1 aggressors (double-sided).
        let mut hammer_total = 0.0;
        let mut press_total = 0.0;
        let mut adjacent_sides = [false, false];
        for (aggr, e) in exposure {
            hammer_total += e.hammer_units;
            press_total += e.press_us;
            if e.distance == 1 && e.acts > 0.0 {
                if aggr.0 < row.0 {
                    adjacent_sides[0] = true;
                } else {
                    adjacent_sides[1] = true;
                }
            }
        }
        if adjacent_sides[0] && adjacent_sides[1] {
            hammer_total *= self.fault.double_sided_hammer_bonus();
        }
        let (hammer_factor, press_factor) = match state.pattern {
            Some((p, _)) => (p.hammer_factor(), p.press_factor()),
            None => (1.0, 1.0),
        };
        let hammer_total = hammer_total * hammer_factor;
        let press_total = press_total * press_factor;

        let retention_elapsed_s = (self.now.saturating_sub(state.last_restore)).as_secs();
        let check_retention = retention_elapsed_s >= 1e-3;

        let mut flips = Vec::new();
        if hammer_total == 0.0 && press_total == 0.0 && !check_retention {
            return Ok(flips);
        }

        // Row-level bases and anchor columns hoisted out of the per-cell loop.
        let hammer_base = self.fault.row_hammer_acmin_base(bank, row);
        let press_base = self.fault.row_press_time_us(bank, row);
        let hammer_anchors = self.fault.hammer_anchor_columns(bank, row);
        let press_anchors = self.fault.press_anchor_columns(bank, row);
        let check_hammer = hammer_total > 0.0;
        let check_press = press_total > 0.0 && press_base.is_some();

        for column in 0..self.geometry.bits_per_row {
            let bit = Self::stored_bit(&state.data, column);
            let addr = CellAddr {
                bank,
                row,
                column: ColumnId(column),
            };
            let jitter = self.flip_jitter(addr);
            let charged = self.fault.cell_is_charged(addr, bit);
            if charged {
                // Charge-drain mechanisms: RowPress and retention.
                let pressed = check_press
                    && press_total
                        >= press_base.unwrap_or(f64::INFINITY)
                            * self
                                .fault
                                .cell_press_spread_with_anchors(addr, &press_anchors)
                            * jitter;
                let leaked = !pressed
                    && check_retention
                    && retention_elapsed_s
                        >= self.fault.cell_retention_s(addr, self.temperature_c) * jitter;
                if pressed || leaked {
                    flips.push(Bitflip {
                        addr,
                        from: bit,
                        to: !bit,
                        mechanism: if pressed {
                            FlipMechanism::Press
                        } else {
                            FlipMechanism::Retention
                        },
                    });
                }
            } else if check_hammer
                && hammer_total
                    >= hammer_base
                        * self
                            .fault
                            .cell_hammer_spread_with_anchors(addr, &hammer_anchors)
                        * jitter
            {
                // Charge-injection mechanism: RowHammer.
                flips.push(Bitflip {
                    addr,
                    from: bit,
                    to: !bit,
                    mechanism: FlipMechanism::Hammer,
                });
            }
            if stop_at_first && !flips.is_empty() {
                break;
            }
        }
        Ok(flips)
    }

    /// Per-cell threshold jitter factor; 1.0 unless jitter is enabled via
    /// [`DramModule::set_flip_jitter`].
    fn flip_jitter(&self, addr: CellAddr) -> f64 {
        if self.jitter_sigma == 0.0 {
            return 1.0;
        }
        let h = crate::math::hash_words(&[
            self.jitter_salt,
            0xB1u64,
            u64::from(addr.bank.0),
            u64::from(addr.row.0),
            u64::from(addr.column.0),
        ]);
        // Cheap approximately-normal deviate from a uniform: uniform on
        // [-sqrt(3), sqrt(3)] has unit variance.
        let z = (crate::math::to_unit_open(h) - 0.5) * 2.0 * 3f64.sqrt();
        (self.jitter_sigma * z).exp()
    }

    /// Enables per-check threshold jitter: cell flip thresholds are multiplied
    /// by a small lognormal factor derived from `salt`. The repeatability
    /// study (paper Appendix E) uses a different salt per iteration to model
    /// run-to-run variation of borderline cells; `sigma = 0` (the default)
    /// makes the device fully deterministic.
    pub fn set_flip_jitter(&mut self, sigma: f64, salt: u64) {
        self.jitter_sigma = sigma;
        self.jitter_salt = salt;
    }

    /// Computes the bitflips currently present in a row, without modifying
    /// state. The evaluation is deterministic: the same exposure always yields
    /// the same set of flips.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn check_row(&self, bank: BankId, row: RowId) -> DramResult<Vec<Bitflip>> {
        self.evaluate_row(bank, row, false)
    }

    /// Fast check whether a row currently contains at least one bitflip
    /// (early-exits at the first flipped cell). Used by the ACmin bisection
    /// search, whose probes only need a yes/no answer.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn has_bitflip(&self, bank: BankId, row: RowId) -> DramResult<bool> {
        Ok(!self.evaluate_row(bank, row, true)?.is_empty())
    }

    /// Reads a row back: the initialized data with any current bitflips
    /// applied.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn read_row(&self, bank: BankId, row: RowId) -> DramResult<Vec<u8>> {
        let flips = self.check_row(bank, row)?;
        let mut data = self.rows[&(bank, row)].data.clone();
        for flip in flips {
            let byte = (flip.addr.column.0 / 8) as usize;
            let bit = flip.addr.column.0 % 8;
            if flip.to {
                data[byte] |= 1 << bit;
            } else {
                data[byte] &= !(1 << bit);
            }
        }
        Ok(data)
    }

    /// Convenience: counts the bitflips in a set of rows.
    ///
    /// # Errors
    ///
    /// Returns an error if any row is out of range or not initialized.
    pub fn count_bitflips(&self, bank: BankId, rows: &[RowId]) -> DramResult<usize> {
        let mut total = 0;
        for &row in rows {
            total += self.check_row(bank, row)?.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::module_inventory;

    fn samsung_b_module() -> DramModule {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "S0")
            .unwrap();
        DramModule::new(&spec, Geometry::tiny())
    }

    fn micron_8gb_module() -> DramModule {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "M0")
            .unwrap();
        DramModule::new(&spec, Geometry::tiny())
    }

    #[test]
    fn init_and_read_round_trip_without_disturbance() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(bank, RowId(5), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        let data = m.read_row(bank, RowId(5)).unwrap();
        assert!(data.iter().all(|&b| b == 0x55));
        assert!(m.check_row(bank, RowId(5)).unwrap().is_empty());
    }

    #[test]
    fn uninitialized_row_errors() {
        let m = samsung_b_module();
        assert_eq!(
            m.check_row(BankId(0), RowId(1)).unwrap_err(),
            DramError::RowNotInitialized {
                bank: BankId(0),
                row: RowId(1)
            }
        );
        assert!(matches!(
            m.check_row(BankId(50), RowId(1)),
            Err(DramError::InvalidBank { .. })
        ));
        assert!(matches!(
            m.check_row(BankId(0), RowId(9999)),
            Err(DramError::InvalidRow { .. })
        ));
    }

    #[test]
    fn wrong_data_size_rejected() {
        let mut m = samsung_b_module();
        let err = m.init_row(BankId(0), RowId(0), vec![0u8; 3]).unwrap_err();
        assert!(matches!(err, DramError::DataSizeMismatch { .. }));
    }

    #[test]
    fn long_press_flips_bits_in_adjacent_row() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        let aggr = RowId(20);
        let victim = RowId(21);
        m.init_row_pattern(bank, aggr, DataPattern::Checkerboard, RowRole::Aggressor)
            .unwrap();
        m.init_row_pattern(bank, victim, DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(bank, aggr, Time::from_ms(30.0), Time::from_ns(15.0), 10)
            .unwrap();
        let flips = m.check_row(bank, victim).unwrap();
        assert!(
            !flips.is_empty(),
            "a 10x30ms press should flip the weakest cells"
        );
        assert!(flips.iter().all(|f| f.mechanism == FlipMechanism::Press));
        // With the checkerboard pattern press flips are dominantly 1 -> 0 for
        // a die with few anti-cells.
        let one_to_zero = flips.iter().filter(|f| f.is_one_to_zero()).count();
        assert!(one_to_zero * 2 >= flips.len());
    }

    #[test]
    fn short_hammer_does_not_flip_but_many_hammers_do() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        let aggr = RowId(30);
        let victim = RowId(31);
        m.init_row_pattern(bank, aggr, DataPattern::Checkerboard, RowRole::Aggressor)
            .unwrap();
        m.init_row_pattern(bank, victim, DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        let t = *m.timing();
        m.activate_many(bank, aggr, t.t_ras, t.t_rp, 1_000).unwrap();
        assert!(
            m.check_row(bank, victim).unwrap().is_empty(),
            "1K activations must not flip a ~270K-ACmin die"
        );
        // Hammer well beyond the worst-case ACmin of the die.
        m.activate_many(bank, aggr, t.t_ras, t.t_rp, 2_000_000)
            .unwrap();
        let flips = m.check_row(bank, victim).unwrap();
        assert!(!flips.is_empty());
        assert!(flips.iter().all(|f| f.mechanism == FlipMechanism::Hammer));
    }

    #[test]
    fn press_invulnerable_die_survives_long_press() {
        let mut m = micron_8gb_module();
        let bank = BankId(0);
        m.init_row_pattern(
            bank,
            RowId(10),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(11), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(
            bank,
            RowId(10),
            Time::from_ms(30.0),
            Time::from_ns(15.0),
            10,
        )
        .unwrap();
        assert!(m.check_row(bank, RowId(11)).unwrap().is_empty());
    }

    #[test]
    fn init_clears_accumulated_disturbance() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(40),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(41), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(
            bank,
            RowId(40),
            Time::from_ms(30.0),
            Time::from_ns(15.0),
            10,
        )
        .unwrap();
        assert!(!m.check_row(bank, RowId(41)).unwrap().is_empty());
        // Re-initializing the victim restores its charge.
        m.init_row_pattern(bank, RowId(41), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        assert!(m.check_row(bank, RowId(41)).unwrap().is_empty());
    }

    #[test]
    fn refresh_row_stops_further_disturbance_accumulation() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(50),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(51), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        // Accumulate just under the flip threshold, refresh, accumulate again:
        // no flips because the exposure never adds up across the refresh.
        m.activate_many(bank, RowId(50), Time::from_ms(15.0), Time::from_ns(15.0), 1)
            .unwrap();
        m.refresh_row(bank, RowId(51)).unwrap();
        m.activate_many(bank, RowId(50), Time::from_ms(15.0), Time::from_ns(15.0), 1)
            .unwrap();
        let after_refresh = m.check_row(bank, RowId(51)).unwrap().len();
        // Compare with the same total exposure without the refresh.
        let mut m2 = samsung_b_module();
        m2.init_row_pattern(
            bank,
            RowId(50),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m2.init_row_pattern(bank, RowId(51), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m2.activate_many(bank, RowId(50), Time::from_ms(15.0), Time::from_ns(15.0), 2)
            .unwrap();
        let without_refresh = m2.check_row(bank, RowId(51)).unwrap().len();
        assert!(after_refresh <= without_refresh);
    }

    #[test]
    fn retention_failures_appear_after_long_unrefreshed_idle() {
        let mut m = samsung_b_module();
        m.set_temperature(80.0);
        let bank = BankId(0);
        m.init_row_pattern(bank, RowId(3), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.idle(Time::from_secs(4.0));
        let flips = m.check_row(bank, RowId(3)).unwrap();
        // A 1024-bit tiny row may or may not contain a retention-weak cell;
        // what must hold is that all flips (if any) are retention flips and
        // that a freshly refreshed row has none.
        assert!(flips
            .iter()
            .all(|f| f.mechanism == FlipMechanism::Retention));
        m.refresh_row(bank, RowId(3)).unwrap();
        assert!(m.check_row(bank, RowId(3)).unwrap().is_empty());
    }

    #[test]
    fn clock_and_activation_accounting() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(10),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        assert_eq!(m.now(), Time::ZERO);
        m.activate_many(
            bank,
            RowId(10),
            Time::from_ns(36.0),
            Time::from_ns(15.0),
            100,
        )
        .unwrap();
        assert_eq!(m.activation_count(), 100);
        assert_eq!(m.now(), Time::from_ns(51.0) * 100);
        m.idle(Time::from_us(1.0));
        assert_eq!(m.now(), Time::from_ns(51.0) * 100 + Time::from_us(1.0));
        m.reset();
        assert_eq!(m.now(), Time::ZERO);
        assert_eq!(m.activation_count(), 0);
    }

    #[test]
    fn double_sided_amplifies_hammer() {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "S3")
            .unwrap(); // 8Gb D-die, weak
        let bank = BankId(1);
        let t = TimingParams::ddr4();
        // Single-sided: AC activations of one neighbour.
        let mut single = DramModule::new(&spec, Geometry::tiny());
        single
            .init_row_pattern(
                bank,
                RowId(20),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        single
            .init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        // Double-sided: the same *total* AC split across both neighbours.
        let mut double = DramModule::new(&spec, Geometry::tiny());
        double
            .init_row_pattern(
                bank,
                RowId(20),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        double
            .init_row_pattern(
                bank,
                RowId(22),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        double
            .init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        let ac_total = 60_000u64;
        single
            .activate_many(bank, RowId(20), t.t_ras, t.t_rp, ac_total)
            .unwrap();
        double
            .activate_many(bank, RowId(20), t.t_ras, t.t_rp, ac_total / 2)
            .unwrap();
        double
            .activate_many(bank, RowId(22), t.t_ras, t.t_rp, ac_total / 2)
            .unwrap();
        let single_flips = single.check_row(bank, RowId(21)).unwrap().len();
        let double_flips = double.check_row(bank, RowId(21)).unwrap().len();
        assert!(
            double_flips >= single_flips,
            "double-sided RowHammer must be at least as effective (single {single_flips}, double {double_flips})"
        );
    }

    #[test]
    fn read_row_applies_flips_to_data() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(20),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(
            bank,
            RowId(20),
            Time::from_ms(30.0),
            Time::from_ns(15.0),
            10,
        )
        .unwrap();
        let flips = m.check_row(bank, RowId(21)).unwrap();
        let data = m.read_row(bank, RowId(21)).unwrap();
        for f in &flips {
            let byte = data[(f.addr.column.0 / 8) as usize];
            let bit = (byte >> (f.addr.column.0 % 8)) & 1 == 1;
            assert_eq!(bit, f.to);
        }
        let initial = m.initialized_data(bank, RowId(21)).unwrap();
        assert!(initial.iter().all(|&b| b == 0x55));
        assert_eq!(m.count_bitflips(bank, &[RowId(21)]).unwrap(), flips.len());
    }

    #[test]
    fn higher_temperature_yields_more_press_flips() {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "H0")
            .unwrap(); // theta80 = 3.8
        let bank = BankId(1);
        let run = |temp: f64| {
            let mut m = DramModule::new(&spec, Geometry::tiny());
            m.set_temperature(temp);
            m.init_row_pattern(
                bank,
                RowId(10),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
            m.init_row_pattern(bank, RowId(11), DataPattern::Checkerboard, RowRole::Victim)
                .unwrap();
            m.activate_many(
                bank,
                RowId(10),
                Time::from_us(70.2),
                Time::from_ns(15.0),
                600,
            )
            .unwrap();
            m.check_row(bank, RowId(11)).unwrap().len()
        };
        assert!(run(80.0) >= run(50.0));
        assert!(run(80.0) > 0);
    }
}
