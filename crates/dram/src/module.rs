//! The stateful DRAM module under test.
//!
//! [`DramModule`] combines a [`FaultModel`] with mutable experiment state: the
//! data stored in initialized rows, the read-disturb exposure accumulated by
//! victim rows, the time elapsed since each row was last restored, and the
//! current DRAM temperature. It is the object that both the DRAM-Bender-style
//! test platform and the system-level simulators drive.
//!
//! # Storage layout and the trial kernel
//!
//! Row state lives in dense per-bank slabs indexed by row offset (allocated
//! lazily in fixed 64-row chunks, so a paper-scale bank costs a trial only
//! the chunks its site touches) rather than hash maps, and the read-disturb
//! exposure of a row is a fixed six-entry ledger indexed by the aggressor's
//! signed distance (±1..±3) — the model's blast radius. The per
//! cell fault parameters are precomputed once per row into a
//! [`CellProfileTable`] and reused across every subsequent evaluation, which
//! makes the probe loop of the bisection searches both hash-free and, for
//! rows holding an unmodified data pattern, O(1) in the row size. The
//! precomputed path is bit-for-bit identical to the scalar per-cell math; the
//! scalar path is kept behind [`DramModule::set_profile_caching`] as the
//! reference for tests and perf baselines.

use crate::address::{BankId, CellAddr, ColumnId, RowId};
use crate::disturb::{CellProfileTable, FaultModel, FaultModelConfig};
use crate::error::{DramError, DramResult};
use crate::pattern::{DataPattern, RowRole};
use crate::profile::{DieProfile, ModuleSpec};
use crate::store::{ProfileKey, ProfileStore};
use crate::time::Time;
use crate::timing::TimingParams;
use crate::Geometry;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which physical mechanism produced a bitflip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlipMechanism {
    /// Charge injection from repeated activations (RowHammer).
    Hammer,
    /// Charge drain from long aggressor-row-on time (RowPress).
    Press,
    /// Charge leakage over time without refresh (retention failure).
    Retention,
}

/// One observed bitflip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bitflip {
    /// The flipped cell.
    pub addr: CellAddr,
    /// The value the cell was initialized with.
    pub from: bool,
    /// The value read back.
    pub to: bool,
    /// The mechanism the model attributes the flip to (oracle information the
    /// real experiments do not have; useful for tests and ablations).
    pub mechanism: FlipMechanism,
}

impl Bitflip {
    /// True if this is a 1 → 0 flip.
    pub fn is_one_to_zero(&self) -> bool {
        self.from && !self.to
    }
}

/// Read-disturb exposure accumulated at a victim row from one aggressor row.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Exposure {
    /// Number of aggressor activations contributing to this entry.
    acts: f64,
    /// Accumulated hammer damage units (boost-, decay- and temperature-scaled).
    hammer_units: f64,
    /// Accumulated press exposure in microseconds (decay- and
    /// temperature-scaled).
    press_us: f64,
}

/// Signed aggressor offsets (aggressor row − victim row) tracked per victim:
/// the model's ±3-row blast radius, in ascending aggressor-row order.
const EXPOSURE_DELTAS: [i64; 6] = [-3, -2, -1, 1, 2, 3];

/// Writes a flip's read-back value into a row buffer.
fn apply_flip(data: &mut [u8], flip: &Bitflip) {
    let byte = (flip.addr.column.0 / 8) as usize;
    let bit = flip.addr.column.0 % 8;
    if flip.to {
        data[byte] |= 1 << bit;
    } else {
        data[byte] &= !(1 << bit);
    }
}

/// Ledger slot of the aggressor at signed offset `delta` from the victim.
fn exposure_index(delta: i64) -> usize {
    debug_assert!(delta != 0 && delta.abs() <= 3);
    if delta < 0 {
        (delta + 3) as usize
    } else {
        (delta + 2) as usize
    }
}

/// Per-row stored state: one dense slab entry per (bank, row offset).
#[derive(Debug, Clone, Default)]
struct RowSlot {
    /// Stored bytes; empty means the row was never initialized.
    data: Vec<u8>,
    pattern: Option<(DataPattern, RowRole)>,
    /// True while `data` is exactly the unmodified repeating-byte pattern
    /// fill — the precondition of the O(1) any-bitflip probe path.
    pristine: bool,
    last_restore: Time,
    /// Exposure ledger indexed by [`exposure_index`] of the aggressor offset.
    exposure: [Exposure; 6],
    /// Quick check: any ledger entry nonzero.
    exposed: bool,
    /// Lazily built per-cell fault parameters (see [`CellProfileTable`]);
    /// invalidated on temperature / jitter changes. `Arc` so a table interned
    /// in a cross-trial [`ProfileStore`] is shared, not copied, per module.
    profile: OnceLock<Arc<CellProfileTable>>,
}

impl RowSlot {
    fn initialized(&self) -> bool {
        !self.data.is_empty()
    }

    fn clear_exposure(&mut self) {
        if self.exposed {
            self.exposure = [Exposure::default(); 6];
            self.exposed = false;
        }
    }
}

/// Rows per storage chunk: a pattern site spans at most ~9 rows, so a trial
/// touches one or two chunks regardless of bank size, while row → slot
/// lookup stays two array indexes.
const CHUNK_ROWS: usize = 64;

/// Dense row storage of one bank, allocated in fixed-size chunks on first
/// touch: `chunks` is empty until the bank is used, then holds
/// `ceil(rows_per_bank / CHUNK_ROWS)` entries of which only the touched
/// chunks are populated — a paper-scale bank (65 536 rows) costs a trial
/// only the chunks its site actually lives in.
#[derive(Debug, Clone, Default)]
struct BankStore {
    chunks: Vec<Option<Box<[RowSlot]>>>,
}

impl BankStore {
    fn slot(&self, row: RowId) -> Option<&RowSlot> {
        let chunk = self.chunks.get(row.0 as usize / CHUNK_ROWS)?.as_deref()?;
        chunk.get(row.0 as usize % CHUNK_ROWS)
    }
}

/// Row-level disturbance totals shared by every evaluation path.
struct RowDisturb {
    hammer_total: f64,
    press_total: f64,
    retention_elapsed_s: f64,
    check_retention: bool,
    check_hammer: bool,
    press_exposed: bool,
}

/// Cumulative word-block statistics of the profiled full-scan path,
/// process-wide (like the [`ProfileStore`] they instrument — a module cannot
/// carry the counters itself without giving up `Clone`-independence of its
/// observable state). Snapshot via [`scan_word_stats`]; perf harnesses
/// bracket a measured region with [`reset_scan_word_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanWordStats {
    /// 64-column words visited by profiled full scans.
    pub words_visited: u64,
    /// Of those, words skipped whole by the word-minimum prune.
    pub words_skipped: u64,
}

impl ScanWordStats {
    /// Fraction of visited words skipped whole (0.0 before any scan ran).
    pub fn skip_rate(&self) -> f64 {
        if self.words_visited == 0 {
            return 0.0;
        }
        self.words_skipped as f64 / self.words_visited as f64
    }
}

static SCAN_WORDS_VISITED: AtomicU64 = AtomicU64::new(0);
static SCAN_WORDS_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the cumulative [`ScanWordStats`]. Each scan adds its local
/// tallies once at the end with relaxed ordering, so the snapshot is cheap
/// and approximately consistent — counters, not a synchronization point.
pub fn scan_word_stats() -> ScanWordStats {
    ScanWordStats {
        words_visited: SCAN_WORDS_VISITED.load(Ordering::Relaxed),
        words_skipped: SCAN_WORDS_SKIPPED.load(Ordering::Relaxed),
    }
}

/// Resets the cumulative word-block scan counters to zero.
pub fn reset_scan_word_stats() {
    SCAN_WORDS_VISITED.store(0, Ordering::Relaxed);
    SCAN_WORDS_SKIPPED.store(0, Ordering::Relaxed);
}

/// A DRAM module under test: fault model + mutable experiment state.
///
/// # Examples
///
/// ```
/// use rowpress_dram::{DramModule, ModuleSpec, Geometry, Time, DataPattern, RowRole, BankId, RowId};
///
/// let spec = rowpress_dram::module_inventory().remove(0);
/// let mut module = DramModule::new(&spec, Geometry::tiny());
/// let bank = BankId(1);
/// module.init_row_pattern(bank, RowId(10), DataPattern::Checkerboard, RowRole::Aggressor).unwrap();
/// module.init_row_pattern(bank, RowId(11), DataPattern::Checkerboard, RowRole::Victim).unwrap();
/// // Press the aggressor open for 30 ms ten times.
/// module.activate_many(bank, RowId(10), Time::from_ms(30.0), Time::from_ns(15.0), 10).unwrap();
/// let flips = module.check_row(bank, RowId(11)).unwrap();
/// // The Samsung 8Gb B-die is press-vulnerable: long presses flip cells.
/// assert!(!flips.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DramModule {
    spec: ModuleSpec,
    fault: FaultModel,
    geometry: Geometry,
    timing: TimingParams,
    temperature_c: f64,
    now: Time,
    banks: Vec<BankStore>,
    activations: u64,
    jitter_sigma: f64,
    jitter_salt: u64,
    profile_caching: bool,
    /// Cross-trial intern table for built row profiles; `None` (the default)
    /// keeps builds module-local.
    profile_store: Option<ProfileStore>,
    /// The fault model's build-identity digest, precomputed for store keys.
    model_fingerprint: u64,
}

impl DramModule {
    /// Creates a module with the default fault-model configuration, DDR4
    /// timings and 50 °C ambient temperature.
    pub fn new(spec: &ModuleSpec, geometry: Geometry) -> Self {
        Self::with_config(
            spec,
            geometry,
            TimingParams::ddr4(),
            FaultModelConfig::default(),
        )
    }

    /// Creates a module with explicit timing and fault-model configuration.
    pub fn with_config(
        spec: &ModuleSpec,
        geometry: Geometry,
        timing: TimingParams,
        config: FaultModelConfig,
    ) -> Self {
        let fault = FaultModel::new(spec.die, geometry, timing, spec.seed, config, 3072);
        let model_fingerprint = fault.fingerprint();
        DramModule {
            spec: spec.clone(),
            fault,
            geometry,
            timing,
            temperature_c: 50.0,
            now: Time::ZERO,
            banks: (0..geometry.banks).map(|_| BankStore::default()).collect(),
            activations: 0,
            jitter_sigma: 0.0,
            jitter_salt: 0,
            profile_caching: true,
            profile_store: None,
            model_fingerprint,
        }
    }

    /// Read access to a row slot, `None` when the row's storage chunk was
    /// never touched or the row is out of range.
    fn slot(&self, bank: BankId, row: RowId) -> Option<&RowSlot> {
        self.banks.get(usize::from(bank.0))?.slot(row)
    }

    /// Mutable access to a row slot, allocating the bank's chunk table and
    /// the row's chunk on first touch. Callers must have validated the
    /// address.
    fn slot_mut(&mut self, bank: BankId, row: RowId) -> &mut RowSlot {
        let chunk_count = (self.geometry.rows_per_bank as usize).div_ceil(CHUNK_ROWS);
        let store = &mut self.banks[usize::from(bank.0)];
        if store.chunks.is_empty() {
            store.chunks = vec![None; chunk_count];
        }
        let chunk = store.chunks[row.0 as usize / CHUNK_ROWS]
            .get_or_insert_with(|| vec![RowSlot::default(); CHUNK_ROWS].into_boxed_slice());
        &mut chunk[row.0 as usize % CHUNK_ROWS]
    }

    /// The slot of an initialized row, or the typed error the evaluation
    /// paths report for untouched rows.
    fn slot_initialized(&self, bank: BankId, row: RowId) -> DramResult<&RowSlot> {
        self.check_addr(bank, row)?;
        match self.slot(bank, row) {
            Some(slot) if slot.initialized() => Ok(slot),
            _ => Err(DramError::RowNotInitialized { bank, row }),
        }
    }

    /// The module specification (id, die revision, chip count).
    pub fn spec(&self) -> &ModuleSpec {
        &self.spec
    }

    /// The die profile of the chips on this module.
    pub fn die(&self) -> &DieProfile {
        &self.spec.die
    }

    /// The module geometry.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The underlying fault model (read-only).
    pub fn fault_model(&self) -> &FaultModel {
        &self.fault
    }

    /// Current DRAM temperature in °C.
    pub fn temperature(&self) -> f64 {
        self.temperature_c
    }

    /// Sets the DRAM temperature (the temperature-controller model in the
    /// bender crate calls this once the set point settles). Cached cell
    /// profiles bake the temperature into retention thresholds, so a change
    /// invalidates them.
    pub fn set_temperature(&mut self, celsius: f64) {
        if self.temperature_c != celsius {
            self.temperature_c = celsius;
            self.invalidate_profiles();
        }
    }

    /// Enables or disables the precomputed [`CellProfileTable`] evaluation
    /// path (enabled by default). The disabled path recomputes every cell
    /// parameter on demand — bit-identical but much slower; it exists as the
    /// reference baseline for the `perf_trial_kernel` bench and the
    /// equivalence tests.
    pub fn set_profile_caching(&mut self, enabled: bool) {
        self.profile_caching = enabled;
    }

    /// Whether the precomputed-profile evaluation path is enabled.
    pub fn profile_caching(&self) -> bool {
        self.profile_caching
    }

    /// Attaches a cross-trial [`ProfileStore`]: row profiles are looked up
    /// there (keyed by the full build identity — model fingerprint,
    /// temperature, jitter, bank, row) before being built, and donated on a
    /// miss, so modules sharing one store build each distinct table once per
    /// process. Only consulted by the kernel path; the scalar reference path
    /// ([`DramModule::set_profile_caching`] off) never touches profiles.
    pub fn set_profile_store(&mut self, store: ProfileStore) {
        self.profile_store = Some(store);
    }

    /// The attached cross-trial [`ProfileStore`], if any.
    pub fn profile_store(&self) -> Option<&ProfileStore> {
        self.profile_store.as_ref()
    }

    /// Drops every cached row profile (temperature or jitter changed).
    fn invalidate_profiles(&mut self) {
        for store in &mut self.banks {
            for chunk in store.chunks.iter_mut().flatten() {
                for slot in chunk.iter_mut() {
                    slot.profile.take();
                }
            }
        }
    }

    /// The module-local clock: total time advanced by activations and idling
    /// since construction or the last [`DramModule::reset`].
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of activations issued since construction or reset.
    pub fn activation_count(&self) -> u64 {
        self.activations
    }

    /// Clears all stored data, exposure and the clock (a fresh experiment).
    pub fn reset(&mut self) {
        for store in &mut self.banks {
            store.chunks = Vec::new();
        }
        self.now = Time::ZERO;
        self.activations = 0;
    }

    fn check_addr(&self, bank: BankId, row: RowId) -> DramResult<()> {
        if !self.geometry.contains_bank(bank) {
            return Err(DramError::InvalidBank {
                bank,
                banks: self.geometry.banks,
            });
        }
        if !self.geometry.contains_row(row) {
            return Err(DramError::InvalidRow {
                bank,
                row,
                rows: self.geometry.rows_per_bank,
            });
        }
        Ok(())
    }

    /// Initializes a row with raw bytes. Initialization restores the row's
    /// charge: accumulated disturbance and retention age are cleared.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range or the buffer does not
    /// match the row size.
    pub fn init_row(&mut self, bank: BankId, row: RowId, data: Vec<u8>) -> DramResult<()> {
        self.check_addr(bank, row)?;
        if data.len() != self.geometry.bytes_per_row() {
            return Err(DramError::DataSizeMismatch {
                expected: self.geometry.bytes_per_row(),
                actual: data.len(),
            });
        }
        let now = self.now;
        let slot = self.slot_mut(bank, row);
        slot.data = data;
        slot.pattern = None;
        slot.pristine = false;
        slot.last_restore = now;
        slot.clear_exposure();
        Ok(())
    }

    /// Initializes a row with one of the paper's data patterns, recording the
    /// pattern so that pattern-dependent coupling factors apply (Table 2).
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range.
    pub fn init_row_pattern(
        &mut self,
        bank: BankId,
        row: RowId,
        pattern: DataPattern,
        role: RowRole,
    ) -> DramResult<()> {
        self.check_addr(bank, row)?;
        let byte = pattern.fill_byte(role);
        let len = self.geometry.bytes_per_row();
        let now = self.now;
        let slot = self.slot_mut(bank, row);
        // Re-initialization refills the existing buffer: the probe loops of
        // the bisection searches allocate a row buffer once, not per probe.
        if slot.data.len() == len {
            slot.data.fill(byte);
        } else {
            slot.data.clear();
            slot.data.resize(len, byte);
        }
        slot.pattern = Some((pattern, role));
        slot.pristine = true;
        slot.last_restore = now;
        slot.clear_exposure();
        Ok(())
    }

    /// Returns the data a row was initialized with (before disturbance).
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn initialized_data(&self, bank: BankId, row: RowId) -> DramResult<&[u8]> {
        Ok(self.slot_initialized(bank, row)?.data.as_slice())
    }

    /// Refreshes a single row: restores its charge, clearing accumulated
    /// disturbance and retention age. Bitflips that have already occurred are
    /// *not* corrected (refresh restores whatever value the cells currently
    /// hold), matching real DRAM.
    ///
    /// # Errors
    ///
    /// Returns an error if the row address is out of range.
    pub fn refresh_row(&mut self, bank: BankId, row: RowId) -> DramResult<()> {
        self.check_addr(bank, row)?;
        if !self.slot(bank, row).is_some_and(RowSlot::initialized) {
            return Ok(());
        }
        // Materialize any flips that have already happened directly into the
        // row's buffer (no row-sized copy), then restore.
        let mut flips = Vec::new();
        {
            let slot = self.slot(bank, row).expect("slot exists");
            self.scan_cells(bank, row, slot, &slot.data, &mut |flip: Bitflip| {
                flips.push(flip);
                true
            });
        }
        let now = self.now;
        let slot = self.slot_mut(bank, row);
        for flip in &flips {
            apply_flip(&mut slot.data, flip);
        }
        slot.pristine = slot.pristine && flips.is_empty();
        slot.last_restore = now;
        slot.clear_exposure();
        Ok(())
    }

    /// Refreshes every initialized row (an auto-refresh sweep). Iterates the
    /// allocated storage chunks directly — no key collection is allocated
    /// per sweep, and untouched regions of a bank cost nothing.
    pub fn refresh_all(&mut self) {
        for bank in 0..self.banks.len() {
            for chunk_idx in 0..self.banks[bank].chunks.len() {
                let len = match &self.banks[bank].chunks[chunk_idx] {
                    Some(chunk) => chunk.len(),
                    None => continue,
                };
                for offset in 0..len {
                    let initialized = self.banks[bank].chunks[chunk_idx]
                        .as_ref()
                        .is_some_and(|chunk| chunk[offset].initialized());
                    if initialized {
                        let row = RowId((chunk_idx * CHUNK_ROWS + offset) as u32);
                        let _ = self.refresh_row(BankId(bank as u16), row);
                    }
                }
            }
        }
    }

    /// Advances the module clock without issuing commands (rows keep leaking).
    pub fn idle(&mut self, duration: Time) {
        self.now += duration;
    }

    /// Issues `count` activations of `row` in `bank`, each keeping the row
    /// open for `t_on` and then closed for `t_off` before the next activation
    /// of the same row. Disturbance is applied to rows within ±3 of the
    /// aggressor; the clock advances by `count x (t_on + t_off)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the aggressor address is out of range.
    pub fn activate_many(
        &mut self,
        bank: BankId,
        row: RowId,
        t_on: Time,
        t_off: Time,
        count: u64,
    ) -> DramResult<()> {
        self.check_addr(bank, row)?;
        if count == 0 {
            return Ok(());
        }
        let t_on = t_on.max(self.timing.t_ras);
        let t_off = t_off.max(self.timing.t_rp);
        let hammer_per_act = self
            .fault
            .hammer_units_per_act(t_on, t_off, self.temperature_c);
        let press_per_act = self
            .fault
            .press_exposure_us_per_act(t_on, t_off, self.temperature_c);
        let n = count as f64;
        for side in [-1i64, 1] {
            for dist in 1..=3u32 {
                let delta = side * i64::from(dist);
                let Some(victim) = row.offset(delta, self.geometry.rows_per_bank) else {
                    continue;
                };
                let decay = self.fault.distance_decay(dist);
                if decay == 0.0 {
                    continue;
                }
                let slot = self.slot_mut(bank, victim);
                // The aggressor sits at -delta relative to the victim.
                let entry = &mut slot.exposure[exposure_index(-delta)];
                entry.acts += n;
                entry.hammer_units += n * hammer_per_act * decay;
                entry.press_us += n * press_per_act * decay;
                slot.exposed = true;
            }
        }
        self.activations += count;
        self.now += (t_on + t_off) * count;
        Ok(())
    }

    /// The precomputed [`CellProfileTable`] of one row (built on first use
    /// and cached until the temperature or jitter setting changes). Exposed
    /// so tests can check the table against the fault model's per-cell
    /// functions; the evaluation paths use it internally.
    ///
    /// Takes `&self`: the build is interior-mutable via the row slot's
    /// `OnceLock`. For a row whose storage chunk was never touched there is
    /// no slot to cache in, so the table is served from the attached
    /// [`ProfileStore`] (interned) or built fresh per call.
    ///
    /// # Errors
    ///
    /// Returns an error if the address is out of range.
    pub fn cell_profiles(&self, bank: BankId, row: RowId) -> DramResult<Arc<CellProfileTable>> {
        self.check_addr(bank, row)?;
        match self.slot(bank, row) {
            Some(slot) => Ok(Arc::clone(
                slot.profile.get_or_init(|| self.build_profile(bank, row)),
            )),
            None => Ok(self.build_profile(bank, row)),
        }
    }

    /// Issues a single activation (see [`DramModule::activate_many`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the aggressor address is out of range.
    pub fn activate(
        &mut self,
        bank: BankId,
        row: RowId,
        t_on: Time,
        t_off: Time,
    ) -> DramResult<()> {
        self.activate_many(bank, row, t_on, t_off, 1)
    }

    fn stored_bit(data: &[u8], column: u32) -> bool {
        let byte = data[(column / 8) as usize];
        (byte >> (column % 8)) & 1 == 1
    }

    /// Aggregates a row's exposure ledger into the mechanism totals, noting
    /// whether the victim is sandwiched between two distance-1 aggressors
    /// (double-sided) and applying the data-pattern coupling factors.
    fn row_disturb(&self, slot: &RowSlot) -> RowDisturb {
        let mut hammer_total = 0.0;
        let mut press_total = 0.0;
        if slot.exposed {
            let mut adjacent_sides = [false, false];
            for (i, e) in slot.exposure.iter().enumerate() {
                hammer_total += e.hammer_units;
                press_total += e.press_us;
                if e.acts > 0.0 && EXPOSURE_DELTAS[i].abs() == 1 {
                    adjacent_sides[usize::from(EXPOSURE_DELTAS[i] > 0)] = true;
                }
            }
            if adjacent_sides[0] && adjacent_sides[1] {
                hammer_total *= self.fault.double_sided_hammer_bonus();
            }
        }
        let (hammer_factor, press_factor) = match slot.pattern {
            Some((p, _)) => (p.hammer_factor(), p.press_factor()),
            None => (1.0, 1.0),
        };
        let hammer_total = hammer_total * hammer_factor;
        let press_total = press_total * press_factor;

        let retention_elapsed_s = (self.now.saturating_sub(slot.last_restore)).as_secs();
        RowDisturb {
            hammer_total,
            press_total,
            retention_elapsed_s,
            check_retention: retention_elapsed_s >= 1e-3,
            check_hammer: hammer_total > 0.0,
            press_exposed: press_total > 0.0,
        }
    }

    /// The row's cached [`CellProfileTable`], building it on first use.
    fn profile<'a>(&'a self, bank: BankId, row: RowId, slot: &'a RowSlot) -> &'a CellProfileTable {
        slot.profile.get_or_init(|| self.build_profile(bank, row))
    }

    /// Builds (or fetches from the attached [`ProfileStore`]) the profile of
    /// one row under the current temperature and jitter settings.
    fn build_profile(&self, bank: BankId, row: RowId) -> Arc<CellProfileTable> {
        match &self.profile_store {
            Some(store) => store.get_or_build(self.profile_key(bank, row), || {
                self.build_profile_uncached(bank, row)
            }),
            None => Arc::new(self.build_profile_uncached(bank, row)),
        }
    }

    /// The store key of one row's profile under the current settings. A
    /// temperature or jitter change produces a different key, so stale
    /// entries interned under the old settings are never hit again — the
    /// store needs no invalidation protocol (the per-slot `OnceLock`s are
    /// still cleared by [`DramModule::invalidate_profiles`]).
    fn profile_key(&self, bank: BankId, row: RowId) -> ProfileKey {
        ProfileKey {
            model: self.model_fingerprint,
            temp_bits: self.temperature_c.to_bits(),
            jitter_sigma_bits: self.jitter_sigma.to_bits(),
            jitter_salt: self.jitter_salt,
            bank,
            row,
        }
    }

    /// The actual table build: the expensive hash pass over the row's cells.
    fn build_profile_uncached(&self, bank: BankId, row: RowId) -> CellProfileTable {
        let jitter = |addr| self.flip_jitter(addr);
        let jitter: Option<&dyn Fn(CellAddr) -> f64> = if self.jitter_sigma == 0.0 {
            None
        } else {
            Some(&jitter)
        };
        self.fault
            .cell_profile_table(bank, row, self.temperature_c, jitter)
    }

    /// Evaluates every cell of a row against its current disturbance,
    /// invoking `emit` for each bitflip; `emit` returns `false` to stop the
    /// scan. `data` is passed explicitly so [`DramModule::refresh_row`] can
    /// evaluate a buffer it temporarily owns.
    fn scan_cells(
        &self,
        bank: BankId,
        row: RowId,
        slot: &RowSlot,
        data: &[u8],
        emit: &mut dyn FnMut(Bitflip) -> bool,
    ) {
        let d = self.row_disturb(slot);
        if d.hammer_total == 0.0 && d.press_total == 0.0 && !d.check_retention {
            return;
        }
        if self.profile_caching {
            self.scan_cells_profiled(bank, row, slot, data, &d, emit);
        } else {
            self.scan_cells_reference(bank, row, data, &d, emit);
        }
    }

    /// The kernel scan, word-blocked: each 64-column word is first tested
    /// against the profile's per-word minimum thresholds ([`crate::WordMinima`])
    /// — three compares — and skipped whole when no mechanism's total reaches
    /// any cell in it. Words that can fire fall through to the exact
    /// per-bucket / per-cell scalar path, so the emitted flips (and their
    /// ascending-column order) are bit-identical to a scan without the prune.
    fn scan_cells_profiled(
        &self,
        bank: BankId,
        row: RowId,
        slot: &RowSlot,
        data: &[u8],
        d: &RowDisturb,
        emit: &mut dyn FnMut(Bitflip) -> bool,
    ) {
        let profile = self.profile(bank, row, slot);
        let check_press = d.press_exposed && profile.press_vulnerable();
        let columns = self.geometry.bits_per_row;
        let mut visited = 0u64;
        let mut skipped = 0u64;
        'words: for word in 0..profile.word_count() {
            visited += 1;
            // Word-block prune: the summary minima lower-bound every cell
            // threshold in the word regardless of charge state, so a total
            // below all three can flip nothing here.
            let wm = profile.word_minima(word);
            let can_fire = (d.check_hammer && d.hammer_total >= wm.hammer)
                || (check_press && d.press_total >= wm.press_us)
                || (d.check_retention && d.retention_elapsed_s >= wm.retention_s);
            if !can_fire {
                skipped += 1;
                continue;
            }
            let first = (word * 64) as u32;
            let last = columns.min(first + 64);
            for column in first..last {
                let bit = Self::stored_bit(data, column);
                let anti = profile.is_anti(column);
                // Bucket pruning: a total below the (polarity, residue)
                // bucket's minimum threshold is below every cell threshold in
                // the bucket, so the exact per-cell evaluation runs only for
                // cells a mechanism could actually flip.
                let flip = if anti != bit {
                    // Charge-drain mechanisms: RowPress and retention.
                    let pressed = check_press
                        && d.press_total >= profile.min_press_bucket(anti, column)
                        && d.press_total >= profile.press_threshold(column);
                    let leaked = !pressed
                        && d.check_retention
                        && d.retention_elapsed_s >= profile.min_retention_bucket(anti, column)
                        && d.retention_elapsed_s >= profile.retention_threshold_s(column);
                    if pressed {
                        Some(FlipMechanism::Press)
                    } else if leaked {
                        Some(FlipMechanism::Retention)
                    } else {
                        None
                    }
                } else if d.check_hammer
                    && d.hammer_total >= profile.min_hammer_bucket(anti, column)
                    && d.hammer_total >= profile.hammer_threshold(column)
                {
                    // Charge-injection mechanism: RowHammer.
                    Some(FlipMechanism::Hammer)
                } else {
                    None
                };
                if let Some(mechanism) = flip {
                    let keep_going = emit(Bitflip {
                        addr: CellAddr {
                            bank,
                            row,
                            column: ColumnId(column),
                        },
                        from: bit,
                        to: !bit,
                        mechanism,
                    });
                    if !keep_going {
                        break 'words;
                    }
                }
            }
        }
        SCAN_WORDS_VISITED.fetch_add(visited, Ordering::Relaxed);
        SCAN_WORDS_SKIPPED.fetch_add(skipped, Ordering::Relaxed);
    }

    /// The reference scan: every cell parameter recomputed on demand from the
    /// fault model's hash streams — the pre-kernel behavior, kept as the
    /// baseline for equivalence tests and the `perf_trial_kernel` bench.
    fn scan_cells_reference(
        &self,
        bank: BankId,
        row: RowId,
        data: &[u8],
        d: &RowDisturb,
        emit: &mut dyn FnMut(Bitflip) -> bool,
    ) {
        // Row-level bases and anchor columns hoisted out of the per-cell loop.
        let hammer_base = self.fault.row_hammer_acmin_base(bank, row);
        let press_base = self.fault.row_press_time_us(bank, row);
        let hammer_anchors = self.fault.hammer_anchor_columns(bank, row);
        let press_anchors = self.fault.press_anchor_columns(bank, row);
        let check_press = d.press_exposed && press_base.is_some();

        for column in 0..self.geometry.bits_per_row {
            let bit = Self::stored_bit(data, column);
            let addr = CellAddr {
                bank,
                row,
                column: ColumnId(column),
            };
            let jitter = self.flip_jitter(addr);
            let charged = self.fault.cell_is_charged(addr, bit);
            let flip = if charged {
                let pressed = check_press
                    && d.press_total
                        >= press_base.unwrap_or(f64::INFINITY)
                            * self
                                .fault
                                .cell_press_spread_with_anchors(addr, &press_anchors)
                            * jitter;
                let leaked = !pressed
                    && d.check_retention
                    && d.retention_elapsed_s
                        >= self.fault.cell_retention_s(addr, self.temperature_c) * jitter;
                if pressed {
                    Some(FlipMechanism::Press)
                } else if leaked {
                    Some(FlipMechanism::Retention)
                } else {
                    None
                }
            } else if d.check_hammer
                && d.hammer_total
                    >= hammer_base
                        * self
                            .fault
                            .cell_hammer_spread_with_anchors(addr, &hammer_anchors)
                        * jitter
            {
                Some(FlipMechanism::Hammer)
            } else {
                None
            };
            if let Some(mechanism) = flip {
                let keep_going = emit(Bitflip {
                    addr,
                    from: bit,
                    to: !bit,
                    mechanism,
                });
                if !keep_going {
                    return;
                }
            }
        }
    }

    /// Per-cell threshold jitter factor; 1.0 unless jitter is enabled via
    /// [`DramModule::set_flip_jitter`].
    fn flip_jitter(&self, addr: CellAddr) -> f64 {
        if self.jitter_sigma == 0.0 {
            return 1.0;
        }
        let h = crate::math::hash_words(&[
            self.jitter_salt,
            0xB1u64,
            u64::from(addr.bank.0),
            u64::from(addr.row.0),
            u64::from(addr.column.0),
        ]);
        // Cheap approximately-normal deviate from a uniform: uniform on
        // [-sqrt(3), sqrt(3)] has unit variance.
        let z = (crate::math::to_unit_open(h) - 0.5) * 2.0 * 3f64.sqrt();
        (self.jitter_sigma * z).exp()
    }

    /// Enables per-check threshold jitter: cell flip thresholds are multiplied
    /// by a small lognormal factor derived from `salt`. The repeatability
    /// study (paper Appendix E) uses a different salt per iteration to model
    /// run-to-run variation of borderline cells; `sigma = 0` (the default)
    /// makes the device fully deterministic.
    pub fn set_flip_jitter(&mut self, sigma: f64, salt: u64) {
        if self.jitter_sigma != sigma || self.jitter_salt != salt {
            self.jitter_sigma = sigma;
            self.jitter_salt = salt;
            // Cached profiles bake the jitter factors into their thresholds.
            self.invalidate_profiles();
        }
    }

    /// Computes the bitflips currently present in a row, without modifying
    /// state. The evaluation is deterministic: the same exposure always yields
    /// the same set of flips.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn check_row(&self, bank: BankId, row: RowId) -> DramResult<Vec<Bitflip>> {
        let mut flips = Vec::new();
        self.check_row_append(bank, row, &mut flips)?;
        Ok(flips)
    }

    /// [`DramModule::check_row`] into a caller-provided buffer: flips are
    /// *appended* to `out` (the buffer is not cleared), so a probe loop can
    /// reuse one accumulator across rows and probes without reallocating.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn check_row_append(
        &self,
        bank: BankId,
        row: RowId,
        out: &mut Vec<Bitflip>,
    ) -> DramResult<()> {
        let slot = self.slot_initialized(bank, row)?;
        self.scan_cells(bank, row, slot, &slot.data, &mut |flip| {
            out.push(flip);
            true
        });
        Ok(())
    }

    /// Fast check whether a row currently contains at least one bitflip.
    /// Used by the ACmin bisection search, whose probes only need a yes/no
    /// answer. For a row still holding an unmodified repeating-byte pattern
    /// the answer comes from the profile's precomputed per-pattern minimum
    /// thresholds — O(1) in the row size; otherwise the cell scan early-exits
    /// at the first flipped cell. Allocation-free either way.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn has_bitflip(&self, bank: BankId, row: RowId) -> DramResult<bool> {
        let slot = self.slot_initialized(bank, row)?;
        if self.profile_caching && slot.pristine {
            if let Some((pattern, role)) = slot.pattern {
                let d = self.row_disturb(slot);
                if d.hammer_total == 0.0 && d.press_total == 0.0 && !d.check_retention {
                    return Ok(false);
                }
                let profile = self.profile(bank, row, slot);
                let minima = profile.min_thresholds_for_fill(pattern.fill_byte(role));
                let check_press = d.press_exposed && profile.press_vulnerable();
                return Ok((check_press && d.press_total >= minima.press_us)
                    || (d.check_retention && d.retention_elapsed_s >= minima.retention_s)
                    || (d.check_hammer && d.hammer_total >= minima.hammer));
            }
        }
        let mut found = false;
        self.scan_cells(bank, row, slot, &slot.data, &mut |_| {
            found = true;
            false
        });
        Ok(found)
    }

    /// Reads a row back: the initialized data with any current bitflips
    /// applied. Allocates the returned buffer; the probe-loop variant is
    /// [`DramModule::read_row_into`].
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn read_row(&self, bank: BankId, row: RowId) -> DramResult<Vec<u8>> {
        let mut data = Vec::new();
        self.read_row_into(bank, row, &mut data)?;
        Ok(data)
    }

    /// [`DramModule::read_row`] into a caller-provided buffer (cleared and
    /// refilled), so repeated readback reuses one allocation instead of
    /// cloning the row on every call.
    ///
    /// # Errors
    ///
    /// Returns an error if the row is out of range or not initialized.
    pub fn read_row_into(&self, bank: BankId, row: RowId, out: &mut Vec<u8>) -> DramResult<()> {
        let slot = self.slot_initialized(bank, row)?;
        out.clear();
        out.extend_from_slice(&slot.data);
        self.scan_cells(bank, row, slot, &slot.data, &mut |flip| {
            apply_flip(out, &flip);
            true
        });
        Ok(())
    }

    /// Convenience: counts the bitflips in a set of rows.
    ///
    /// # Errors
    ///
    /// Returns an error if any row is out of range or not initialized.
    pub fn count_bitflips(&self, bank: BankId, rows: &[RowId]) -> DramResult<usize> {
        let mut total = 0;
        for &row in rows {
            total += self.check_row(bank, row)?.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::module_inventory;

    fn samsung_b_module() -> DramModule {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "S0")
            .unwrap();
        DramModule::new(&spec, Geometry::tiny())
    }

    fn micron_8gb_module() -> DramModule {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "M0")
            .unwrap();
        DramModule::new(&spec, Geometry::tiny())
    }

    #[test]
    fn init_and_read_round_trip_without_disturbance() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(bank, RowId(5), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        let data = m.read_row(bank, RowId(5)).unwrap();
        assert!(data.iter().all(|&b| b == 0x55));
        assert!(m.check_row(bank, RowId(5)).unwrap().is_empty());
    }

    #[test]
    fn uninitialized_row_errors() {
        let m = samsung_b_module();
        assert_eq!(
            m.check_row(BankId(0), RowId(1)).unwrap_err(),
            DramError::RowNotInitialized {
                bank: BankId(0),
                row: RowId(1)
            }
        );
        assert!(matches!(
            m.check_row(BankId(50), RowId(1)),
            Err(DramError::InvalidBank { .. })
        ));
        assert!(matches!(
            m.check_row(BankId(0), RowId(9999)),
            Err(DramError::InvalidRow { .. })
        ));
    }

    #[test]
    fn wrong_data_size_rejected() {
        let mut m = samsung_b_module();
        let err = m.init_row(BankId(0), RowId(0), vec![0u8; 3]).unwrap_err();
        assert!(matches!(err, DramError::DataSizeMismatch { .. }));
    }

    #[test]
    fn long_press_flips_bits_in_adjacent_row() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        let aggr = RowId(20);
        let victim = RowId(21);
        m.init_row_pattern(bank, aggr, DataPattern::Checkerboard, RowRole::Aggressor)
            .unwrap();
        m.init_row_pattern(bank, victim, DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(bank, aggr, Time::from_ms(30.0), Time::from_ns(15.0), 10)
            .unwrap();
        let flips = m.check_row(bank, victim).unwrap();
        assert!(
            !flips.is_empty(),
            "a 10x30ms press should flip the weakest cells"
        );
        assert!(flips.iter().all(|f| f.mechanism == FlipMechanism::Press));
        // With the checkerboard pattern press flips are dominantly 1 -> 0 for
        // a die with few anti-cells.
        let one_to_zero = flips.iter().filter(|f| f.is_one_to_zero()).count();
        assert!(one_to_zero * 2 >= flips.len());
    }

    #[test]
    fn short_hammer_does_not_flip_but_many_hammers_do() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        let aggr = RowId(30);
        let victim = RowId(31);
        m.init_row_pattern(bank, aggr, DataPattern::Checkerboard, RowRole::Aggressor)
            .unwrap();
        m.init_row_pattern(bank, victim, DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        let t = *m.timing();
        m.activate_many(bank, aggr, t.t_ras, t.t_rp, 1_000).unwrap();
        assert!(
            m.check_row(bank, victim).unwrap().is_empty(),
            "1K activations must not flip a ~270K-ACmin die"
        );
        // Hammer well beyond the worst-case ACmin of the die.
        m.activate_many(bank, aggr, t.t_ras, t.t_rp, 2_000_000)
            .unwrap();
        let flips = m.check_row(bank, victim).unwrap();
        assert!(!flips.is_empty());
        assert!(flips.iter().all(|f| f.mechanism == FlipMechanism::Hammer));
    }

    #[test]
    fn press_invulnerable_die_survives_long_press() {
        let mut m = micron_8gb_module();
        let bank = BankId(0);
        m.init_row_pattern(
            bank,
            RowId(10),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(11), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(
            bank,
            RowId(10),
            Time::from_ms(30.0),
            Time::from_ns(15.0),
            10,
        )
        .unwrap();
        assert!(m.check_row(bank, RowId(11)).unwrap().is_empty());
    }

    #[test]
    fn init_clears_accumulated_disturbance() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(40),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(41), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(
            bank,
            RowId(40),
            Time::from_ms(30.0),
            Time::from_ns(15.0),
            10,
        )
        .unwrap();
        assert!(!m.check_row(bank, RowId(41)).unwrap().is_empty());
        // Re-initializing the victim restores its charge.
        m.init_row_pattern(bank, RowId(41), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        assert!(m.check_row(bank, RowId(41)).unwrap().is_empty());
    }

    #[test]
    fn refresh_row_stops_further_disturbance_accumulation() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(50),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(51), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        // Accumulate just under the flip threshold, refresh, accumulate again:
        // no flips because the exposure never adds up across the refresh.
        m.activate_many(bank, RowId(50), Time::from_ms(15.0), Time::from_ns(15.0), 1)
            .unwrap();
        m.refresh_row(bank, RowId(51)).unwrap();
        m.activate_many(bank, RowId(50), Time::from_ms(15.0), Time::from_ns(15.0), 1)
            .unwrap();
        let after_refresh = m.check_row(bank, RowId(51)).unwrap().len();
        // Compare with the same total exposure without the refresh.
        let mut m2 = samsung_b_module();
        m2.init_row_pattern(
            bank,
            RowId(50),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m2.init_row_pattern(bank, RowId(51), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m2.activate_many(bank, RowId(50), Time::from_ms(15.0), Time::from_ns(15.0), 2)
            .unwrap();
        let without_refresh = m2.check_row(bank, RowId(51)).unwrap().len();
        assert!(after_refresh <= without_refresh);
    }

    #[test]
    fn retention_failures_appear_after_long_unrefreshed_idle() {
        let mut m = samsung_b_module();
        m.set_temperature(80.0);
        let bank = BankId(0);
        m.init_row_pattern(bank, RowId(3), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.idle(Time::from_secs(4.0));
        let flips = m.check_row(bank, RowId(3)).unwrap();
        // A 1024-bit tiny row may or may not contain a retention-weak cell;
        // what must hold is that all flips (if any) are retention flips and
        // that a freshly refreshed row has none.
        assert!(flips
            .iter()
            .all(|f| f.mechanism == FlipMechanism::Retention));
        m.refresh_row(bank, RowId(3)).unwrap();
        assert!(m.check_row(bank, RowId(3)).unwrap().is_empty());
    }

    #[test]
    fn clock_and_activation_accounting() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(10),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        assert_eq!(m.now(), Time::ZERO);
        m.activate_many(
            bank,
            RowId(10),
            Time::from_ns(36.0),
            Time::from_ns(15.0),
            100,
        )
        .unwrap();
        assert_eq!(m.activation_count(), 100);
        assert_eq!(m.now(), Time::from_ns(51.0) * 100);
        m.idle(Time::from_us(1.0));
        assert_eq!(m.now(), Time::from_ns(51.0) * 100 + Time::from_us(1.0));
        m.reset();
        assert_eq!(m.now(), Time::ZERO);
        assert_eq!(m.activation_count(), 0);
    }

    #[test]
    fn double_sided_amplifies_hammer() {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "S3")
            .unwrap(); // 8Gb D-die, weak
        let bank = BankId(1);
        let t = TimingParams::ddr4();
        // Single-sided: AC activations of one neighbour.
        let mut single = DramModule::new(&spec, Geometry::tiny());
        single
            .init_row_pattern(
                bank,
                RowId(20),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        single
            .init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        // Double-sided: the same *total* AC split across both neighbours.
        let mut double = DramModule::new(&spec, Geometry::tiny());
        double
            .init_row_pattern(
                bank,
                RowId(20),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        double
            .init_row_pattern(
                bank,
                RowId(22),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
        double
            .init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        let ac_total = 60_000u64;
        single
            .activate_many(bank, RowId(20), t.t_ras, t.t_rp, ac_total)
            .unwrap();
        double
            .activate_many(bank, RowId(20), t.t_ras, t.t_rp, ac_total / 2)
            .unwrap();
        double
            .activate_many(bank, RowId(22), t.t_ras, t.t_rp, ac_total / 2)
            .unwrap();
        let single_flips = single.check_row(bank, RowId(21)).unwrap().len();
        let double_flips = double.check_row(bank, RowId(21)).unwrap().len();
        assert!(
            double_flips >= single_flips,
            "double-sided RowHammer must be at least as effective (single {single_flips}, double {double_flips})"
        );
    }

    #[test]
    fn read_row_applies_flips_to_data() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(20),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(
            bank,
            RowId(20),
            Time::from_ms(30.0),
            Time::from_ns(15.0),
            10,
        )
        .unwrap();
        let flips = m.check_row(bank, RowId(21)).unwrap();
        let data = m.read_row(bank, RowId(21)).unwrap();
        for f in &flips {
            let byte = data[(f.addr.column.0 / 8) as usize];
            let bit = (byte >> (f.addr.column.0 % 8)) & 1 == 1;
            assert_eq!(bit, f.to);
        }
        let initial = m.initialized_data(bank, RowId(21)).unwrap();
        assert!(initial.iter().all(|&b| b == 0x55));
        assert_eq!(m.count_bitflips(bank, &[RowId(21)]).unwrap(), flips.len());
    }

    #[test]
    fn scratch_apis_match_allocating_apis() {
        let mut m = samsung_b_module();
        let bank = BankId(1);
        m.init_row_pattern(
            bank,
            RowId(20),
            DataPattern::Checkerboard,
            RowRole::Aggressor,
        )
        .unwrap();
        m.init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
            .unwrap();
        m.activate_many(
            bank,
            RowId(20),
            Time::from_ms(30.0),
            Time::from_ns(15.0),
            10,
        )
        .unwrap();
        let flips = m.check_row(bank, RowId(21)).unwrap();
        assert!(!flips.is_empty());
        // check_row_append appends without clearing.
        let mut buf = vec![flips[0]];
        m.check_row_append(bank, RowId(21), &mut buf).unwrap();
        assert_eq!(buf.len(), flips.len() + 1);
        assert_eq!(&buf[1..], flips.as_slice());
        // read_row_into clears and refills the caller's buffer.
        let mut data = vec![0xFFu8; 3];
        m.read_row_into(bank, RowId(21), &mut data).unwrap();
        assert_eq!(data, m.read_row(bank, RowId(21)).unwrap());
        assert!(m.has_bitflip(bank, RowId(21)).unwrap());
    }

    #[test]
    fn reference_mode_produces_identical_flips() {
        let run = |caching: bool| {
            let mut m = samsung_b_module();
            m.set_profile_caching(caching);
            assert_eq!(m.profile_caching(), caching);
            let bank = BankId(1);
            m.init_row_pattern(
                bank,
                RowId(20),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
            m.init_row_pattern(bank, RowId(21), DataPattern::Checkerboard, RowRole::Victim)
                .unwrap();
            m.activate_many(
                bank,
                RowId(20),
                Time::from_ms(20.0),
                Time::from_ns(15.0),
                12,
            )
            .unwrap();
            m.check_row(bank, RowId(21)).unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn temperature_change_invalidates_cached_profiles() {
        let mut m = samsung_b_module();
        let bank = BankId(0);
        let r = RowId(5);
        let cold = m.cell_profiles(bank, r).unwrap().retention_threshold_s(0);
        m.set_temperature(80.0);
        let hot = m.cell_profiles(bank, r).unwrap().retention_threshold_s(0);
        assert!(
            hot < cold,
            "retention must shorten with temperature (cold {cold}, hot {hot})"
        );
        // Jitter perturbs thresholds; probe the anchor cell, whose threshold
        // is finite by construction.
        m.set_temperature(50.0);
        let anchor = m.fault_model().hammer_anchor_columns(bank, r)[0];
        let t1 = m.cell_profiles(bank, r).unwrap().hammer_threshold(anchor);
        m.set_flip_jitter(0.2, 99);
        let t2 = m.cell_profiles(bank, r).unwrap().hammer_threshold(anchor);
        assert_ne!(t1, t2, "jitter must perturb cached thresholds");
    }

    #[test]
    fn higher_temperature_yields_more_press_flips() {
        let spec = module_inventory()
            .into_iter()
            .find(|m| m.id == "H0")
            .unwrap(); // theta80 = 3.8
        let bank = BankId(1);
        let run = |temp: f64| {
            let mut m = DramModule::new(&spec, Geometry::tiny());
            m.set_temperature(temp);
            m.init_row_pattern(
                bank,
                RowId(10),
                DataPattern::Checkerboard,
                RowRole::Aggressor,
            )
            .unwrap();
            m.init_row_pattern(bank, RowId(11), DataPattern::Checkerboard, RowRole::Victim)
                .unwrap();
            m.activate_many(
                bank,
                RowId(10),
                Time::from_us(70.2),
                Time::from_ns(15.0),
                600,
            )
            .unwrap();
            m.check_row(bank, RowId(11)).unwrap().len()
        };
        assert!(run(80.0) >= run(50.0));
        assert!(run(80.0) > 0);
    }
}
