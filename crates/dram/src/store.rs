//! Cross-trial interning of precomputed row profiles.
//!
//! Building a row's [`CellProfileTable`] is the single most expensive step of
//! a cold trial: one full hash pass over the row's cells. Within one
//! [`DramModule`](crate::DramModule) the table is cached per row slot, but a
//! campaign constructs a *fresh module per trial* (that is what makes trial
//! outcomes independent of scheduling), so the several tAggON points it
//! probes per (module, row) site used to rebuild identical tables over and
//! over.
//!
//! [`ProfileStore`] closes that gap: a process-wide, `Arc`-shared, read-only
//! intern table keyed by everything a build depends on — the fault model's
//! [`fingerprint`](crate::FaultModel::fingerprint) (seed, die calibration,
//! geometry, timing, physics config), build temperature, jitter setting, bank
//! and row. Modules with a store attached
//! ([`DramModule::set_profile_store`](crate::DramModule::set_profile_store))
//! consult it before building; the first trial to need a table builds and
//! donates it, every later trial clones the `Arc`. Temperature or jitter
//! changes need no invalidation protocol: they change the key, so stale
//! entries are simply never hit again.
//!
//! The store never returns an approximate table — a hit is keyed on the full
//! build identity, so interned tables are bit-equal to freshly built ones and
//! flip output stays byte-identical. Hit/miss counters expose how much work
//! the interning saves; the `perf_trial_kernel` bench records the rate.
//!
//! # Example
//!
//! Two modules of the same spec share one store: the second module's lookup
//! is a hit and yields literally the same allocation.
//!
//! ```
//! use rowpress_dram::{module_inventory, BankId, DramModule, Geometry, ProfileStore, RowId};
//! use std::sync::Arc;
//!
//! let store = ProfileStore::new();
//! let spec = module_inventory().remove(0);
//! let mut first = DramModule::new(&spec, Geometry::tiny());
//! first.set_profile_store(store.clone());
//! let mut second = DramModule::new(&spec, Geometry::tiny());
//! second.set_profile_store(store.clone());
//!
//! let built = first.cell_profiles(BankId(0), RowId(3))?;
//! let interned = second.cell_profiles(BankId(0), RowId(3))?;
//! assert!(Arc::ptr_eq(&built, &interned));
//! assert_eq!((store.misses(), store.hits()), (1, 1));
//! # Ok::<(), rowpress_dram::DramError>(())
//! ```

use crate::address::{BankId, RowId};
use crate::disturb::CellProfileTable;
use fxhash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The full build identity of one interned [`CellProfileTable`].
///
/// Everything [`FaultModel::cell_profile_table`](crate::FaultModel) reads is
/// either in here or covered by the model fingerprint, so equal keys imply
/// bit-identical tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ProfileKey {
    /// [`FaultModel::fingerprint`](crate::FaultModel::fingerprint): seed, die
    /// calibration, geometry, timing and physics configuration.
    pub model: u64,
    /// Build temperature, raw `f64` bits (the build bakes it into the
    /// retention thresholds).
    pub temp_bits: u64,
    /// Jitter sigma, raw `f64` bits; `0.0f64.to_bits()` when disabled.
    pub jitter_sigma_bits: u64,
    /// Jitter salt; 0 when disabled.
    pub jitter_salt: u64,
    /// The profiled row's bank.
    pub bank: BankId,
    /// The profiled row.
    pub row: RowId,
}

#[derive(Debug, Default)]
struct StoreInner {
    /// One `OnceLock` cell per key, following the `TrialCache` pattern: the
    /// map lock is held only to find or insert the cell, never across a
    /// build, so concurrent workers building *different* rows do not
    /// serialize and workers racing on the *same* row build it exactly once.
    tables: Mutex<FxHashMap<ProfileKey, Arc<OnceLock<Arc<CellProfileTable>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A process-wide intern table of built [`CellProfileTable`]s, shared across
/// trials (and threads) so each distinct row profile is built once per
/// process instead of once per trial. The module-level docs describe the
/// data flow and hold a runnable example.
///
/// Clones share storage; the type is cheap to clone and `Send + Sync`.
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    inner: Arc<StoreInner>,
}

impl ProfileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide store: every engine worker's scratch binds to this
    /// one by default, so concurrent trials — and successive engine runs in
    /// one process — share builds.
    pub fn global() -> ProfileStore {
        static GLOBAL: OnceLock<ProfileStore> = OnceLock::new();
        GLOBAL.get_or_init(ProfileStore::new).clone()
    }

    /// Number of lookups answered from an already-interned table.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to build (and donate) the table.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered without a build (0.0 for a fresh store).
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits(), self.misses());
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// Number of interned tables.
    pub fn len(&self) -> usize {
        self.inner.tables.lock().expect("profile store lock").len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The interned table for `key`, building and donating it on first need.
    /// A lookup that finds another thread mid-build waits for that build and
    /// counts as a hit (it paid no build itself).
    pub(crate) fn get_or_build(
        &self,
        key: ProfileKey,
        build: impl FnOnce() -> CellProfileTable,
    ) -> Arc<CellProfileTable> {
        let cell = {
            let mut tables = self.inner.tables.lock().expect("profile store lock");
            Arc::clone(tables.entry(key).or_default())
        };
        let mut built = false;
        let table = cell.get_or_init(|| {
            built = true;
            Arc::new(build())
        });
        let counter = if built {
            &self.inner.misses
        } else {
            &self.inner.hits
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Arc::clone(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disturb::FaultModel;
    use crate::profile::{find_die, DieDensity, Manufacturer};
    use crate::Geometry;

    fn key(row: u32) -> ProfileKey {
        ProfileKey {
            model: 1,
            temp_bits: 50.0f64.to_bits(),
            jitter_sigma_bits: 0.0f64.to_bits(),
            jitter_salt: 0,
            bank: BankId(0),
            row: RowId(row),
        }
    }

    fn table(row: u32) -> CellProfileTable {
        let die = find_die(Manufacturer::S, DieDensity::Gb8, 'B').unwrap();
        let model = FaultModel::with_defaults(die, Geometry::tiny(), 0x77);
        model.cell_profile_table(BankId(0), RowId(row), 50.0, None)
    }

    #[test]
    fn interns_once_per_key_and_counts_hits() {
        let store = ProfileStore::new();
        assert!(store.is_empty());
        let mut builds = 0;
        let a = store.get_or_build(key(1), || {
            builds += 1;
            table(1)
        });
        let b = store.get_or_build(key(1), || {
            builds += 1;
            table(1)
        });
        assert_eq!(builds, 1, "second lookup must not rebuild");
        assert!(Arc::ptr_eq(&a, &b));
        let c = store.get_or_build(key(2), || table(2));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!((store.misses(), store.hits()), (2, 1));
        assert_eq!(store.len(), 2);
        assert!((store.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_storage_and_counters() {
        let store = ProfileStore::new();
        let clone = store.clone();
        let a = store.get_or_build(key(5), || table(5));
        let b = clone.get_or_build(key(5), || table(5));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((clone.misses(), clone.hits()), (1, 1));
    }

    #[test]
    fn concurrent_lookups_build_exactly_once() {
        let store = ProfileStore::new();
        let builds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    store.get_or_build(key(9), || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        table(9)
                    });
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(store.misses() + store.hits(), 8);
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProfileStore>();
    }
}
