//! DRAM geometry and addressing (paper §2.1).
//!
//! The hierarchy is channel → rank → chip → bank → row → column. The
//! characterization operates on one bank at a time and addresses individual
//! rows and cells within that bank, so the types here model bank-local
//! geometry plus logical-to-physical row remapping.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a bank within a rank.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BankId(pub u16);

/// Identifies a DRAM row within a bank. Row ids used by the characterization
/// code are **physical** row numbers (i.e. after reverse-engineering the
/// in-DRAM remapping), so adjacency in id space means physical adjacency.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RowId(pub u32);

impl RowId {
    /// Returns the row at signed offset `delta`, or `None` if it would fall
    /// outside `[0, rows)`.
    pub fn offset(self, delta: i64, rows: u32) -> Option<RowId> {
        let target = i64::from(self.0) + delta;
        if target < 0 || target >= i64::from(rows) {
            None
        } else {
            Some(RowId(target as u32))
        }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifies one cell (one bit) within a row.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ColumnId(pub u32);

/// A fully qualified cell address within a module: bank, row, column(bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellAddr {
    /// Bank containing the cell.
    pub bank: BankId,
    /// Physical row containing the cell.
    pub row: RowId,
    /// Bit position within the row.
    pub column: ColumnId,
}

impl fmt::Display for CellAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}/{}/c{}", self.bank.0, self.row, self.column.0)
    }
}

/// Bank-local geometry of a DRAM module under test.
///
/// The real modules in the paper have 32K–128K rows per bank and 65536 bits
/// (8 KiB) per row. The characterization benches use a scaled-down geometry by
/// default so the full figure suite runs in minutes; the geometry is entirely
/// configurable.
///
/// # Examples
///
/// ```
/// use rowpress_dram::Geometry;
///
/// let g = Geometry::scaled_down();
/// assert!(g.rows_per_bank >= 64);
/// assert_eq!(g.bytes_per_row() * 8, g.bits_per_row as usize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of banks in the module (per rank; the study uses bank 1).
    pub banks: u16,
    /// Number of rows per bank.
    pub rows_per_bank: u32,
    /// Number of bits (cells) per row.
    pub bits_per_row: u32,
    /// Number of bits per DRAM burst / cache block (512 bits = 64 B).
    pub bits_per_cache_block: u32,
}

impl Geometry {
    /// Geometry of a real 8 Gb x8 DDR4 die: 65536 rows per bank, 8 KiB rows.
    pub fn ddr4_8gb() -> Self {
        Geometry {
            banks: 16,
            rows_per_bank: 65536,
            bits_per_row: 65536,
            bits_per_cache_block: 512,
        }
    }

    /// Scaled-down geometry used by the default characterization benches:
    /// 16 banks, 1024 rows per bank, 8192-bit rows (16 cache blocks).
    pub fn scaled_down() -> Self {
        Geometry {
            banks: 16,
            rows_per_bank: 1024,
            bits_per_row: 8192,
            bits_per_cache_block: 512,
        }
    }

    /// A tiny geometry for unit tests.
    pub fn tiny() -> Self {
        Geometry {
            banks: 2,
            rows_per_bank: 64,
            bits_per_row: 1024,
            bits_per_cache_block: 512,
        }
    }

    /// Number of bytes per row.
    pub fn bytes_per_row(&self) -> usize {
        (self.bits_per_row as usize) / 8
    }

    /// Number of cache blocks (64 B units) per row; 128 for a real 8 KiB row.
    pub fn cache_blocks_per_row(&self) -> u32 {
        self.bits_per_row / self.bits_per_cache_block
    }

    /// Returns true if `row` is a valid row index.
    pub fn contains_row(&self, row: RowId) -> bool {
        row.0 < self.rows_per_bank
    }

    /// Returns true if `bank` is a valid bank index.
    pub fn contains_bank(&self, bank: BankId) -> bool {
        bank.0 < self.banks
    }

    /// The rows tested by the paper's methodology: the first, middle and last
    /// `chunk` rows of the bank (the paper uses chunk = 1024 on real banks).
    /// Rows are deduplicated when the bank is small.
    pub fn tested_rows(&self, chunk: u32) -> Vec<RowId> {
        let n = self.rows_per_bank;
        let chunk = chunk.min(n);
        let mut rows: Vec<u32> = Vec::new();
        rows.extend(0..chunk);
        let mid_start = (n / 2).saturating_sub(chunk / 2);
        rows.extend(mid_start..(mid_start + chunk).min(n));
        rows.extend(n.saturating_sub(chunk)..n);
        rows.sort_unstable();
        rows.dedup();
        rows.into_iter().map(RowId).collect()
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint (zero-sized
    /// dimensions, row size not a multiple of the cache-block size, ...).
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 || self.rows_per_bank == 0 || self.bits_per_row == 0 {
            return Err("geometry dimensions must be positive".into());
        }
        if !self.bits_per_row.is_multiple_of(8) {
            return Err("bits_per_row must be a multiple of 8".into());
        }
        if self.bits_per_cache_block == 0
            || !self.bits_per_row.is_multiple_of(self.bits_per_cache_block)
        {
            return Err("bits_per_row must be a multiple of the cache-block size".into());
        }
        Ok(())
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::scaled_down()
    }
}

/// In-DRAM logical→physical row remapping (paper §3.2 and the references to
/// row-address scrambling).
///
/// Real DRAM devices remap logical row addresses internally; the paper
/// reverse-engineers the mapping so that "adjacent" rows in its experiments
/// are physically adjacent. We model the most common scheme observed in the
/// literature: within each block of `group` rows, pairs of rows are swapped
/// according to a per-module XOR mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowMapping {
    /// XOR mask applied to the low bits of the logical row address.
    pub xor_mask: u32,
    /// Size of the remapping group (power of two).
    pub group: u32,
}

impl RowMapping {
    /// Identity mapping (logical == physical).
    pub fn identity() -> Self {
        RowMapping {
            xor_mask: 0,
            group: 1,
        }
    }

    /// A typical vendor mapping that swaps neighbours within groups of 8 rows.
    pub fn vendor_default(seed: u64) -> Self {
        // Derive a small mask deterministically from the module seed so
        // different modules get different (but fixed) scrambling.
        let mask = ((seed >> 17) & 0x6) as u32 | 0x1;
        RowMapping {
            xor_mask: mask,
            group: 8,
        }
    }

    /// Maps a logical row address to its physical row address.
    pub fn logical_to_physical(&self, logical: RowId) -> RowId {
        if self.group <= 1 {
            return logical;
        }
        let base = logical.0 & !(self.group - 1);
        let offset = (logical.0 & (self.group - 1)) ^ (self.xor_mask & (self.group - 1));
        RowId(base | offset)
    }

    /// Maps a physical row address back to the logical address that selects it.
    pub fn physical_to_logical(&self, physical: RowId) -> RowId {
        // The XOR-within-group scheme is an involution.
        self.logical_to_physical(physical)
    }
}

impl Default for RowMapping {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_offsets_respect_bounds() {
        let r = RowId(5);
        assert_eq!(r.offset(1, 64), Some(RowId(6)));
        assert_eq!(r.offset(-1, 64), Some(RowId(4)));
        assert_eq!(r.offset(-6, 64), None);
        assert_eq!(RowId(63).offset(1, 64), None);
        assert_eq!(RowId(0).offset(0, 1), Some(RowId(0)));
    }

    #[test]
    fn geometry_derived_quantities() {
        let g = Geometry::ddr4_8gb();
        assert_eq!(g.bytes_per_row(), 8192);
        assert_eq!(g.cache_blocks_per_row(), 128);
        assert!(g.validate().is_ok());
        let g = Geometry::tiny();
        assert_eq!(g.cache_blocks_per_row(), 2);
        assert!(g.contains_row(RowId(63)));
        assert!(!g.contains_row(RowId(64)));
        assert!(g.contains_bank(BankId(1)));
        assert!(!g.contains_bank(BankId(2)));
    }

    #[test]
    fn geometry_validation_catches_errors() {
        let mut g = Geometry::tiny();
        g.bits_per_row = 1023;
        assert!(g.validate().is_err());
        let mut g = Geometry::tiny();
        g.rows_per_bank = 0;
        assert!(g.validate().is_err());
        let mut g = Geometry::tiny();
        g.bits_per_cache_block = 300;
        assert!(g.validate().is_err());
    }

    #[test]
    fn tested_rows_cover_first_middle_last() {
        let g = Geometry {
            banks: 1,
            rows_per_bank: 4096,
            bits_per_row: 1024,
            bits_per_cache_block: 512,
        };
        let rows = g.tested_rows(64);
        assert!(rows.contains(&RowId(0)));
        assert!(rows.contains(&RowId(63)));
        assert!(rows.contains(&RowId(4095)));
        assert!(rows.contains(&RowId(2048)));
        assert_eq!(rows.len(), 192);
        // Small bank: rows are deduplicated, never exceeding the bank size.
        let g = Geometry::tiny();
        let rows = g.tested_rows(1024);
        assert_eq!(rows.len(), 64);
    }

    #[test]
    fn row_mapping_is_involution() {
        let m = RowMapping::vendor_default(0xDEADBEEF);
        for r in 0..256u32 {
            let phys = m.logical_to_physical(RowId(r));
            assert_eq!(m.physical_to_logical(phys), RowId(r));
        }
        let id = RowMapping::identity();
        assert_eq!(id.logical_to_physical(RowId(42)), RowId(42));
    }

    #[test]
    fn cell_addr_display_is_informative() {
        let c = CellAddr {
            bank: BankId(1),
            row: RowId(7),
            column: ColumnId(13),
        };
        assert_eq!(format!("{c}"), "b1/R7/c13");
    }
}
