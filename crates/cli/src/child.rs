//! The `__shard` child mode: one shard process of a campaign.
//!
//! A child derives the same plan as the parent from the spec file, runs its
//! [`Plan::shard`](rowpress_core::engine::Plan::shard) through
//! [`run_shard`] (persistent cache flushed after every record), and speaks
//! a line protocol on stdout — the parent's only view of its health:
//!
//! ```text
//! ##rowpress-shard start index=0 of=2 total=36 preloaded=0
//! ##rowpress-shard progress done=1 total=36 computed=1 replayed=0
//! ...
//! ##rowpress-shard done total=36 computed=36 replayed=0
//! ```
//!
//! Every line doubles as a heartbeat: the parent kills and respawns a shard
//! whose stdout goes quiet past the stall timeout. The `--fault` options
//! exist for the orchestrator's own tests: they crash (`exit-after`) or
//! wedge (`hang-after`) the child once it has *computed* (not replayed) N
//! trials, which exercises exactly the crash/stall recovery paths.

use crate::{parse_number, CliError, EXIT_FAULT, EXIT_OK, EXIT_RUN, EXIT_SPEC};
use rowpress_core::campaign::{run_shard, CampaignError, CampaignSpec, ShardEvent};
use std::fmt;
use std::io::Write;
use std::path::PathBuf;

/// The line prefix of the child protocol; everything else on a child's
/// stdout is free-form logging.
pub const PROTOCOL_PREFIX: &str = "##rowpress-shard";

/// A test-only fault injected into a shard incarnation, triggered once the
/// incarnation has computed (cache-missed) the given number of trials. A
/// fully resumed incarnation computes nothing, so the fault no longer fires
/// and the shard completes — which is what lets the recovery tests converge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Exit with [`EXIT_FAULT`] after computing N trials.
    ExitAfter(u64),
    /// Stop emitting heartbeats (sleep forever) after computing N trials.
    HangAfter(u64),
}

impl Fault {
    /// Parses the `KIND=N` form used by `--fault` (`exit-after=5`,
    /// `hang-after=3`).
    pub fn parse(text: &str) -> Result<Fault, CliError> {
        let (kind, n) = text
            .split_once('=')
            .ok_or_else(|| CliError::usage(format!("malformed fault `{text}` (want KIND=N)")))?;
        let n: u64 = n
            .parse()
            .map_err(|_| CliError::usage(format!("fault count `{n}` is not an integer")))?;
        if n == 0 {
            return Err(CliError::usage("fault count must be positive"));
        }
        match kind {
            "exit-after" => Ok(Fault::ExitAfter(n)),
            "hang-after" => Ok(Fault::HangAfter(n)),
            other => Err(CliError::usage(format!(
                "unknown fault kind `{other}` (want exit-after or hang-after)"
            ))),
        }
    }

    /// The child argument this fault round-trips through.
    pub fn to_arg(self) -> String {
        match self {
            Fault::ExitAfter(n) => format!("exit-after={n}"),
            Fault::HangAfter(n) => format!("hang-after={n}"),
        }
    }
}

/// Parsed arguments of the hidden `__shard` mode.
#[derive(Debug)]
pub struct ShardArgs {
    /// The spec file (the parent passes its resolved `campaign.json`).
    pub spec: PathBuf,
    /// This shard's index.
    pub index: usize,
    /// Total shard count.
    pub of: usize,
    /// The shard's persistent-cache file.
    pub cache: PathBuf,
    /// The shard's JSONL output file.
    pub out: PathBuf,
    /// Injected test fault, if any.
    pub fault: Option<Fault>,
}

impl ShardArgs {
    /// Parses `__shard <SPEC> --index I --of N --cache FILE --out FILE
    /// [--fault KIND=N]`.
    pub fn parse(operand: Option<&String>, rest: &[String]) -> Result<ShardArgs, CliError> {
        let spec = operand.ok_or_else(|| CliError::usage("__shard: missing <SPEC>"))?;
        let mut index = None;
        let mut of = None;
        let mut cache = None;
        let mut out = None;
        let mut fault = None;
        let mut args = rest.iter();
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .cloned()
                    .ok_or_else(|| CliError::usage(format!("__shard: {name} needs a value")))
            };
            match flag.as_str() {
                "--index" => index = Some(parse_number(&value("--index")?, "--index")?),
                "--of" => of = Some(parse_number(&value("--of")?, "--of")?),
                "--cache" => cache = Some(PathBuf::from(value("--cache")?)),
                "--out" => out = Some(PathBuf::from(value("--out")?)),
                "--fault" => fault = Some(Fault::parse(&value("--fault")?)?),
                other => {
                    return Err(CliError::usage(format!("__shard: unknown flag `{other}`")));
                }
            }
        }
        let missing = |name: &str| CliError::usage(format!("__shard: missing {name}"));
        Ok(ShardArgs {
            spec: PathBuf::from(spec),
            index: index.ok_or_else(|| missing("--index"))?,
            of: of.ok_or_else(|| missing("--of"))?,
            cache: cache.ok_or_else(|| missing("--cache"))?,
            out: out.ok_or_else(|| missing("--out"))?,
            fault,
        })
    }
}

/// Prints one protocol line and flushes, so the parent's reader sees it
/// immediately (a child's piped stdout is block-buffered otherwise — a
/// buffered heartbeat is no heartbeat).
fn emit(line: fmt::Arguments<'_>) {
    let mut stdout = std::io::stdout().lock();
    let _ = writeln!(stdout, "{line}");
    let _ = stdout.flush();
}

/// Runs the shard and returns the process exit code.
pub fn run(args: &ShardArgs) -> i32 {
    // Boot heartbeats: the parent's stall clock starts at spawn, but the
    // first protocol event (`start`) only comes after the spec parse, plan
    // derivation and cache preload — and a paper-scale cache file can take
    // longer to preload than the stall timeout. Beat through the startup
    // window so a healthy preload is never killed as a straggler; real
    // stall detection begins once trials run.
    let started = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let boot = {
        let started = std::sync::Arc::clone(&started);
        let index = args.index;
        std::thread::spawn(move || {
            while !started.load(std::sync::atomic::Ordering::Relaxed) {
                emit(format_args!("{PROTOCOL_PREFIX} boot index={index}"));
                std::thread::sleep(std::time::Duration::from_millis(300));
            }
        })
    };
    let spec = match CampaignSpec::from_path(&args.spec) {
        Ok(spec) => spec,
        Err(e) => {
            started.store(true, std::sync::atomic::Ordering::Relaxed);
            let _ = boot.join();
            eprintln!("rowpress-campaign shard {}: {e}", args.index);
            return EXIT_SPEC;
        }
    };
    let fault = args.fault;
    let boot_done = started.clone();
    let result = run_shard(
        &spec,
        args.index,
        args.of,
        &args.cache,
        &args.out,
        |event| {
            match event {
                ShardEvent::Started { preloaded, total } => {
                    boot_done.store(true, std::sync::atomic::Ordering::Relaxed);
                    emit(format_args!(
                        "{PROTOCOL_PREFIX} start index={} of={} total={total} preloaded={preloaded}",
                        args.index, args.of
                    ));
                }
                ShardEvent::Beat {
                    computed_live,
                    replayed_live,
                } => emit(format_args!(
                    "{PROTOCOL_PREFIX} beat computed_live={computed_live} \
                     replayed_live={replayed_live}"
                )),
                ShardEvent::Progress {
                    done,
                    total,
                    computed,
                    replayed,
                } => emit(format_args!(
                    "{PROTOCOL_PREFIX} progress done={done} total={total} \
                     computed={computed} replayed={replayed}"
                )),
                ShardEvent::Finished {
                    total,
                    computed,
                    replayed,
                } => emit(format_args!(
                    "{PROTOCOL_PREFIX} done total={total} computed={computed} replayed={replayed}"
                )),
            }
            if let ShardEvent::Progress { computed, .. } = event {
                match fault {
                    Some(Fault::ExitAfter(n)) if computed >= n => {
                        emit(format_args!("{PROTOCOL_PREFIX} fault exit-after={n}"));
                        // The per-record cache flush already persisted every
                        // computed outcome; dying here loses nothing.
                        std::process::exit(EXIT_FAULT);
                    }
                    Some(Fault::HangAfter(n)) if computed >= n => {
                        emit(format_args!("{PROTOCOL_PREFIX} fault hang-after={n}"));
                        // Wedge without exiting: heartbeats stop, the parent's
                        // stall detector must notice and kill us.
                        loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        }
                    }
                    _ => {}
                }
            }
        },
    );
    started.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = boot.join();
    match result {
        Ok(_) => EXIT_OK,
        Err(CampaignError::Spec(e)) => {
            eprintln!("rowpress-campaign shard {}: {e}", args.index);
            EXIT_SPEC
        }
        Err(e) => {
            eprintln!("rowpress-campaign shard {}: {e}", args.index);
            EXIT_RUN
        }
    }
}
